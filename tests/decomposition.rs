//! The decomposed engine against the monolithic revised engine, on the
//! paper's own problem shapes.
//!
//! `LpEngine::Decomposed` detects the per-queue block structure behind
//! the sizing LP's single budget row, prices the coupling out with a
//! monotone multiplier search over independent block solves, and
//! certifies exactness with one warm-started revised solve on the
//! original joint standard form. This suite pins the engine's whole
//! contract:
//!
//! * status + 1e-9 relative objective agreement with the monolithic
//!   revised engine on templates, random architectures and the
//!   ill-conditioned corpus;
//! * full 4-part optimality certificates against the *joint* problem;
//! * the recovered budget shadow price matching the joint LP's dual;
//! * degenerate shapes — single queue, slack budget row, relaxed
//!   (infeasible) budget row — behaving exactly like the revised path,
//!   budget-relax semantics included.

use proptest::prelude::*;
use socbuf::lp::{solve_decomposed, verify_optimality, LpEngine, LpProblem, SimplexOptions};
use socbuf::sizing::{size_buffers, SizingConfig, SizingLp};
use socbuf::soc::templates::{self, RandomArchParams};
use socbuf::soc::Architecture;

/// Certificates are checked above the sizing pipeline's 1e-6 rhs
/// perturbation dust but far below any genuine violation.
const CERT_TOL: f64 = 1e-4;

fn cfg(engine: LpEngine) -> SizingConfig {
    SizingConfig {
        state_cap: 8,
        effort_levels: 3,
        engine,
        ..SizingConfig::default()
    }
}

/// Solves `p` decomposed and monolithically (same options modulo
/// engine), asserts the full agreement contract, and returns the
/// decomposed solve's report (`None` when both engines agree the
/// problem is not solvable — tight random budgets can be infeasible).
fn assert_lp_agreement(p: &LpProblem, label: &str) -> Option<socbuf::lp::DecompReport> {
    let opts = SimplexOptions {
        perturbation: 1e-6,
        max_iterations: 200_000,
        ..SimplexOptions::default()
    };
    let mono = match p.solve_with(&opts) {
        Ok(sol) => sol,
        Err(mono_err) => {
            // Status agreement: the decomposed engine must report the
            // same failure class as the monolithic one.
            let dec_err = solve_decomposed(p, &opts).map(|_| ()).expect_err(&format!(
                "{label}: monolithic says {mono_err}, decomposed solved"
            ));
            assert_eq!(
                std::mem::discriminant(&dec_err),
                std::mem::discriminant(&mono_err),
                "{label}: statuses disagree: {dec_err} vs {mono_err}"
            );
            return None;
        }
    };
    let (sol, report) =
        solve_decomposed(p, &opts).unwrap_or_else(|e| panic!("{label}: decomposed failed: {e}"));
    assert_eq!(sol.engine(), LpEngine::Decomposed);
    assert!(
        (sol.objective() - mono.objective()).abs() <= 1e-9 * (1.0 + mono.objective().abs()),
        "{label}: decomposed {} vs monolithic {}",
        sol.objective(),
        mono.objective()
    );
    // Full 4-part certificate against the original joint problem.
    let cert = verify_optimality(p, &sol, CERT_TOL);
    assert!(cert.is_optimal(), "{label}: certificate failed: {cert:?}");
    // Every dual price (budget row included) must match the joint LP's.
    for r in p.row_ids() {
        assert!(
            (sol.dual(r) - mono.dual(r)).abs() <= 1e-5 * (1.0 + mono.dual(r).abs()),
            "{label}: dual of row {} drifted: {} vs {}",
            r.index(),
            sol.dual(r),
            mono.dual(r)
        );
    }
    Some(report)
}

/// Sizes `arch` with both engines through the full pipeline and asserts
/// outcome-level agreement (loss, relaxation flag, shadow price).
fn assert_sizing_agreement(arch: &Architecture, budget: usize, label: &str) {
    let mono = size_buffers(arch, budget, &cfg(LpEngine::Revised))
        .unwrap_or_else(|e| panic!("{label}: revised sizing failed: {e}"));
    let dec = size_buffers(arch, budget, &cfg(LpEngine::Decomposed))
        .unwrap_or_else(|e| panic!("{label}: decomposed sizing failed: {e}"));
    assert_eq!(dec.lp_engine, LpEngine::Decomposed);
    assert_eq!(
        dec.budget_row_relaxed, mono.budget_row_relaxed,
        "{label}: relaxation flags disagree"
    );
    assert!(
        (dec.predicted_loss_rate - mono.predicted_loss_rate).abs()
            <= 1e-9 * (1.0 + mono.predicted_loss_rate.abs()),
        "{label}: loss {} vs {}",
        dec.predicted_loss_rate,
        mono.predicted_loss_rate
    );
    assert!(
        (dec.budget_shadow_price - mono.budget_shadow_price).abs()
            <= 1e-5 * (1.0 + mono.budget_shadow_price.abs()),
        "{label}: shadow price {} vs {}",
        dec.budget_shadow_price,
        mono.budget_shadow_price
    );
}

#[test]
fn decomposition_detects_the_sizing_lps_block_structure() {
    // The joint LP has per-bus effort rows *and* the budget row on top
    // of the per-queue blocks; on a single-bus-per-queue architecture
    // with >1 bus the budget row is the one coupling row and every
    // queue lands in its own block.
    let arch = templates::figure1();
    let lp = SizingLp::build(&arch, 22, &cfg(LpEngine::Decomposed)).unwrap();
    let report = assert_lp_agreement(lp.problem(), "figure1 joint LP")
        .expect("figure1's joint LP is feasible");
    assert!(
        report.blocks >= 2,
        "figure1 must decompose, got {} block(s)",
        report.blocks
    );
    assert!(!report.fell_back, "structure must be exploited");
    assert!(report.coupling_row.is_some(), "budget row not identified");
}

#[test]
fn template_architectures_agree_end_to_end() {
    for (name, arch, budget) in [
        ("figure1", templates::figure1(), 22usize),
        ("amba", templates::amba(), 16),
        ("coreconnect", templates::coreconnect(), 20),
        ("network_processor", templates::network_processor(), 64),
    ] {
        assert_sizing_agreement(&arch, budget, name);
    }
}

#[test]
fn single_queue_architecture_agrees() {
    // One queue: the LP has one block plus coupling — nothing to fan
    // out, but the engine must still answer exactly like revised.
    use socbuf::soc::{ArchitectureBuilder, FlowTarget};
    let mut b = ArchitectureBuilder::new();
    let bus = b.add_bus("bus", 1.0).unwrap();
    let p = b.add_processor("p", &[bus], 1.0).unwrap();
    b.add_flow(p, FlowTarget::Bus(bus), 0.7).unwrap();
    let arch = b.build().unwrap();
    assert_sizing_agreement(&arch, 12, "single queue");
}

#[test]
fn slack_budget_row_settles_at_zero_multiplier() {
    // A budget far beyond total state mass: Φ(0) already satisfies the
    // coupling row, so the search must stop after its first sweep.
    let arch = templates::amba();
    let lp = SizingLp::build(&arch, 10_000, &cfg(LpEngine::Decomposed)).unwrap();
    let report =
        assert_lp_agreement(lp.problem(), "slack budget").expect("a slack budget is feasible");
    if !report.fell_back {
        assert_eq!(report.multiplier, 0.0, "slack coupling needs no price");
        assert_eq!(report.multiplier_iterations, 1);
    }
}

#[test]
fn relaxed_budget_row_keeps_parity_with_revised() {
    // An overloaded queue at budget 1: the budget row is infeasible, the
    // pipeline drops it and retries — both engines must take that path
    // and agree on the relaxed solution.
    use socbuf::soc::{ArchitectureBuilder, FlowTarget};
    let mut b = ArchitectureBuilder::new();
    let bus = b.add_bus("bus", 1.0).unwrap();
    let p = b.add_processor("p", &[bus], 1.0).unwrap();
    b.add_flow(p, FlowTarget::Bus(bus), 3.0).unwrap();
    let arch = b.build().unwrap();
    let mono = size_buffers(&arch, 1, &cfg(LpEngine::Revised)).unwrap();
    let dec = size_buffers(&arch, 1, &cfg(LpEngine::Decomposed)).unwrap();
    assert!(mono.budget_row_relaxed, "test premise: relaxation fires");
    assert!(dec.budget_row_relaxed, "decomposed must relax too");
    assert!(
        (dec.predicted_loss_rate - mono.predicted_loss_rate).abs()
            <= 1e-9 * (1.0 + mono.predicted_loss_rate.abs()),
        "relaxed loss {} vs {}",
        dec.predicted_loss_rate,
        mono.predicted_loss_rate
    );
}

#[test]
fn ill_conditioned_corpus_agrees_and_certifies() {
    // Rates spanning 1e-3..1e3: the decomposition must survive the
    // equilibration layer (blocks scale independently of the joint
    // form; the basis mapping is scale-invariant).
    for seed in 0..12u64 {
        let arch = templates::ill_conditioned(seed);
        let lp = SizingLp::build(&arch, 4000, &cfg(LpEngine::Decomposed)).unwrap();
        assert_lp_agreement(lp.problem(), &format!("ill_conditioned seed {seed}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_architectures_agree(seed in 0usize..1000, tight in proptest::bool::ANY) {
        let arch = templates::random_architecture(seed as u64, &RandomArchParams::default());
        // Tight budgets make the coupling row bind (multiplier search
        // does real work); loose ones leave it slack (t = 0 path).
        let budget = if tight { arch.num_queues() } else { 6 * arch.num_queues() };
        assert_sizing_agreement(&arch, budget, &format!("seed {seed} budget {budget}"));
    }

    #[test]
    fn random_joint_lps_carry_certificates(seed in 0usize..1000) {
        let arch = templates::random_architecture(seed as u64, &RandomArchParams::default());
        let lp = SizingLp::build(&arch, 3 * arch.num_queues(), &cfg(LpEngine::Decomposed)).unwrap();
        assert_lp_agreement(lp.problem(), &format!("joint LP seed {seed}"));
    }
}
