//! Dense/sparse kernel agreement oracles.
//!
//! The sparse layer ([`Csr`], [`Tridiag`]) must be numerically
//! indistinguishable from the dense kernels it replaced: products agree
//! entry for entry, the Thomas tridiagonal solve matches pivoted LU, and
//! the sparse-assembled standard form of the paper's Figure 1
//! occupation-measure LP equals its dense twin — all to 1e-12.

use proptest::prelude::*;
use socbuf::linalg::{max_abs_diff, Csr, Lu, Matrix, Tridiag};
use socbuf::lp::assembly;
use socbuf::markov::{BirthDeath, Ctmc};
use socbuf::sizing::{SizingConfig, SizingLp};
use socbuf::soc::templates;

const TOL: f64 = 1e-12;

/// Random birth–death chains (per-level birth and death rates) of
/// 3..=25 states, plus a probe vector for product checks.
fn birth_death_chain() -> impl Strategy<Value = (BirthDeath, Vec<f64>)> {
    (2usize..=24).prop_flat_map(|levels| {
        (
            proptest::collection::vec(0.1f64..5.0, levels),
            proptest::collection::vec(0.1f64..5.0, levels),
            proptest::collection::vec(-2.0f64..2.0, levels + 1),
        )
            .prop_map(|(birth, death, probe)| (BirthDeath::new(birth, death).unwrap(), probe))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR matvec/vecmat on a birth–death generator equal the dense
    /// Matrix products to 1e-12.
    #[test]
    fn csr_products_match_dense_on_generators((bd, probe) in birth_death_chain()) {
        let ctmc: Ctmc = bd.to_ctmc();
        let sparse: &Csr = ctmc.generator();
        let dense: Matrix = ctmc.generator_dense();
        prop_assert!(sparse.is_tridiagonal());

        let mv_sparse = sparse.matvec(&probe).unwrap();
        let mv_dense = dense.matvec(&probe).unwrap();
        prop_assert!(max_abs_diff(&mv_sparse, &mv_dense) <= TOL);

        let vm_sparse = sparse.vecmat(&probe).unwrap();
        let vm_dense = dense.vecmat(&probe).unwrap();
        prop_assert!(max_abs_diff(&vm_sparse, &vm_dense) <= TOL);

        // Transpose commutes with densification.
        prop_assert!(sparse.transpose().to_dense() == dense.transpose());
    }

    /// The Thomas solve on the (tridiagonal) stationary system matches
    /// the pivoted dense LU solve of the *same* system to 1e-12.
    #[test]
    fn tridiag_solve_matches_lu_on_generators((bd, _probe) in birth_death_chain()) {
        let ctmc = bd.to_ctmc();
        let n = ctmc.num_states();
        // Build Qᵀ with the state-0 balance row replaced by π₀ = 1 —
        // exactly the system Ctmc::stationary solves on the fast path.
        let mut a = ctmc.generator_dense().transpose();
        for j in 0..n {
            a[(0, j)] = if j == 0 { 1.0 } else { 0.0 };
        }
        let mut rhs = vec![0.0; n];
        rhs[0] = 1.0;

        let tri = Tridiag::from_csr(&Csr::from_dense(&a)).unwrap();
        let mut x_thomas = tri.solve(&rhs).unwrap();
        let mut x_lu = Lu::factor(&a).unwrap().solve(&rhs).unwrap();
        // On strongly drifting chains both solvers carry a common-mode
        // error proportional to the condition number; the quantity the
        // pipeline consumes is the *normalized* measure, where that
        // common factor cancels — and there the two algorithms must
        // agree to 1e-12.
        for x in [&mut x_thomas, &mut x_lu] {
            let s: f64 = x.iter().sum();
            for v in x.iter_mut() {
                *v /= s;
            }
        }
        prop_assert!(
            max_abs_diff(&x_thomas, &x_lu) <= TOL,
            "thomas {x_thomas:?} vs lu {x_lu:?}"
        );
    }

    /// End to end: the sparse stationary path and the dense LU path of
    /// `Ctmc::stationary` agree to 1e-12 on random birth–death chains,
    /// and both match the closed-form product solution.
    #[test]
    fn stationary_paths_agree((bd, _probe) in birth_death_chain()) {
        let ctmc = bd.to_ctmc();
        let fast = ctmc.stationary().unwrap();
        let dense = ctmc.stationary_dense().unwrap();
        prop_assert!(
            max_abs_diff(&fast, &dense) <= TOL,
            "fast {fast:?} vs dense {dense:?}"
        );
        let closed = bd.stationary().unwrap();
        prop_assert!(max_abs_diff(&fast, &closed) <= 1e-10);
    }
}

/// Deterministic pseudo-random probe vector (no RNG dependency needed
/// for the LP-sized checks below).
fn probe(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        })
        .collect()
}

/// The figure1 occupation-measure LP: the sparse-assembled standard form
/// equals the dense assembly entry for entry, and its products match to
/// 1e-12.
#[test]
fn figure1_lp_sparse_assembly_matches_dense() {
    let arch = templates::figure1();
    let lp = SizingLp::build(&arch, 22, &SizingConfig::small()).unwrap();

    let sparse = assembly::assemble_sparse(lp.problem()).unwrap();
    let dense = assembly::assemble_dense(lp.problem()).unwrap();
    assert_eq!(sparse.rows(), dense.rows());
    assert_eq!(sparse.cols(), dense.cols());
    assert_eq!(
        sparse.to_dense(),
        dense,
        "assembly paths must agree exactly"
    );

    // The block-diagonal structure survives conversion: a small fraction
    // of the dense footprint is stored.
    assert!(sparse.nnz() * 10 < dense.rows() * dense.cols());

    for seed in 1..=4u64 {
        let x = probe(sparse.cols(), seed);
        let mv_sparse = sparse.matvec(&x).unwrap();
        let mv_dense = dense.matvec(&x).unwrap();
        assert!(max_abs_diff(&mv_sparse, &mv_dense) <= TOL);

        let y = probe(sparse.rows(), seed + 100);
        let vm_sparse = sparse.vecmat(&y).unwrap();
        let vm_dense = dense.vecmat(&y).unwrap();
        assert!(max_abs_diff(&vm_sparse, &vm_dense) <= TOL);
    }

    // Transposition agrees as well (the dual path uses it).
    assert_eq!(sparse.transpose().to_dense(), dense.transpose());
}

/// The sparse path must not change what the solver returns: solving the
/// figure1 LP yields a valid sizing solution whose marginals are
/// probability distributions (regression guard for the refactor).
#[test]
fn figure1_lp_solves_through_sparse_path() {
    let arch = templates::figure1();
    let lp = SizingLp::build(&arch, 22, &SizingConfig::small()).unwrap();
    let sol = lp.solve().unwrap();
    assert!(sol.loss_rate >= 0.0);
    for m in &sol.marginals {
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-8);
        assert!(m.iter().all(|&p| p >= 0.0));
    }
}
