//! Simulator regression pins: event-ordering / RNG drift detection.
//!
//! The discrete-event engine is the measurement instrument every paper
//! figure is read off of, and it is *deterministic per seed* by design.
//! Two complementary guards:
//!
//! * a **fixed-seed snapshot** — exact per-queue offered/lost/served
//!   counts on the figure1 template under seed 2005. Any change to the
//!   RNG stream, the event queue's tie-breaking, or the arbiter's
//!   scheduling order shifts at least one of these integers, turning an
//!   invisible semantics change into a visible diff (if the change is
//!   intended, regenerate the pins and say so in the commit);
//! * a **statistical sanity check** — a single M/M/1/K queue simulated
//!   over several replications must match the closed-form blocking
//!   probability and mean occupancy from `socbuf_markov::MM1K`, so the
//!   snapshot cannot ossify around a *wrong* stochastic semantics: the
//!   snapshot pins the stream, the closed form pins the distribution.

use socbuf::markov::MM1K;
use socbuf::sim::{average_reports, replicate, simulate, Arbiter, SimConfig};
use socbuf::soc::{templates, ArchitectureBuilder, BufferAllocation, FlowTarget};

/// Exact event counts for figure1, uniform allocation of 22 units,
/// `Arbiter::FixedSlot`, seed 2005, horizon 1000, warmup 100 —
/// identical in debug and release builds (the engine orders events by
/// (time, sequence), never by float identity games).
///
/// Pins regenerated when the measurement-window statistics were fixed:
/// `served` now counts only requests *offered* inside the window (the
/// same population `mean_wait` averages over), so a handful of
/// warmup-straddling services left the counts.
const SNAPSHOT: &[(f64, f64, f64)] = &[
    // (offered, lost_full, served) per queue
    (137.0, 0.0, 136.0),
    (288.0, 61.0, 225.0),
    (86.0, 0.0, 85.0),
    (85.0, 4.0, 81.0),
    (85.0, 7.0, 76.0),
    (76.0, 4.0, 72.0),
    (84.0, 1.0, 82.0),
    (82.0, 1.0, 81.0),
    (93.0, 13.0, 80.0),
    (187.0, 11.0, 175.0),
];
const SNAPSHOT_TOTALS: (f64, f64, f64) = (874.0, 102.0, 764.0); // offered, lost, delivered

#[test]
fn fixed_seed_snapshot_is_stable() {
    let arch = templates::figure1();
    let alloc = BufferAllocation::uniform(&arch, 22);
    let cfg = SimConfig {
        horizon: 1000.0,
        warmup: 100.0,
        seed: 2005,
    };
    let r = simulate(&arch, &alloc, Arbiter::FixedSlot, &cfg);
    assert_eq!(r.per_queue.len(), SNAPSHOT.len());
    for (i, (q, &(offered, lost_full, served))) in r.per_queue.iter().zip(SNAPSHOT).enumerate() {
        assert_eq!(q.offered, offered, "queue {i}: offered count drifted");
        assert_eq!(q.lost_full, lost_full, "queue {i}: loss count drifted");
        assert_eq!(q.served, served, "queue {i}: served count drifted");
    }
    let (offered, lost, delivered) = SNAPSHOT_TOTALS;
    assert_eq!(r.total_offered, offered);
    assert_eq!(r.total_lost, lost);
    assert_eq!(r.total_delivered, delivered);
}

#[test]
fn actor_engine_reproduces_the_snapshot() {
    // The pins above bind the *legacy* engine; the actor core must land
    // on the identical report — same RNG stream, same statistics — so
    // one set of pins covers both engines.
    let arch = templates::figure1();
    let alloc = BufferAllocation::uniform(&arch, 22);
    let cfg = SimConfig {
        horizon: 1000.0,
        warmup: 100.0,
        seed: 2005,
    };
    let legacy = simulate(&arch, &alloc, Arbiter::FixedSlot, &cfg);
    let actors = socbuf::sim::SimEngine::Actors.simulate_with(
        &arch,
        &alloc,
        &mut Arbiter::FixedSlot,
        None,
        &cfg,
    );
    assert_eq!(legacy, actors);
}

#[test]
fn replications_differ_but_reseeding_reproduces() {
    // Different seeds must give different streams (otherwise the
    // replication average is a sham), and the same seed must reproduce
    // the run bit for bit.
    let arch = templates::figure1();
    let alloc = BufferAllocation::uniform(&arch, 22);
    let cfg = |seed| SimConfig {
        horizon: 500.0,
        warmup: 50.0,
        seed,
    };
    let a = simulate(&arch, &alloc, Arbiter::FixedSlot, &cfg(1));
    let b = simulate(&arch, &alloc, Arbiter::FixedSlot, &cfg(2));
    let a2 = simulate(&arch, &alloc, Arbiter::FixedSlot, &cfg(1));
    assert_eq!(a, a2, "same seed must reproduce exactly");
    assert_ne!(
        a.total_offered, b.total_offered,
        "different seeds produced identical arrival streams"
    );
}

#[test]
fn mm1k_closed_form_sanity() {
    // Single queue, λ = 0.7, μ = 1, K = 5 buffer units: the simulated
    // loss fraction and mean occupancy must match the birth–death
    // closed form from socbuf-markov within Monte-Carlo tolerance.
    let (lambda, mu, k) = (0.7, 1.0, 5usize);
    let mut b = ArchitectureBuilder::new();
    let bus = b.add_bus("bus", mu).unwrap();
    let p = b.add_processor("p", &[bus], 1.0).unwrap();
    b.add_flow(p, FlowTarget::Bus(bus), lambda).unwrap();
    let arch = b.build().unwrap();

    let alloc = BufferAllocation::new(&arch, vec![k]).unwrap();
    let cfg = SimConfig {
        horizon: 20_000.0,
        warmup: 1_000.0,
        seed: 7,
    };
    let runs = replicate(&arch, &alloc, &Arbiter::RandomNonempty, None, &cfg, 5);
    let avg = average_reports(&runs);

    let oracle = MM1K::new(lambda, mu, k).unwrap();
    let simulated_blocking = avg.per_queue[0].lost_full / avg.per_queue[0].offered;
    assert!(
        (simulated_blocking - oracle.blocking_probability()).abs() < 0.01,
        "blocking: simulated {simulated_blocking} vs exact {}",
        oracle.blocking_probability()
    );
    let pi = oracle.state_probabilities();
    let expected_occupancy: f64 = pi.iter().enumerate().map(|(n, p)| n as f64 * p).sum();
    assert!(
        (avg.per_queue[0].time_avg_len - expected_occupancy).abs() < 0.1,
        "occupancy: simulated {} vs exact {expected_occupancy}",
        avg.per_queue[0].time_avg_len
    );
}
