//! Cross-crate consistency oracles: the same quantity computed through
//! independent code paths must agree.

use socbuf::ctmdp::{relative_value_iteration, solve_constrained, CtmdpBuilder};
use socbuf::markov::{BirthDeath, Ctmc, MM1K};
use socbuf::sim::{simulate, Arbiter, SimConfig};
use socbuf::sizing::{SizingConfig, SizingLp};
use socbuf::soc::{ArchitectureBuilder, BufferAllocation, FlowTarget};

/// One queue, four ways: closed-form M/M/1/K, birth–death chain, general
/// CTMC, and the discrete-event simulator.
#[test]
fn mm1k_four_ways() {
    let (lambda, mu, k) = (0.75, 1.0, 5usize);
    let closed = MM1K::new(lambda, mu, k).unwrap();
    let bd = BirthDeath::uniform(lambda, mu, k).unwrap();
    let ctmc: Ctmc = bd.to_ctmc();

    let pi_closed = closed.state_probabilities();
    let pi_bd = bd.stationary().unwrap();
    let pi_ctmc = ctmc.stationary().unwrap();
    for i in 0..=k {
        assert!((pi_closed[i] - pi_bd[i]).abs() < 1e-10);
        assert!((pi_closed[i] - pi_ctmc[i]).abs() < 1e-9);
    }

    // Simulation agrees within sampling error.
    let mut b = ArchitectureBuilder::new();
    let bus = b.add_bus("bus", mu).unwrap();
    let p = b.add_processor("p", &[bus], 1.0).unwrap();
    b.add_flow(p, FlowTarget::Bus(bus), lambda).unwrap();
    let arch = b.build().unwrap();
    let alloc = BufferAllocation::new(&arch, vec![k]).unwrap();
    let cfg = SimConfig {
        horizon: 50_000.0,
        warmup: 2_000.0,
        seed: 20_05,
    };
    let r = simulate(&arch, &alloc, Arbiter::RandomNonempty, &cfg);
    let sim_block = r.per_queue[0].lost_full / r.per_queue[0].offered;
    assert!(
        (sim_block - closed.blocking_probability()).abs() < 0.012,
        "sim {sim_block} vs closed form {}",
        closed.blocking_probability()
    );
}

/// The sizing LP for a single full-effort queue must agree with both the
/// M/M/1/K closed form and an explicitly-built CTMDP solved by the
/// general constrained solver.
#[test]
fn sizing_lp_agrees_with_general_ctmdp() {
    let (lambda, mu) = (0.6, 1.0);
    let cap = 6usize;

    // General CTMDP: states 0..=cap, actions idle/serve, no constraint;
    // cost = loss rate λ·1[full].
    let mut b = CtmdpBuilder::new(cap + 1, 0);
    for s in 0..=cap {
        let mut arrivals = Vec::new();
        if s < cap {
            arrivals.push((s + 1, lambda));
        }
        let cost = if s == cap { lambda } else { 0.0 };
        b.add_action(s, "idle", arrivals.clone(), cost, vec![])
            .unwrap();
        if s > 0 {
            let mut t = arrivals.clone();
            t.push((s - 1, mu));
            b.add_action(s, "serve", t, cost, vec![]).unwrap();
        }
    }
    let model = b.build().unwrap();
    let general = solve_constrained(&model).unwrap();
    let vi = relative_value_iteration(&model, 1e-10, 500_000).unwrap();
    assert!((general.average_cost() - vi.average_cost).abs() < 1e-6);

    // Sizing LP on the equivalent single-queue architecture.
    let mut ab = ArchitectureBuilder::new();
    let bus = ab.add_bus("bus", mu).unwrap();
    let p = ab.add_processor("p", &[bus], 1.0).unwrap();
    ab.add_flow(p, FlowTarget::Bus(bus), lambda).unwrap();
    let arch = ab.build().unwrap();
    let cfg = SizingConfig {
        state_cap: cap,
        effort_levels: 2,
        ..SizingConfig::default()
    };
    let sizing = SizingLp::build(&arch, 1000, &cfg).unwrap().solve().unwrap();

    let oracle = MM1K::new(lambda, mu, cap).unwrap();
    assert!((general.average_cost() - oracle.loss_rate()).abs() < 1e-8);
    assert!(
        (sizing.loss_rate - oracle.loss_rate()).abs() < 1e-4,
        "sizing {} vs oracle {}",
        sizing.loss_rate,
        oracle.loss_rate()
    );
}

/// The LP solver's duals must certify the CTMDP solution (KKT check via
/// the public verification API on a model built by hand).
#[test]
fn lp_certificates_hold_on_ctmdp_shaped_programs() {
    use socbuf::lp::{verify_optimality, LpProblem, Relation, Sense};
    let mut p = LpProblem::new(Sense::Minimize);
    let x0 = p.add_var("x0", 0.0);
    let x1a = p.add_var("x1a", 1.0);
    let x1b = p.add_var("x1b", 1.2);
    p.add_constraint([(x0, 0.5), (x1a, -1.0), (x1b, -2.0)], Relation::Eq, 0.0)
        .unwrap();
    p.add_constraint([(x0, 1.0), (x1a, 1.0), (x1b, 1.0)], Relation::Eq, 1.0)
        .unwrap();
    p.add_constraint([(x1b, 1.0)], Relation::Le, 0.1).unwrap();
    let sol = p.solve().unwrap();
    assert!(verify_optimality(&p, &sol, 1e-6).is_optimal());
}
