//! Golden-artifact pins for the paper's template architectures.
//!
//! Each template (figure1, amba, coreconnect) is sized under a *fixed*
//! [`SizingConfig`] and budget; the resulting LP status, optimal loss
//! rate and integer allocation vector are pinned here. A solver change
//! — new engine, pricing tweak, perturbation change — that silently
//! shifts a reproduced paper artifact turns these tests red instead of
//! drifting the repo's numbers.
//!
//! Two classes of pin with two tolerances:
//!
//! * the **optimal loss rate** is a fact about the LP, unique even when
//!   the optimal vertex is not — both engines must reproduce it (the
//!   cross-engine check asserts 1e-9 relative agreement), and the pin
//!   itself carries a tolerance covering the documented 1e-6-scale
//!   degeneracy-breaking perturbation plus debug/release float drift;
//! * the **allocation vector** and the **budget-row status** are pinned
//!   exactly for the *default* (revised) engine. These LPs have
//!   degenerate optima, so the tableau engine may legitimately land on
//!   a different optimal vertex and translate to a different (equally
//!   optimal) allocation — vertex choice is pinned per engine, not
//!   across engines.

use socbuf::lp::LpEngine;
use socbuf::sizing::{size_buffers, ExecutorHandle, SizingConfig, SizingOutcome};
use socbuf::soc::{templates, Architecture};

/// Absolute tolerance on pinned loss rates: generous against the
/// 1e-6-scale rhs perturbation and build-profile float differences,
/// far too tight for a real solver bug (a wrong vertex moves these
/// losses at the 1e-2..1e-1 scale).
const LOSS_TOL: f64 = 1e-6;

struct Golden {
    name: &'static str,
    arch: fn() -> Architecture,
    budget: usize,
    /// Pinned optimal weighted loss rate under [`golden_config`].
    loss_rate: f64,
    /// Pinned integer allocation (queue order), default engine.
    allocation: &'static [usize],
    /// Pinned status: did the LP keep its budget row?
    budget_row_relaxed: bool,
}

/// The fixed configuration every golden value was produced under.
/// Small state spaces keep the test fast in debug builds while still
/// exercising every constraint family (cut rows, normalization, bus
/// rows, budget row).
fn golden_config(engine: LpEngine) -> SizingConfig {
    SizingConfig {
        state_cap: 8,
        effort_levels: 3,
        alpha: 0.5,
        quantile: 0.98,
        bus_effort_limit: 1.0,
        engine,
        // The default. These templates are well conditioned, so the
        // equilibration trigger never fires and every golden value
        // below is bit-identical with the knob on or off.
        equilibrate: true,
        // The default (serial). Executors change wall time, never
        // results, so every golden value is executor-independent.
        executor: ExecutorHandle::serial(),
    }
}

// Allocation pins regenerated when the translation layer moved to
// name-keyed remainder tie-breaking (permutation-equivariant
// apportionment): the pinned loss rates are unchanged — only which of
// two *exactly tied* queues wins the contested unit moved (figure1:
// p1@a → p3@b; amba: cpu@ahb → ahb2apb@apb).
const GOLDENS: &[Golden] = &[
    Golden {
        name: "figure1",
        arch: templates::figure1,
        budget: 22,
        loss_rate: 2.6324513849e-5,
        allocation: &[2, 5, 3, 2, 2, 2, 1, 1, 2, 2],
        budget_row_relaxed: false,
    },
    Golden {
        name: "amba",
        arch: templates::amba,
        budget: 16,
        loss_rate: 1.885994469841e-3,
        allocation: &[4, 3, 5, 2, 2],
        budget_row_relaxed: false,
    },
    Golden {
        name: "coreconnect",
        arch: templates::coreconnect,
        budget: 20,
        loss_rate: 1.45954522828e-4,
        allocation: &[5, 4, 3, 3, 2, 1, 2],
        budget_row_relaxed: false,
    },
];

fn size(g: &Golden, engine: LpEngine) -> SizingOutcome {
    size_buffers(&(g.arch)(), g.budget, &golden_config(engine)).unwrap_or_else(|e| {
        panic!("{} failed to size under {engine}: {e}", g.name);
    })
}

/// The default engine must reproduce every pinned artifact exactly
/// (allocation, status) or within `LOSS_TOL` (loss rate).
#[test]
fn default_engine_reproduces_pinned_artifacts() {
    for g in GOLDENS {
        let out = size(g, LpEngine::Revised);
        assert_eq!(out.lp_engine, LpEngine::Revised, "{}", g.name);
        assert!(
            (out.predicted_loss_rate - g.loss_rate).abs() < LOSS_TOL,
            "{}: loss {} drifted from pinned {}",
            g.name,
            out.predicted_loss_rate,
            g.loss_rate
        );
        assert_eq!(
            out.allocation.as_slice(),
            g.allocation,
            "{}: allocation drifted",
            g.name
        );
        assert_eq!(
            out.budget_row_relaxed, g.budget_row_relaxed,
            "{}: budget-row status drifted",
            g.name
        );
        assert_eq!(
            out.allocation.total(),
            g.budget,
            "{}: allocation does not exhaust the budget",
            g.name
        );
    }
}

/// The tableau oracle must agree with the pinned loss (and therefore
/// with the revised engine) to 1e-9 relative on every template LP —
/// the acceptance bar for the engine swap.
#[test]
fn engines_agree_on_template_losses_to_1e9() {
    for g in GOLDENS {
        let revised = size(g, LpEngine::Revised);
        let tableau = size(g, LpEngine::Tableau);
        assert_eq!(tableau.lp_engine, LpEngine::Tableau);
        let (a, b) = (revised.predicted_loss_rate, tableau.predicted_loss_rate);
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
            "{}: revised loss {a} vs tableau loss {b}",
            g.name
        );
        // Vertex choice may differ, but both allocations must exhaust
        // the same budget under the same status.
        assert_eq!(tableau.allocation.total(), g.budget, "{}", g.name);
        assert_eq!(
            tableau.budget_row_relaxed, g.budget_row_relaxed,
            "{}",
            g.name
        );
    }
}
