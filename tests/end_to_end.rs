//! Workspace-level integration tests: the whole methodology running
//! across every crate, on the paper's own architectures.

use socbuf::sizing::coupled::CoupledSystem;
use socbuf::sizing::{evaluate_policies, size_buffers, PipelineConfig, SizingConfig, SizingReport};
use socbuf::soc::split::split;
use socbuf::soc::{templates, BufferAllocation};

#[test]
fn figure1_full_methodology() {
    let arch = templates::figure1();
    // The paper's Figure 2: four linear subsystems.
    let parts = split(&arch);
    assert_eq!(parts.subsystems.len(), 4);
    // The unsplit system is genuinely nonlinear.
    let coupled = CoupledSystem::build(&arch, &BufferAllocation::uniform(&arch, 22));
    assert!(coupled.quadratic_term_count() > 0);
    // Sizing solves and respects the budget.
    let outcome = size_buffers(&arch, 22, &SizingConfig::small()).unwrap();
    assert_eq!(outcome.allocation.total(), 22);
    // Every queue with traffic got at least one unit.
    assert!(outcome.allocation.as_slice().iter().all(|&u| u >= 1));
}

#[test]
fn figure1_policy_comparison_is_consistent() {
    let arch = templates::figure1();
    let cmp = evaluate_policies(&arch, 22, &PipelineConfig::small()).unwrap();
    // Conservation per report.
    for r in [&cmp.pre, &cmp.post, &cmp.timeout] {
        let balance = r.total_delivered + r.total_lost + r.in_flight;
        assert!((r.total_offered - balance).abs() < 1e-6);
    }
    // Reports are renderable.
    let report = SizingReport::new(&arch, &cmp);
    assert!(report.figure3_table().contains("TOTAL"));
    assert!(!report.to_csv().is_empty());
}

#[test]
fn network_processor_resizing_beats_static_baseline() {
    // A scaled-down version of the Figure 3 experiment (fewer
    // replications, shorter horizon) that must still show the paper's
    // ordering: post < pre and post < timeout.
    let arch = templates::network_processor();
    let config = PipelineConfig {
        sizing: SizingConfig::default(),
        horizon: 500.0,
        warmup: 50.0,
        seed: 42,
        replications: 3,
        ..PipelineConfig::default()
    };
    let cmp = evaluate_policies(&arch, 160, &config).unwrap();
    assert!(
        cmp.post.total_lost < cmp.pre.total_lost,
        "post {} vs pre {}",
        cmp.post.total_lost,
        cmp.pre.total_lost
    );
    assert!(
        cmp.post.total_lost < cmp.timeout.total_lost,
        "post {} vs timeout {}",
        cmp.post.total_lost,
        cmp.timeout.total_lost
    );
    // Hot processors (the paper's Table 1 rows) dominate the baseline's
    // losses.
    let pre = &cmp.pre.per_proc;
    let hot: f64 = [0usize, 3, 14, 15].iter().map(|&i| pre[i].lost).sum();
    assert!(
        hot > 0.5 * cmp.pre.total_lost,
        "hot {hot} of {}",
        cmp.pre.total_lost
    );
}

#[test]
fn table1_budget_trend_holds() {
    // Post-sizing loss decreases monotonically in the budget (the
    // paper's Table 1 trend), on a reduced configuration.
    let arch = templates::network_processor();
    let config = PipelineConfig {
        sizing: SizingConfig::default(),
        horizon: 400.0,
        warmup: 40.0,
        seed: 11,
        replications: 2,
        ..PipelineConfig::default()
    };
    let mut last = f64::INFINITY;
    for budget in [160usize, 320, 640] {
        let cmp = evaluate_policies(&arch, budget, &config).unwrap();
        assert!(
            cmp.post.total_lost <= last * 1.25 + 5.0,
            "post loss should trend down with budget: {} after {last} (budget {budget})",
            cmp.post.total_lost
        );
        last = cmp.post.total_lost;
    }
    // And the largest budget is near lossless post-sizing.
    assert!(
        last < 30.0,
        "640-unit post-sizing loss should be near zero, got {last}"
    );
}

#[test]
fn all_templates_size_and_simulate() {
    for (arch, budget) in [
        (templates::figure1(), 22usize),
        (templates::amba(), 16),
        (templates::coreconnect(), 20),
    ] {
        let cmp = evaluate_policies(&arch, budget, &PipelineConfig::small()).unwrap();
        assert_eq!(cmp.outcome.allocation.total(), budget);
        assert_eq!(cmp.pre.per_proc.len(), arch.num_processors());
    }
}

#[test]
fn random_architectures_survive_the_pipeline() {
    use socbuf::soc::templates::{random_architecture, RandomArchParams};
    for seed in 0..8 {
        let arch = random_architecture(seed, &RandomArchParams::default());
        let budget = 3 * arch.num_queues();
        let outcome = size_buffers(&arch, budget, &SizingConfig::small()).unwrap();
        assert_eq!(outcome.allocation.total(), budget);
    }
}
