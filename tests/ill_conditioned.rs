//! The ill-conditioned regime: rate data stated in arbitrary units.
//!
//! Every instance here comes from `templates::ill_conditioned(seed)` —
//! a fixed two-bus/bridge topology whose service and arrival rates are
//! drawn log-uniformly over `1e-3..1e3`, so a single LP mixes
//! coefficients six orders of magnitude apart. This is the regime the
//! equilibration layer exists for (ROADMAP "Numerical scaling"), and
//! the regime where both engines' strictness work (revised
//! `finish_phase_two` + θ=0 hardening, tableau recanonicalization +
//! dual repair + deactivated-row residual check) has to hold up:
//!
//! * with equilibration ON (the default) both engines must agree in
//!   status and to 1e-9 relative objective, pass the full 4-part
//!   certificate, and the measured condition estimate must drop on
//!   every instance the trigger fires for;
//! * warm-started chains must answer exactly like cold solves;
//! * with equilibration forced OFF the same corpus is demonstrably
//!   worse: pinned instances hard-fail outright — but never *lie* (no
//!   engine may return a silently violated "optimum"; that is the
//!   strictness contract this PR's satellite work closes).

use proptest::prelude::*;
use socbuf::lp::{verify_optimality, LpEngine, LpError, SimplexOptions};
use socbuf::sizing::{size_buffers, SizingConfig, SizingLp, SolveContext};
use socbuf::soc::templates;

/// The solve-ladder's first rung, with the engine and equilibration
/// knob explicit. Perturbation 1e-6 mirrors what the sizing pipeline
/// actually runs with, so certificates are checked at 1e-4 (comfortably
/// above perturbation dust, far below any genuine violation — the bug
/// class this suite polices produced violations of 1e-4..1e0).
fn opts(engine: LpEngine, equilibrate: bool) -> SimplexOptions {
    SimplexOptions {
        engine,
        equilibrate,
        perturbation: 1e-6,
        max_iterations: 200_000,
        ..SimplexOptions::default()
    }
}

const CERT_TOL: f64 = 1e-4;

fn cfg(state_cap: usize) -> SizingConfig {
    SizingConfig {
        state_cap,
        effort_levels: 3,
        ..SizingConfig::default()
    }
}

#[test]
fn engines_agree_and_certify_on_ill_conditioned_corpus() {
    let mut solved = 0usize;
    let mut applied = 0usize;
    for seed in 0..40u64 {
        let arch = templates::ill_conditioned(seed);
        // Budget 4000 keeps the budget row loose (the raw LP is solved
        // here, without the pipeline's relaxation retry), so overloaded
        // draws stay feasible and the corpus exercises optimality.
        let lp = SizingLp::build(&arch, 4000, &cfg(8)).unwrap();
        let p = lp.problem();
        let revised = p.solve_with(&opts(LpEngine::Revised, true));
        let tableau = p.solve_with(&opts(LpEngine::Tableau, true));
        match (revised, tableau) {
            (Ok(a), Ok(b)) => {
                solved += 1;
                assert!(
                    (a.objective() - b.objective()).abs() <= 1e-9 * (1.0 + a.objective().abs()),
                    "seed {seed}: engines disagree: revised {} vs tableau {}",
                    a.objective(),
                    b.objective()
                );
                for (name, sol) in [("revised", &a), ("tableau", &b)] {
                    let report = verify_optimality(p, sol, CERT_TOL);
                    assert!(
                        report.is_optimal(),
                        "seed {seed}: {name} failed its certificate: {report:?}"
                    );
                }
                let stats = a.scaling_stats();
                if stats.applied {
                    applied += 1;
                    assert!(
                        stats.condition_after < stats.condition_before,
                        "seed {seed}: equilibration applied but the condition estimate \
                         did not drop: {:.3e} -> {:.3e}",
                        stats.condition_before,
                        stats.condition_after
                    );
                }
            }
            (Err(LpError::Infeasible { .. }), Err(LpError::Infeasible { .. })) => {}
            (a, b) => panic!(
                "seed {seed}: statuses split: revised {:?} vs tableau {:?}",
                a.map(|s| s.objective()),
                b.map(|s| s.objective())
            ),
        }
    }
    // The corpus must genuinely exercise both the trigger and the
    // optimal path, or the assertions above are vacuous.
    assert!(solved >= 20, "only {solved} corpus instances solved");
    assert!(applied >= 10, "equilibration only applied {applied} times");
}

#[test]
fn warm_chains_match_cold_solves_on_ill_conditioned_corpus() {
    // Warm ≡ cold under scaling: a `SolveContext` chain caches the
    // equilibrated form and basis across budget retargets; every point
    // must report the same status (including the budget-relax flag) and
    // the same loss as an independent cold solve.
    for seed in 0..25u64 {
        let arch = templates::ill_conditioned(seed);
        let config = cfg(8);
        let mut ctx = SolveContext::new(&arch, &config);
        for budget in [10usize, 14, 20, 14] {
            let warm = ctx.size_buffers(budget);
            let cold = size_buffers(&arch, budget, &config);
            match (warm, cold) {
                (Ok(w), Ok(c)) => {
                    assert_eq!(
                        w.budget_row_relaxed, c.budget_row_relaxed,
                        "seed {seed} budget {budget}: relax flags split"
                    );
                    assert!(
                        (w.predicted_loss_rate - c.predicted_loss_rate).abs()
                            <= 1e-9 * (1.0 + c.predicted_loss_rate.abs()),
                        "seed {seed} budget {budget}: warm {} vs cold {}",
                        w.predicted_loss_rate,
                        c.predicted_loss_rate
                    );
                }
                (Err(_), Err(_)) => {}
                (w, c) => panic!(
                    "seed {seed} budget {budget}: warm_ok={} cold_ok={}",
                    w.is_ok(),
                    c.is_ok()
                ),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property form of the corpus oracle over a wider seed range:
    /// any log-uniform rate draw must leave the engines in agreement
    /// (status + 1e-9 objective) and fully certified when equilibration
    /// is on.
    #[test]
    fn any_rate_units_leave_the_engines_in_agreement(seed in 0usize..10_000) {
        let arch = templates::ill_conditioned(seed as u64);
        let lp = SizingLp::build(&arch, 4000, &cfg(8)).unwrap();
        let p = lp.problem();
        let revised = p.solve_with(&opts(LpEngine::Revised, true));
        let tableau = p.solve_with(&opts(LpEngine::Tableau, true));
        match (revised, tableau) {
            (Ok(a), Ok(b)) => {
                prop_assert!(
                    (a.objective() - b.objective()).abs()
                        <= 1e-9 * (1.0 + a.objective().abs()),
                    "engines disagree: revised {} vs tableau {}",
                    a.objective(),
                    b.objective()
                );
                for (name, sol) in [("revised", &a), ("tableau", &b)] {
                    let report = verify_optimality(p, sol, CERT_TOL);
                    prop_assert!(report.is_optimal(), "{name}: {report:?}");
                }
                let stats = a.scaling_stats();
                prop_assert!(
                    !stats.applied || stats.condition_after < stats.condition_before,
                    "no condition drop: {stats:?}"
                );
            }
            (Err(LpError::Infeasible { .. }), Err(LpError::Infeasible { .. })) => {}
            (a, b) => prop_assert!(
                false,
                "statuses split: revised {:?} vs tableau {:?}",
                a.map(|s| s.objective()),
                b.map(|s| s.objective())
            ),
        }
    }

    /// Property form of the warm-vs-cold oracle: one budget retarget per
    /// case, warm answer ≡ cold answer whatever the rate units.
    #[test]
    fn any_rate_units_keep_warm_chains_equal_to_cold(seed in 0usize..10_000) {
        let arch = templates::ill_conditioned(seed as u64);
        let config = cfg(6);
        let mut ctx = SolveContext::new(&arch, &config);
        for budget in [12usize, 18] {
            let warm = ctx.size_buffers(budget);
            let cold = size_buffers(&arch, budget, &config);
            match (warm, cold) {
                (Ok(w), Ok(c)) => {
                    prop_assert_eq!(w.budget_row_relaxed, c.budget_row_relaxed);
                    prop_assert!(
                        (w.predicted_loss_rate - c.predicted_loss_rate).abs()
                            <= 1e-9 * (1.0 + c.predicted_loss_rate.abs()),
                        "budget {}: warm {} vs cold {}",
                        budget,
                        w.predicted_loss_rate,
                        c.predicted_loss_rate
                    );
                }
                (Err(_), Err(_)) => {}
                (w, c) => prop_assert!(
                    false,
                    "budget {}: warm_ok={} cold_ok={}",
                    budget,
                    w.is_ok(),
                    c.is_ok()
                ),
            }
        }
    }
}

/// Seed-8604-style regression for the tableau-engine strictness port
/// (ROADMAP "Tableau-engine strictness"): an instance mixing a 2.0-rate
/// arrival with a 943-rate bus at state_cap 12, where the dense
/// tableau's incrementally-updated canonical form drifts far enough
/// that — before the recanonicalization/repair port — it returned an
/// "optimum" violating two cut rows and a block normalization by
/// O(1) *while agreeing with the revised engine's objective to 1e-11*
/// (the broken block carried negligible loss weight, so only the
/// certificate could see the lie).
#[test]
fn tableau_agrees_with_revised_on_drift_prone_instance() {
    let arch = templates::ill_conditioned(19);
    let lp = SizingLp::build(&arch, 4000, &cfg(12)).unwrap();
    let p = lp.problem();
    let revised = p.solve_with(&opts(LpEngine::Revised, true)).unwrap();
    let tableau = p.solve_with(&opts(LpEngine::Tableau, true)).unwrap();
    assert!(
        (revised.objective() - tableau.objective()).abs()
            <= 1e-9 * (1.0 + revised.objective().abs()),
        "engines disagree: {} vs {}",
        revised.objective(),
        tableau.objective()
    );
    for (name, sol) in [("revised", &revised), ("tableau", &tableau)] {
        let report = verify_optimality(p, sol, CERT_TOL);
        assert!(report.is_optimal(), "{name}: {report:?}");
    }
}

/// Equilibration forced OFF is demonstrably worse on the same corpus —
/// and the strictness work means "worse" now surfaces as an honest
/// error, never a silent lie. The pinned witnesses (hunted over
/// seeds 0..150 × caps 8/12) are instances where, without scaling, an
/// engine breaks down outright — a numerically singular final basis or
/// a blown pivot budget; pre-strictness the tableau would have
/// *returned* from such a basis. With equilibration on, every witness
/// solves, certifies at 1e-4 and agrees across engines. Every engine
/// run, on or off, must either certify or refuse — returning an
/// uncertified "optimum" is the bug class this suite exists to keep
/// dead. (If solver improvements ever make all witnesses solve clean
/// unequilibrated, re-hunt and re-pin: the assertion message says so.)
#[test]
fn equilibration_off_fails_where_on_succeeds() {
    let mut off_failures = 0usize;
    for (seed, state_cap) in [(70u64, 8usize), (138, 12)] {
        let arch = templates::ill_conditioned(seed);
        let lp = SizingLp::build(&arch, 4000, &cfg(state_cap)).unwrap();
        let p = lp.problem();

        // ON: both engines solve, certify and agree.
        let on_rev = p.solve_with(&opts(LpEngine::Revised, true)).unwrap();
        let on_tab = p.solve_with(&opts(LpEngine::Tableau, true)).unwrap();
        assert!(
            (on_rev.objective() - on_tab.objective()).abs()
                <= 1e-9 * (1.0 + on_rev.objective().abs()),
            "seed {seed}: eq-on engines disagree"
        );
        for (name, sol) in [("revised", &on_rev), ("tableau", &on_tab)] {
            let report = verify_optimality(p, sol, CERT_TOL);
            assert!(report.is_optimal(), "seed {seed} eq-on {name}: {report:?}");
            assert!(
                sol.scaling_stats().applied,
                "seed {seed}: trigger must fire"
            );
        }

        // OFF: no lies allowed — each run either certifies or errors;
        // failures are counted and required below.
        for engine in [LpEngine::Revised, LpEngine::Tableau] {
            match p.solve_with(&opts(engine, false)) {
                Ok(sol) => {
                    let report = verify_optimality(p, &sol, CERT_TOL);
                    assert!(
                        report.is_optimal(),
                        "seed {seed} eq-off {engine} returned an uncertified optimum: {report:?}"
                    );
                    // Ran clean without scaling — possible for the
                    // better-conditioned engine, not counted as failure.
                }
                Err(LpError::Infeasible { .. }) => {
                    panic!("seed {seed} eq-off {engine}: spurious infeasibility")
                }
                Err(_) => off_failures += 1,
            }
        }
    }
    assert!(
        off_failures >= 1,
        "expected at least one engine to break down without equilibration \
         on the pinned seeds; the corpus may need re-pinning"
    );
}
