//! Offline stand-in for the `rand` crate.
//!
//! This build environment has no registry access, so the workspace
//! vendors the small slice of the `rand 0.8` API that `socbuf` uses:
//! [`rngs::SmallRng`], the [`Rng`] extension methods `gen_range` /
//! `gen_bool`, and [`SeedableRng::seed_from_u64`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — the same construction the
//! real `SmallRng` uses on 64-bit targets — so streams are deterministic,
//! fast, and of more than sufficient quality for discrete-event
//! simulation.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the high 53 bits: the low bits of xorshift-family
        // generators are the weakest.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample from the range.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;

    fn sample_from<G: RngCore>(self, rng: &mut G) -> usize {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = (self.end - self.start) as u64;
        // Multiply-shift bounded sampling (Lemire): unbiased enough for
        // simulation workloads without a rejection loop.
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi as usize
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;

    fn sample_from<G: RngCore>(self, rng: &mut G) -> u64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end - self.start;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = rng.next_f64();
        let v = self.start + u * (self.end - self.start);
        // Guard the open upper end against rounding; `next_down` keeps
        // the [start, end) contract for any sign of `end`.
        if v >= self.end {
            self.start.max(self.end.next_down())
        } else {
            v.max(self.start)
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the 64-bit `SmallRng` of `rand 0.8`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for word in s.iter_mut() {
                *word = splitmix64(&mut sm);
            }
            // An all-zero state would lock the generator at zero.
            if s == [0; 4] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(0.5f64..4.0);
            assert!((0.5..4.0).contains(&v));
        }
    }

    #[test]
    fn negative_and_zero_ended_f64_ranges_stay_half_open() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..2_000 {
            let a = rng.gen_range(-2.0f64..-1.0);
            assert!((-2.0..-1.0).contains(&a), "{a}");
            let b = rng.gen_range(-1.0f64..0.0);
            assert!((-1.0..0.0).contains(&b), "{b}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "{frac}");
    }
}
