//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors the subset of the proptest API its test-suites use: the
//! [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`],
//! [`Strategy`] with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`] and [`bool::ANY`].
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * sampling is deterministic (seeded per test name and case index) —
//!   reruns are exactly reproducible, there is no persistence file;
//! * failing cases are **not shrunk**; the harness prints the failing
//!   case index (and the `TestRng::deterministic` call that replays it)
//!   to stderr when a property panics;
//! * `prop_assert!` panics instead of returning `TestCaseError` (the
//!   observable behaviour inside `#[test]` functions is identical).

use std::ops::{Range, RangeInclusive};

/// Per-suite configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test RNG (SplitMix64 keyed by test name and case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test named `name`.
    pub fn deterministic(case: u64, name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e3779b97f4a7c15),
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to build a dependent strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Keep the half-open contract for any sign of `end`:
        // `next_down` is the largest float strictly below it.
        v.clamp(self.start, self.end.next_down())
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty usize range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for RangeInclusive<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start() <= self.end(), "empty usize range strategy");
        self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn sample(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty i64 range strategy");
        self.start + rng.below((self.end - self.start) as u64) as i64
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for fixed-length `Vec`s of `elem` samples.
    pub fn vec<S: Strategy>(elem: S, len: usize) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// Output of [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Prints the failing case index when a property body unwinds, so the
/// deterministic case can be replayed (`TestRng::deterministic(case,
/// name)`). Created once per case by the [`proptest!`] harness; the
/// non-panicking drop is free.
#[doc(hidden)]
pub struct CaseGuard {
    /// Case index currently running.
    pub case: u32,
    /// Test name, for the replay message.
    pub name: &'static str,
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: property '{}' failed at case {} \
                 (replay with TestRng::deterministic({}, \"{}\"))",
                self.name, self.case, self.case, self.name
            );
        }
    }
}

/// Asserts a property-level condition; the harness prints the failing
/// case index on panic (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts property-level equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test that samples its strategies for `cases` deterministic
/// cases and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let __guard = $crate::CaseGuard {
                        case: __case,
                        name: stringify!($name),
                    };
                    let mut __rng =
                        $crate::TestRng::deterministic(__case as u64, stringify!($name));
                    $( let $pat = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                    drop(__guard);
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_inside() {
        let mut rng = crate::TestRng::deterministic(0, "ranges");
        for _ in 0..1_000 {
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let u = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&u));
            let i = (1usize..=4).sample(&mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn negative_and_zero_ended_f64_ranges_stay_half_open() {
        let mut rng = crate::TestRng::deterministic(0, "neg_ranges");
        for _ in 0..2_000 {
            let a = (-2.0f64..-1.0).sample(&mut rng);
            assert!((-2.0..-1.0).contains(&a), "{a}");
            let b = (-1.0f64..0.0).sample(&mut rng);
            assert!((-1.0..0.0).contains(&b), "{b}");
        }
    }

    #[test]
    fn flat_map_threads_dependencies() {
        let strat = (1usize..=5)
            .prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n).prop_map(move |v| (n, v)));
        let mut rng = crate::TestRng::deterministic(1, "flat_map");
        for _ in 0..100 {
            let (n, v) = strat.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0usize..10, 0.0f64..1.0), c in 1usize..=3) {
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b), "b out of range: {b}");
            prop_assert_eq!(c.clamp(1, 3), c);
        }
    }
}
