//! Offline stand-in for the `criterion` crate.
//!
//! Supports the subset of the criterion API the workspace benches use —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is
//! timed with `std::time::Instant` over a fixed number of samples (after
//! one warmup run) and reported as `min / mean / max` per iteration on
//! stdout. No statistics, plots or baselines — this shim exists so
//! `cargo bench` runs offline and prints comparable wall-clock numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    samples: usize,
    /// Per-iteration durations of the last `iter` call.
    last: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once for warmup, then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.last.clear();
        let cap = Duration::from_secs(3);
        let started = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.last.push(t0.elapsed());
            if started.elapsed() > cap {
                break;
            }
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (criterion's knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last: Vec::new(),
        };
        f(&mut b);
        self.report(&id, &b.last);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id, &b.last);
        self
    }

    /// Ends the group (marker only; reports are printed eagerly).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{:<28} (no samples)", self.name, id.id);
            return;
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{}/{:<28} time: [{} {} {}]  ({} samples)",
            self.name,
            id.id,
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions into a single runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function(BenchmarkId::from_parameter("count"), |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // warmup + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains(" s"));
    }
}
