//! **socbuf** — buffer insertion for bridges and optimal buffer sizing
//! for SoC communication subsystems.
//!
//! A full, from-scratch Rust reproduction of *Kallakuri, Doboli,
//! Feinberg, "Buffer Insertion for Bridges and Optimal Buffer Sizing for
//! Communication Sub-System of Systems-on-Chip"* (DATE 2005).
//!
//! This crate is a facade: it re-exports the workspace's crates under
//! stable module names. See the individual crates for deep dives:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`soc`] | `socbuf-soc` | architectures, bridges, routing, splitting |
//! | [`sizing`] | `socbuf-core` | the paper's CTMDP sizing methodology |
//! | [`sim`] | `socbuf-sim` | discrete-event simulator |
//! | [`sweep`] | `socbuf-sweep` | deterministic parallel sweep campaigns |
//! | [`serve`] | `socbuf-serve` | sizing-as-a-service socket front end |
//! | [`ctmdp`] | `socbuf-ctmdp` | constrained CTMDPs, K-switching |
//! | [`markov`] | `socbuf-markov` | CTMCs, M/M/1/K analytics |
//! | [`lp`] | `socbuf-lp` | two-phase simplex |
//! | [`linalg`] | `socbuf-linalg` | dense linear algebra |
//!
//! # Quickstart
//!
//! ```
//! use socbuf::sizing::{evaluate_policies, PipelineConfig};
//! use socbuf::soc::templates;
//!
//! # fn main() -> Result<(), socbuf::sizing::CoreError> {
//! let arch = templates::figure1();
//! let cmp = evaluate_policies(&arch, 22, &PipelineConfig::small())?;
//! println!(
//!     "loss before sizing: {:.1}, after: {:.1}",
//!     cmp.pre.total_lost, cmp.post.total_lost
//! );
//! # Ok(())
//! # }
//! ```

pub use socbuf_core as sizing;
pub use socbuf_ctmdp as ctmdp;
pub use socbuf_linalg as linalg;
pub use socbuf_lp as lp;
pub use socbuf_markov as markov;
pub use socbuf_serve as serve;
pub use socbuf_sim as sim;
pub use socbuf_soc as soc;
pub use socbuf_sweep as sweep;
