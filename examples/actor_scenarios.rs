//! Scenario shapes only the actor-based simulator core can express:
//! priority arbitration, locked (batched) bus transfers, and bursty /
//! on-off traffic sources.
//!
//! The legacy event loop simulates exactly the paper's model — Poisson
//! sources, externally arbitrated buses, zero-latency bridges. The
//! actor core reproduces that model bit-for-bit (see the
//! `actor_equivalence` suite) and then extends it with declarations on
//! the architecture itself; `SimEngine::Auto` routes any architecture
//! using them to the actor engine automatically.
//!
//! Run with `cargo run --release --example actor_scenarios`.

use socbuf::sim::{Arbiter, SimConfig, SimEngine};
use socbuf::soc::{
    Architecture, ArchitectureBuilder, BufferAllocation, BusArbitration, FlowTarget, TrafficShape,
};

/// Two clients sharing one bus at equal rates; only the declarations
/// differ between scenarios.
fn two_clients(
    arbitration: BusArbitration,
    shape_a: TrafficShape,
    shape_b: TrafficShape,
) -> Architecture {
    let mut b = ArchitectureBuilder::new();
    let bus = b.add_bus_with_arbitration("bus", 4.0, arbitration).unwrap();
    let p = b.add_processor("p", &[bus], 1.0).unwrap();
    let q = b.add_processor("q", &[bus], 1.0).unwrap();
    b.add_flow_shaped(p, FlowTarget::Bus(bus), 1.6, shape_a)
        .unwrap();
    b.add_flow_shaped(q, FlowTarget::Bus(bus), 1.6, shape_b)
        .unwrap();
    b.build().unwrap()
}

fn run(arch: &Architecture) -> socbuf::sim::SimReport {
    let alloc = BufferAllocation::uniform(arch, 6);
    let cfg = SimConfig::new(20_000.0, 2005);
    // Auto picks the actor engine for every architecture built here —
    // each one declares at least one extended semantic.
    SimEngine::Auto.simulate_with(arch, &alloc, &mut Arbiter::RandomNonempty, None, &cfg)
}

fn main() {
    let poisson = TrafficShape::Poisson;
    let burst = TrafficShape::Burst { batch: 8 };
    let onoff = TrafficShape::OnOff {
        mean_on: 2.0,
        mean_off: 6.0,
    };

    println!("Two clients, one bus (mu = 4), both flows at lambda = 1.6.\n");
    println!(
        "{:<44} {:>8} {:>8} {:>9} {:>9}",
        "scenario", "wait[p]", "wait[q]", "loss[p]", "loss[q]"
    );
    for (label, arch) in [
        (
            "external arbitration, Poisson + Poisson",
            two_clients(BusArbitration::External, poisson, poisson),
        ),
        (
            "priority to p, Poisson + Poisson",
            two_clients(BusArbitration::Priority, poisson, poisson),
        ),
        (
            "external arbitration, Burst{8} + Poisson",
            two_clients(BusArbitration::External, burst, poisson),
        ),
        (
            "locked transfers {4}, Burst{8} + Poisson",
            two_clients(BusArbitration::Locked { max_batch: 4 }, burst, poisson),
        ),
        (
            "external arbitration, OnOff + Poisson",
            two_clients(BusArbitration::External, onoff, poisson),
        ),
    ] {
        let r = run(&arch);
        println!(
            "{label:<44} {:>8.3} {:>8.3} {:>8.1}% {:>8.1}%",
            r.per_queue[0].mean_wait,
            r.per_queue[1].mean_wait,
            100.0 * r.per_proc[0].lost / r.per_proc[0].offered,
            100.0 * r.per_proc[1].lost / r.per_proc[1].offered,
        );
    }

    println!();
    println!("Readings (every run is deterministic per seed):");
    println!("- priority starves the second-declared client's waits in favor of the first;");
    println!("- bursty arrivals raise loss at the same average rate (finite buffers");
    println!("  punish trains of arrivals that Poisson smoothness avoids);");
    println!("- locked transfers drain a bursty client's trains back-to-back, trading");
    println!("  the other client's latency for the bursty one's.");
}
