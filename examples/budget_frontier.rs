//! Pareto frontier of loss vs. buffer budget on the network-processor
//! evaluation platform — the paper's Table 1 question asked at sweep
//! scale, answered by the parallel campaign engine.
//!
//! Each budget point runs the full methodology: joint-LP sizing, then
//! the three-policy re-simulation. The LP's *predicted* loss is nearly
//! budget-flat by construction (its occupancy-budget row is slack or
//! relaxed almost everywhere), so the frontier is read off the
//! simulated post-sizing loss — exactly how the paper reads Table 1.
//!
//! Run with `cargo run --release --example budget_frontier`.
//! The output is identical for every worker count (the sweep engine's
//! determinism contract), so this table is quotable as an artifact.

use socbuf::sizing::{PipelineConfig, SizingConfig};
use socbuf::soc::templates;
use socbuf::sweep::{BudgetSweep, WorkPool};

fn main() {
    let arch = templates::network_processor();
    let budgets: Vec<usize> = (0..7).map(|i| 80 + 80 * i).collect();
    let mut sweep = BudgetSweep::new(&arch, budgets);
    sweep.sizing = SizingConfig {
        state_cap: 12,
        effort_levels: 3,
        ..SizingConfig::default()
    };
    sweep.simulate = Some(PipelineConfig {
        sizing: SizingConfig::default(), // overridden by `sweep.sizing`
        horizon: 500.0,
        warmup: 50.0,
        seed: 2005,
        replications: 3,
        ..PipelineConfig::default()
    });

    let pool = WorkPool::available();
    let report = sweep.run(&pool).expect("network_processor grid sizes");

    println!(
        "network_processor: {} budget points on {} workers\n",
        report.points.len(),
        pool.workers()
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "budget", "pre_loss", "post_loss", "timeout", "improv", "frontier"
    );
    let frontier = report.pareto_frontier();
    for p in &report.points {
        let sim = p.sim.as_ref().expect("simulating sweep");
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>12.1} {:>11.1}% {:>9}",
            p.budget,
            sim.pre_loss,
            sim.post_loss,
            sim.timeout_loss,
            100.0 * sim.improvement_vs_pre,
            if frontier.contains(&p.index) { "*" } else { "" }
        );
    }
    println!("\nPareto frontier (strict improvements only):");
    print!("{}", report.frontier_table());
    println!("\nCSV and JSON-lines renderings are available via");
    println!("`report.to_csv()` / `report.to_jsonl()` for downstream tooling.");
}
