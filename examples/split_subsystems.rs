//! The paper's Figure 2: splitting the Figure 1 architecture at its
//! bridges into four linear subsystems. Prints the membership of every
//! subsystem and the Graphviz rendering.
//!
//! Run with: `cargo run --release --example split_subsystems`

use socbuf::sizing::coupled::CoupledSystem;
use socbuf::soc::dot::split_to_dot;
use socbuf::soc::split::split;
use socbuf::soc::{templates, BufferAllocation};

fn main() {
    let arch = templates::figure1();
    let parts = split(&arch);

    println!(
        "figure 1 splits into {} subsystems:\n",
        parts.subsystems.len()
    );
    for sub in &parts.subsystems {
        let buses: Vec<&str> = sub.buses.iter().map(|&b| arch.bus(b).name()).collect();
        let procs: Vec<&str> = sub
            .processors
            .iter()
            .map(|&p| arch.processor(p).name())
            .collect();
        let inc: Vec<&str> = sub
            .incoming_bridges
            .iter()
            .map(|&g| arch.bridge(g).name())
            .collect();
        println!(
            "subsystem {}: buses {:?}, processors {:?}, incoming bridge buffers {:?}",
            sub.index + 1,
            buses,
            procs,
            inc
        );
    }

    // Why the split is necessary: the unsplit system is quadratic.
    let alloc = BufferAllocation::uniform(&arch, 22);
    let coupled = CoupledSystem::build(&arch, &alloc);
    println!(
        "\nunsplit (no bridge buffers) steady-state system: {} quadratic cross-bus product terms",
        coupled.quadratic_term_count()
    );

    println!("\n--- Graphviz (paste into `dot -Tpng`) ---\n");
    println!("{}", split_to_dot(&arch, &parts));
}
