//! Building a custom architecture with the public builder API and
//! running the whole methodology on it: a two-cluster design with a hot
//! DSP that the uniform split starves.
//!
//! Run with: `cargo run --release --example custom_architecture`

use socbuf::sizing::{evaluate_policies, PipelineConfig, SizingReport};
use socbuf::soc::{ArchitectureBuilder, FlowTarget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = ArchitectureBuilder::new();
    let compute = b.add_bus("compute", 2.0)?;
    let io = b.add_bus("io", 0.8)?;
    let dsp = b.add_processor("dsp", &[compute], 2.0)?; // losses weigh double
    let cpu = b.add_processor("cpu", &[compute], 1.0)?;
    let nic = b.add_processor("nic", &[io], 1.0)?;
    b.add_bidirectional_bridge("xbar", compute, io)?;

    b.add_flow(dsp, FlowTarget::Bus(compute), 1.1)?; // hot streaming
    b.add_flow(cpu, FlowTarget::Bus(compute), 0.4)?;
    b.add_flow(cpu, FlowTarget::Processor(nic), 0.15)?; // crosses the bridge
    b.add_flow(nic, FlowTarget::Processor(cpu), 0.25)?; // crosses back
    b.add_flow(nic, FlowTarget::Bus(io), 0.2)?;
    let arch = b.build()?;

    println!(
        "custom architecture: {} queues across {} buses",
        arch.num_queues(),
        arch.num_buses()
    );

    let config = PipelineConfig {
        horizon: 2000.0,
        warmup: 200.0,
        ..PipelineConfig::default()
    };
    let cmp = evaluate_policies(&arch, 30, &config)?;
    let report = SizingReport::new(&arch, &cmp);
    print!("{}", report.allocation_table());
    print!("{}", report.figure3_table());
    println!(
        "\npost-sizing loss fractions: dsp {:.1}% ({:.0} offered), cpu {:.1}% ({:.0} offered);\nthe streaming dsp carries ~3x the cpu's traffic on the same bus",
        100.0 * cmp.post.per_proc[0].lost / cmp.post.per_proc[0].offered.max(1.0),
        cmp.post.per_proc[0].offered,
        100.0 * cmp.post.per_proc[1].lost / cmp.post.per_proc[1].offered.max(1.0),
        cmp.post.per_proc[1].offered
    );
    Ok(())
}
