//! The paper's evaluation platform: the 18-processor network processor.
//! Reproduces a single budget point of Figure 3 end to end and prints
//! the allocation the CTMDP methodology chooses.
//!
//! Run with: `cargo run --release --example network_processor`

use socbuf::sizing::{evaluate_policies, PipelineConfig, SizingReport};
use socbuf::soc::templates;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = templates::network_processor();
    println!(
        "network processor: {} processors on {} buses via {} bridges",
        arch.num_processors(),
        arch.num_buses(),
        arch.num_bridges()
    );
    for bus in arch.bus_ids() {
        println!(
            "  bus {:<6} mu = {:<4}  nominal utilization = {:.2}",
            arch.bus(bus).name(),
            arch.bus(bus).service_rate(),
            arch.bus_utilization_estimate(bus)
        );
    }

    let budget = 320; // the middle column of the paper's Table 1
    println!("\nsizing with total budget {budget} units …");
    let cmp = evaluate_policies(&arch, budget, &PipelineConfig::default())?;
    let report = SizingReport::new(&arch, &cmp);

    println!("\n--- allocation ---");
    print!("{}", report.allocation_table());
    println!(
        "\nbudget shadow price: {:.4} (loss-rate reduction per extra expected unit)",
        cmp.outcome.budget_shadow_price
    );
    println!("\n--- Figure 3 series (losses per processor) ---");
    print!("{}", report.figure3_table());
    Ok(())
}
