//! Sizing an AMBA-style AHB/APB system — the bus standard the paper
//! names as the typical bridge scenario. Shows the bridge buffer
//! receiving its own space and the slow APB being protected.
//!
//! Run with: `cargo run --release --example amba_bridge`

use socbuf::sizing::{size_buffers, SizingConfig};
use socbuf::soc::dot::to_dot;
use socbuf::soc::templates;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = templates::amba();
    println!("{}", to_dot(&arch));

    for budget in [8usize, 16, 32] {
        let outcome = size_buffers(&arch, budget, &SizingConfig::default())?;
        println!("budget {budget:>3}:");
        for q in arch.queue_ids() {
            println!(
                "  {:<14} requirement {:>2}  granted {:>2}",
                arch.queue_name(q),
                outcome.requirements[q.index()],
                outcome.allocation.units(q)
            );
        }
        println!(
            "  predicted weighted loss rate: {:.5}\n",
            outcome.predicted_loss_rate
        );
    }
    Ok(())
}
