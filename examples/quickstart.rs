//! Quickstart: size the buffers of the paper's Figure 1 architecture and
//! compare the three policies (constant sizing, CTMDP resizing, timeout).
//!
//! Run with: `cargo run --release --example quickstart`

use socbuf::sizing::{evaluate_policies, PipelineConfig, SizingReport};
use socbuf::soc::split::split;
use socbuf::soc::templates;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = templates::figure1();
    println!(
        "architecture: {} buses, {} processors, {} bridges, {} queues",
        arch.num_buses(),
        arch.num_processors(),
        arch.num_bridges(),
        arch.num_queues()
    );

    let parts = split(&arch);
    println!(
        "split into {} linear subsystems (paper: 4)\n",
        parts.subsystems.len()
    );

    let budget = 22; // two units per queue on average
    let cmp = evaluate_policies(&arch, budget, &PipelineConfig::default())?;
    let report = SizingReport::new(&arch, &cmp);

    println!("--- buffer allocation (budget {budget}) ---");
    print!("{}", report.allocation_table());
    println!("\n--- per-processor losses ---");
    print!("{}", report.figure3_table());
    Ok(())
}
