//! Sizing-as-a-service: start a loopback server, issue the same query
//! twice, and watch the second answer come back warm (~0 pivots) with
//! byte-identical result JSON.
//!
//! Run with: `cargo run --release --example sizing_service`

use socbuf::serve::{Client, Server, ServerConfig};
use socbuf::sizing::SizingConfig;
use socbuf::soc::templates;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = Server::bind_tcp("127.0.0.1:0", ServerConfig::default())?;
    let addr = server.tcp_addr().expect("bound over TCP");
    println!("serving on {addr}");

    let arch = templates::network_processor();
    let config = SizingConfig {
        state_cap: 16,
        effort_levels: 4,
        ..SizingConfig::default()
    };
    let budget = 320;

    let mut client = Client::connect_tcp(addr)?;

    let cold = client.size(&arch, &config, budget)?;
    println!(
        "cold: warm={} pivots={} solve={}us",
        cold.trace.warm, cold.trace.pivots, cold.trace.solve_us
    );

    let warm = client.size(&arch, &config, budget)?;
    println!(
        "warm: warm={} pivots={} solve={}us",
        warm.trace.warm, warm.trace.pivots, warm.trace.solve_us
    );
    assert_eq!(
        cold.result_json, warm.result_json,
        "warm answers are byte-identical to cold ones"
    );

    // A nearby budget re-targets the cached basis instead of solving
    // from scratch.
    let retarget = client.size(&arch, &config, budget + 32)?;
    println!(
        "retarget (budget {}): warm={} pivots={}",
        budget + 32,
        retarget.trace.warm,
        retarget.trace.pivots
    );
    println!(
        "allocation at budget {budget}: {:?}",
        cold.outcome.allocation
    );

    let frontier = client.frontier(&arch, &config, &[160, 240, 320])?;
    println!("\n--- Pareto frontier over budgets 160/240/320 ---");
    print!("{}", frontier.table);

    let health = client.health()?;
    println!(
        "cache: {} entries, {} hits / {} misses, warm pivots {}",
        health.cache_entries, health.hits, health.misses, health.warm_pivots
    );

    server.shutdown();
    Ok(())
}
