use socbuf_markov::Ctmc;

use crate::{CtmdpError, CtmdpModel};

/// A randomized stationary policy: for each state, a probability
/// distribution over that state's actions.
///
/// Feinberg's theorem guarantees that constrained average-cost CTMDPs
/// admit optimal policies of exactly this form, and that basic LP optima
/// randomize in at most K states (one per side constraint).
#[derive(Debug, Clone, PartialEq)]
pub struct RandomizedPolicy {
    /// `probs[s][a]` = probability of playing action `a` in state `s`.
    probs: Vec<Vec<f64>>,
}

impl RandomizedPolicy {
    /// Builds a policy from per-state action distributions.
    ///
    /// # Errors
    ///
    /// [`CtmdpError::InvalidModel`] if the shape does not match `model`
    /// or a row is not a probability distribution.
    pub fn new(model: &CtmdpModel, probs: Vec<Vec<f64>>) -> Result<Self, CtmdpError> {
        if probs.len() != model.num_states() {
            return Err(CtmdpError::InvalidModel(format!(
                "policy has {} states, model has {}",
                probs.len(),
                model.num_states()
            )));
        }
        for (s, row) in probs.iter().enumerate() {
            if row.len() != model.num_actions(s) {
                return Err(CtmdpError::InvalidModel(format!(
                    "state {s}: policy row has {} entries, model has {} actions",
                    row.len(),
                    model.num_actions(s)
                )));
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-6 || row.iter().any(|&p| p < -1e-9) {
                return Err(CtmdpError::InvalidModel(format!(
                    "state {s}: action probabilities sum to {sum}, expected 1"
                )));
            }
        }
        Ok(RandomizedPolicy { probs })
    }

    /// Probability of playing action `a` in state `s`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn prob(&self, s: usize, a: usize) -> f64 {
        self.probs[s][a]
    }

    /// Number of states covered by the policy.
    pub fn num_states(&self) -> usize {
        self.probs.len()
    }

    /// Number of actions available in state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn num_actions(&self, s: usize) -> usize {
        self.probs[s].len()
    }

    /// States in which more than one action has probability above `tol` —
    /// the "switching" states of the K-switching structure.
    pub fn randomized_states(&self, tol: f64) -> Vec<usize> {
        self.probs
            .iter()
            .enumerate()
            .filter(|(_, row)| row.iter().filter(|&&p| p > tol).count() > 1)
            .map(|(s, _)| s)
            .collect()
    }

    /// Collapses to a deterministic policy by taking the modal action of
    /// every state.
    pub fn to_deterministic(&self) -> DeterministicPolicy {
        let choice = self
            .probs
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are not NaN"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect();
        DeterministicPolicy { choice }
    }

    /// The CTMC induced by following this policy in `model`:
    /// `q_φ(j|s) = Σ_a φ(a|s) q(j|s,a)`.
    ///
    /// # Errors
    ///
    /// Propagates chain-construction failures.
    pub fn induced_chain(&self, model: &CtmdpModel) -> Result<Ctmc, CtmdpError> {
        let n = model.num_states();
        let mut rates = Vec::new();
        for s in 0..n {
            for a in 0..model.num_actions(s) {
                let p = self.probs[s][a];
                if p <= 0.0 {
                    continue;
                }
                for &(to, r) in model.transitions(s, a) {
                    if r > 0.0 {
                        rates.push((s, to, p * r));
                    }
                }
            }
        }
        Ok(Ctmc::from_rates(n, &rates)?)
    }

    /// Evaluates the long-run average objective and constraint cost rates
    /// of this policy on `model`, via the induced chain's stationary
    /// distribution.
    ///
    /// # Errors
    ///
    /// [`CtmdpError::Markov`] if the induced chain is reducible (the
    /// average cost then depends on the initial state and is not a
    /// single number).
    pub fn evaluate(&self, model: &CtmdpModel) -> Result<PolicyEvaluation, CtmdpError> {
        let chain = self.induced_chain(model)?;
        let pi = chain.stationary()?;
        let mut cost = 0.0;
        let mut constraint_costs = vec![0.0; model.num_constraints()];
        let mut occupation = vec![Vec::new(); model.num_states()];
        for s in 0..model.num_states() {
            occupation[s] = vec![0.0; model.num_actions(s)];
            for a in 0..model.num_actions(s) {
                let x = pi[s] * self.probs[s][a];
                occupation[s][a] = x;
                cost += x * model.cost(s, a);
                for k in 0..model.num_constraints() {
                    constraint_costs[k] += x * model.constraint_cost(s, a, k);
                }
            }
        }
        Ok(PolicyEvaluation {
            stationary: pi,
            occupation,
            average_cost: cost,
            constraint_values: constraint_costs,
        })
    }
}

/// A deterministic stationary policy: one action per state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicPolicy {
    pub(crate) choice: Vec<usize>,
}

impl DeterministicPolicy {
    /// Builds a policy from explicit choices.
    ///
    /// # Errors
    ///
    /// [`CtmdpError::InvalidModel`] if the shape or an action index does
    /// not match `model`.
    pub fn new(model: &CtmdpModel, choice: Vec<usize>) -> Result<Self, CtmdpError> {
        if choice.len() != model.num_states() {
            return Err(CtmdpError::InvalidModel(format!(
                "policy has {} states, model has {}",
                choice.len(),
                model.num_states()
            )));
        }
        for (s, &a) in choice.iter().enumerate() {
            if a >= model.num_actions(s) {
                return Err(CtmdpError::InvalidModel(format!(
                    "state {s}: action {a} out of range"
                )));
            }
        }
        Ok(DeterministicPolicy { choice })
    }

    /// The chosen action in state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn action(&self, s: usize) -> usize {
        self.choice[s]
    }

    /// Converts into the equivalent (degenerate) randomized policy.
    ///
    /// # Errors
    ///
    /// [`CtmdpError::InvalidModel`] if the policy does not match `model`.
    pub fn to_randomized(&self, model: &CtmdpModel) -> Result<RandomizedPolicy, CtmdpError> {
        let mut probs = Vec::with_capacity(self.choice.len());
        for (s, &a) in self.choice.iter().enumerate() {
            let mut row = vec![0.0; model.num_actions(s)];
            if a >= row.len() {
                return Err(CtmdpError::InvalidModel(format!(
                    "state {s}: action {a} out of range"
                )));
            }
            row[a] = 1.0;
            probs.push(row);
        }
        RandomizedPolicy::new(model, probs)
    }
}

/// The result of evaluating a policy: stationary distribution, occupation
/// measure and long-run average cost rates.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyEvaluation {
    /// Stationary distribution of the induced chain.
    pub stationary: Vec<f64>,
    /// `occupation[s][a] = π(s)·φ(a|s)`.
    pub occupation: Vec<Vec<f64>>,
    /// Long-run average objective cost rate.
    pub average_cost: f64,
    /// Long-run average cost rate of each side constraint.
    pub constraint_values: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmdpBuilder;

    fn two_state() -> CtmdpModel {
        let mut b = CtmdpBuilder::new(2, 1);
        b.add_action(0, "slow", vec![(1, 1.0)], 0.0, vec![0.0])
            .unwrap();
        b.add_action(0, "fast", vec![(1, 4.0)], 0.0, vec![1.0])
            .unwrap();
        b.add_action(1, "back", vec![(0, 2.0)], 1.0, vec![0.0])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn validation_of_shapes() {
        let m = two_state();
        assert!(RandomizedPolicy::new(&m, vec![vec![1.0]]).is_err());
        assert!(RandomizedPolicy::new(&m, vec![vec![0.7, 0.7], vec![1.0]]).is_err());
        assert!(RandomizedPolicy::new(&m, vec![vec![0.5, 0.5], vec![1.0]]).is_ok());
        assert!(DeterministicPolicy::new(&m, vec![2, 0]).is_err());
        assert!(DeterministicPolicy::new(&m, vec![1, 0]).is_ok());
    }

    #[test]
    fn deterministic_evaluation_matches_hand_computation() {
        let m = two_state();
        // Always "slow": chain 0→1 at 1, 1→0 at 2 → π = (2/3, 1/3).
        let d = DeterministicPolicy::new(&m, vec![0, 0]).unwrap();
        let eval = d.to_randomized(&m).unwrap().evaluate(&m).unwrap();
        assert!((eval.stationary[0] - 2.0 / 3.0).abs() < 1e-10);
        assert!((eval.average_cost - 1.0 / 3.0).abs() < 1e-10);
        assert!(eval.constraint_values[0].abs() < 1e-12);
    }

    #[test]
    fn randomization_mixes_rates() {
        let m = two_state();
        // 50/50 slow/fast in state 0 → exit rate 2.5; π = (2/4.5, 2.5/4.5).
        let p = RandomizedPolicy::new(&m, vec![vec![0.5, 0.5], vec![1.0]]).unwrap();
        let eval = p.evaluate(&m).unwrap();
        assert!((eval.stationary[0] - 2.0 / 4.5).abs() < 1e-10);
        // Constraint cost = time in (0, fast) = π(0)·0.5.
        assert!((eval.constraint_values[0] - 0.5 * 2.0 / 4.5).abs() < 1e-10);
        assert_eq!(p.randomized_states(1e-9), vec![0]);
    }

    #[test]
    fn modal_collapse() {
        let m = two_state();
        let p = RandomizedPolicy::new(&m, vec![vec![0.3, 0.7], vec![1.0]]).unwrap();
        let d = p.to_deterministic();
        assert_eq!(d.action(0), 1);
        assert_eq!(d.action(1), 0);
    }

    #[test]
    fn occupation_sums_to_one() {
        let m = two_state();
        let p = RandomizedPolicy::new(&m, vec![vec![0.25, 0.75], vec![1.0]]).unwrap();
        let eval = p.evaluate(&m).unwrap();
        let total: f64 = eval.occupation.iter().flatten().sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reducible_policy_chain_errors() {
        // A model where one action disconnects the chain.
        let mut b = CtmdpBuilder::new(2, 0);
        b.add_action(0, "stay-ish", vec![(1, 0.0)], 0.0, vec![])
            .unwrap();
        b.add_action(1, "back", vec![(0, 1.0)], 0.0, vec![])
            .unwrap();
        let m = b.build().unwrap();
        let d = DeterministicPolicy::new(&m, vec![0, 0]).unwrap();
        let r = d.to_randomized(&m).unwrap();
        assert!(matches!(r.evaluate(&m), Err(CtmdpError::Markov(_))));
    }
}
