use socbuf_linalg::Csr;

use crate::CtmdpError;

/// One admissible action in one state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ActionData {
    pub label: String,
    /// Exponential transition rates `(target state, rate)`; self-loops
    /// are not stored (they are meaningless in continuous time).
    pub transitions: Vec<(usize, f64)>,
    /// Running cost rate accrued while this state–action pair is active.
    pub cost: f64,
    /// Running cost rates for each side constraint.
    pub constraint_costs: Vec<f64>,
}

/// A finite constrained continuous-time Markov decision process.
///
/// Build one with [`CtmdpBuilder`]; solve it with
/// [`crate::solve_constrained`].
///
/// Conventions:
/// * States are `0..num_states()`.
/// * Actions are indexed per state, in insertion order. Where an ordering
///   matters (the K-switching threshold analysis), insert actions in
///   increasing "intensity" (e.g. service effort).
/// * Costs are *rates*: the objective is the long-run average of the
///   instantaneous cost rate, and each side constraint bounds the
///   long-run average of its own cost rate.
#[derive(Debug, Clone, PartialEq)]
pub struct CtmdpModel {
    pub(crate) actions: Vec<Vec<ActionData>>,
    pub(crate) bounds: Vec<f64>,
}

/// Incremental builder for [`CtmdpModel`].
///
/// # Examples
///
/// ```
/// use socbuf_ctmdp::CtmdpBuilder;
///
/// # fn main() -> Result<(), socbuf_ctmdp::CtmdpError> {
/// let mut b = CtmdpBuilder::new(2, 0);
/// b.add_action(0, "go", vec![(1, 1.0)], 0.0, vec![])?;
/// b.add_action(1, "back", vec![(0, 2.0)], 1.0, vec![])?;
/// let model = b.build()?;
/// assert_eq!(model.num_states(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CtmdpBuilder {
    actions: Vec<Vec<ActionData>>,
    bounds: Vec<f64>,
}

impl CtmdpBuilder {
    /// Starts a model with `num_states` states and `num_constraints`
    /// side constraints (bounds default to `+∞`-like `f64::MAX`; set them
    /// with [`CtmdpBuilder::set_constraint_bound`]).
    pub fn new(num_states: usize, num_constraints: usize) -> Self {
        CtmdpBuilder {
            actions: vec![Vec::new(); num_states],
            bounds: vec![f64::MAX; num_constraints],
        }
    }

    /// Adds an action to `state` with the given transition rates, cost
    /// rate and per-constraint cost rates. Returns the action's index
    /// within the state.
    ///
    /// # Errors
    ///
    /// [`CtmdpError::InvalidModel`] if the state or a transition target
    /// is out of range, a rate is negative or non-finite, a transition
    /// self-loops, or `constraint_costs.len()` does not match the number
    /// of constraints declared in [`CtmdpBuilder::new`].
    pub fn add_action(
        &mut self,
        state: usize,
        label: impl Into<String>,
        transitions: Vec<(usize, f64)>,
        cost: f64,
        constraint_costs: Vec<f64>,
    ) -> Result<usize, CtmdpError> {
        let n = self.actions.len();
        if state >= n {
            return Err(CtmdpError::InvalidModel(format!(
                "state {state} out of range (model has {n} states)"
            )));
        }
        for &(to, rate) in &transitions {
            if to >= n {
                return Err(CtmdpError::InvalidModel(format!(
                    "transition target {to} out of range (model has {n} states)"
                )));
            }
            if to == state {
                return Err(CtmdpError::InvalidModel(format!(
                    "self-loop on state {state}: self-transitions are meaningless in continuous time"
                )));
            }
            if rate < 0.0 || !rate.is_finite() {
                return Err(CtmdpError::InvalidModel(format!(
                    "rate {rate} from state {state} to {to} must be finite and non-negative"
                )));
            }
        }
        if !cost.is_finite() {
            return Err(CtmdpError::InvalidModel(format!(
                "cost rate {cost} in state {state} must be finite"
            )));
        }
        if constraint_costs.len() != self.bounds.len() {
            return Err(CtmdpError::InvalidModel(format!(
                "expected {} constraint costs, got {}",
                self.bounds.len(),
                constraint_costs.len()
            )));
        }
        if constraint_costs.iter().any(|c| !c.is_finite()) {
            return Err(CtmdpError::InvalidModel(
                "constraint cost rates must be finite".into(),
            ));
        }
        self.actions[state].push(ActionData {
            label: label.into(),
            transitions,
            cost,
            constraint_costs,
        });
        Ok(self.actions[state].len() - 1)
    }

    /// Sets the upper bound of constraint `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range or `bound` is NaN.
    pub fn set_constraint_bound(&mut self, k: usize, bound: f64) {
        assert!(!bound.is_nan(), "constraint bound must not be NaN");
        self.bounds[k] = bound;
    }

    /// Finalizes the model.
    ///
    /// # Errors
    ///
    /// [`CtmdpError::InvalidModel`] if the model has no states or some
    /// state has no actions.
    pub fn build(self) -> Result<CtmdpModel, CtmdpError> {
        if self.actions.is_empty() {
            return Err(CtmdpError::InvalidModel("model has no states".into()));
        }
        for (s, acts) in self.actions.iter().enumerate() {
            if acts.is_empty() {
                return Err(CtmdpError::InvalidModel(format!(
                    "state {s} has no actions"
                )));
            }
        }
        Ok(CtmdpModel {
            actions: self.actions,
            bounds: self.bounds,
        })
    }
}

impl CtmdpModel {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.actions.len()
    }

    /// Number of side constraints.
    pub fn num_constraints(&self) -> usize {
        self.bounds.len()
    }

    /// Number of actions available in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn num_actions(&self, state: usize) -> usize {
        self.actions[state].len()
    }

    /// Total number of state–action pairs (the LP's variable count).
    pub fn num_pairs(&self) -> usize {
        self.actions.iter().map(Vec::len).sum()
    }

    /// Label of action `a` in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `a` is out of range.
    pub fn action_label(&self, state: usize, a: usize) -> &str {
        &self.actions[state][a].label
    }

    /// Transition rates `(target, rate)` of action `a` in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `a` is out of range.
    pub fn transitions(&self, state: usize, a: usize) -> &[(usize, f64)] {
        &self.actions[state][a].transitions
    }

    /// Total exit rate of `(state, a)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `a` is out of range.
    pub fn exit_rate(&self, state: usize, a: usize) -> f64 {
        self.actions[state][a]
            .transitions
            .iter()
            .map(|&(_, r)| r)
            .sum()
    }

    /// Objective cost rate of `(state, a)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `a` is out of range.
    pub fn cost(&self, state: usize, a: usize) -> f64 {
        self.actions[state][a].cost
    }

    /// Cost rate of `(state, a)` under side constraint `k`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn constraint_cost(&self, state: usize, a: usize, k: usize) -> f64 {
        self.actions[state][a].constraint_costs[k]
    }

    /// Upper bound of side constraint `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn constraint_bound(&self, k: usize) -> f64 {
        self.bounds[k]
    }

    /// Column index of the pair `(state, a)` in the lexicographic
    /// state–action layout used by [`CtmdpModel::transition_csr`] and by
    /// the occupation-measure LP's variable order.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `a` is out of range.
    pub fn pair_index(&self, state: usize, a: usize) -> usize {
        assert!(a < self.actions[state].len(), "action {a} out of range");
        self.actions[..state].iter().map(Vec::len).sum::<usize>() + a
    }

    /// The model's transition structure as a sparse balance matrix `B`:
    /// rows are states `j`, columns are state–action pairs `(s, a)` in
    /// lexicographic order, and `B[j, (s, a)] = q(j | s, a)` — the rate
    /// from `s` to `j` under action `a`, with the diagonal-in-`s` entry
    /// `q(s | s, a) = −exit_rate(s, a)`.
    ///
    /// The occupation-measure LP's balance block is exactly
    /// `B x = 0`, so [`crate::solve_constrained`] feeds this matrix
    /// straight into the solver's CSR constraint path. Assembly is
    /// `O(nnz)` — the matrix is never densified.
    pub fn transition_csr(&self) -> Csr {
        let n = self.num_states();
        let pairs = self.num_pairs();
        let nnz: usize = self
            .actions
            .iter()
            .flatten()
            .map(|a| a.transitions.len() + 1)
            .sum();
        let mut triplets = Vec::with_capacity(nnz);
        let mut col = 0usize;
        for (s, acts) in self.actions.iter().enumerate() {
            for act in acts {
                let mut exit = 0.0;
                for &(to, rate) in &act.transitions {
                    if rate > 0.0 {
                        triplets.push((to, col, rate));
                        exit += rate;
                    }
                }
                if exit > 0.0 {
                    triplets.push((s, col, -exit));
                }
                col += 1;
            }
        }
        Csr::from_triplets(n, pairs, &triplets)
            .expect("validated transitions index states and pairs in range")
    }

    /// Largest exit rate over all state–action pairs (the minimum valid
    /// uniformization rate).
    pub fn max_exit_rate(&self) -> f64 {
        let mut m = 0.0_f64;
        for s in 0..self.num_states() {
            for a in 0..self.num_actions(s) {
                m = m.max(self.exit_rate(s, a));
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CtmdpBuilder {
        let mut b = CtmdpBuilder::new(2, 1);
        b.add_action(0, "a", vec![(1, 1.0)], 0.5, vec![0.0])
            .unwrap();
        b.add_action(1, "b", vec![(0, 2.0)], 1.5, vec![1.0])
            .unwrap();
        b
    }

    #[test]
    fn builder_roundtrip() {
        let m = tiny().build().unwrap();
        assert_eq!(m.num_states(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.num_actions(0), 1);
        assert_eq!(m.num_pairs(), 2);
        assert_eq!(m.action_label(1, 0), "b");
        assert_eq!(m.exit_rate(1, 0), 2.0);
        assert_eq!(m.cost(0, 0), 0.5);
        assert_eq!(m.constraint_cost(1, 0, 0), 1.0);
        assert_eq!(m.max_exit_rate(), 2.0);
    }

    #[test]
    fn rejects_bad_indices_and_rates() {
        let mut b = CtmdpBuilder::new(2, 0);
        assert!(b.add_action(5, "x", vec![], 0.0, vec![]).is_err());
        assert!(b.add_action(0, "x", vec![(7, 1.0)], 0.0, vec![]).is_err());
        assert!(b.add_action(0, "x", vec![(1, -1.0)], 0.0, vec![]).is_err());
        assert!(b.add_action(0, "x", vec![(0, 1.0)], 0.0, vec![]).is_err());
        assert!(b
            .add_action(0, "x", vec![(1, 1.0)], f64::NAN, vec![])
            .is_err());
        assert!(b
            .add_action(0, "x", vec![(1, 1.0)], 0.0, vec![1.0])
            .is_err());
    }

    #[test]
    fn build_requires_actions_everywhere() {
        let b = CtmdpBuilder::new(2, 0);
        assert!(b.build().is_err());
        let mut b = CtmdpBuilder::new(2, 0);
        b.add_action(0, "only", vec![(1, 1.0)], 0.0, vec![])
            .unwrap();
        assert!(b.build().is_err());
        assert!(CtmdpBuilder::new(0, 0).build().is_err());
    }

    #[test]
    fn transition_csr_encodes_balance_matrix() {
        let m = tiny().build().unwrap();
        let b = m.transition_csr();
        assert_eq!((b.rows(), b.cols()), (2, 2));
        assert_eq!(m.pair_index(0, 0), 0);
        assert_eq!(m.pair_index(1, 0), 1);
        // Pair (0, "a"): rate 1 to state 1, exit −1 on state 0.
        assert_eq!(b.get(0, 0), -1.0);
        assert_eq!(b.get(1, 0), 1.0);
        // Pair (1, "b"): rate 2 to state 0, exit −2 on state 1.
        assert_eq!(b.get(0, 1), 2.0);
        assert_eq!(b.get(1, 1), -2.0);
        // Columns of a balance matrix sum to zero.
        let col_sums = b.vecmat(&vec![1.0; b.rows()]).unwrap();
        assert!(col_sums.iter().all(|s| s.abs() < 1e-12));
    }

    #[test]
    fn transition_csr_is_sparse_for_queue_models() {
        // A service-rate-controlled queue has ≤ 3 entries per pair
        // column regardless of the state count.
        let k = 50usize;
        let mut b = CtmdpBuilder::new(k + 1, 0);
        for s in 0..=k {
            let mut trans = Vec::new();
            if s < k {
                trans.push((s + 1, 1.0));
            }
            if s > 0 {
                trans.push((s - 1, 2.0));
            }
            b.add_action(s, "serve", trans, s as f64, vec![]).unwrap();
        }
        let m = b.build().unwrap();
        let csr = m.transition_csr();
        assert_eq!(csr.cols(), m.num_pairs());
        assert!(csr.nnz() <= 3 * m.num_pairs());
    }

    #[test]
    fn constraint_bounds_default_loose() {
        let m = tiny().build().unwrap();
        assert_eq!(m.constraint_bound(0), f64::MAX);
        let mut b = tiny();
        b.set_constraint_bound(0, 0.25);
        assert_eq!(b.build().unwrap().constraint_bound(0), 0.25);
    }
}
