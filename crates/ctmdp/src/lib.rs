//! Constrained average-cost continuous-time Markov decision processes.
//!
//! This crate implements the control-theoretic core of the DATE 2005
//! buffer-sizing paper: Feinberg's linear-programming characterization of
//! constrained average-reward CTMDPs (*"Optimal control of average reward
//! constrained continuous time finite Markov decision processes"*, CDC
//! 2002 — reference \[1\] of the paper).
//!
//! A finite CTMDP is described by a [`CtmdpModel`]: states, per-state
//! action sets, exponential transition rates, a running *cost rate* per
//! state–action pair, and any number of additional constraint cost rates
//! with upper bounds. Solving ([`solve_constrained`]) builds the
//! occupation-measure LP
//!
//! ```text
//!   minimize    Σ x(s,a) c(s,a)
//!   subject to  Σ x(s,a) q(j|s,a) = 0        for every state j
//!               Σ x(s,a) = 1
//!               Σ x(s,a) c_k(s,a) ≤ C_k      for every constraint k
//!               x ≥ 0
//! ```
//!
//! over the time-fraction occupation measure `x(s,a)` and extracts the
//! optimal **randomized stationary policy** `φ(a|s) = x(s,a)/x(s)`.
//! Because the LP is solved by simplex (a *basic* optimal solution), the
//! policy randomizes in at most K states for K constraints — the
//! **K-switching** structure the paper uses to translate occupation
//! measures into buffer space. The [`kswitching`] module detects and
//! summarizes that structure; [`relative_value_iteration`] provides an
//! independent dynamic-programming cross-check for the unconstrained
//! case.
//!
//! # Examples
//!
//! ```
//! use socbuf_ctmdp::{CtmdpBuilder, solve_constrained};
//!
//! # fn main() -> Result<(), socbuf_ctmdp::CtmdpError> {
//! // Two-state machine: state 1 is "broken" (cost rate 1). In state 1
//! // we may repair slowly (free) or quickly (constrained resource).
//! let mut b = CtmdpBuilder::new(2, 1);
//! b.add_action(0, "wait", vec![(1, 0.5)], 0.0, vec![0.0])?;
//! b.add_action(1, "slow", vec![(0, 0.4)], 1.0, vec![0.0])?;
//! b.add_action(1, "fast", vec![(0, 4.0)], 1.0, vec![1.0])?;
//! b.set_constraint_bound(0, 0.2); // fast repair ≤ 20% of the time
//! let sol = solve_constrained(&b.build()?)?;
//! assert!(sol.average_cost() < 0.56); // beats never using "fast"
//! # Ok(())
//! # }
//! ```

mod error;
pub mod kswitching;
mod model;
mod policy;
mod solve;
mod value_iteration;

pub use error::CtmdpError;
pub use model::{CtmdpBuilder, CtmdpModel};
pub use policy::{DeterministicPolicy, PolicyEvaluation, RandomizedPolicy};
pub use solve::{solve_constrained, solve_constrained_with, CtmdpSolution};
pub use value_iteration::{relative_value_iteration, ValueIterationResult};
