//! Relative value iteration for *unconstrained* average-cost CTMDPs.
//!
//! The CTMDP is uniformized into a DTMDP with stage cost `c(s,a)/Λ` and
//! transition kernel `P_a = I + Q_a/Λ`; the classical relative value
//! iteration then yields the optimal average cost per stage `g/Λ` and a
//! deterministic optimal policy. This is the independent cross-check for
//! the occupation-measure LP: on unconstrained models both must agree.

use crate::{CtmdpError, CtmdpModel, DeterministicPolicy};

/// Outcome of [`relative_value_iteration`].
#[derive(Debug, Clone)]
pub struct ValueIterationResult {
    /// Optimal long-run average cost *rate* (per unit of continuous time).
    pub average_cost: f64,
    /// Relative value (bias) vector, normalized to `h[0] = 0`.
    pub bias: Vec<f64>,
    /// A greedy optimal deterministic policy.
    pub policy: DeterministicPolicy,
    /// Iterations used.
    pub iterations: usize,
}

/// Runs relative value iteration until the span of successive value
/// differences drops below `epsilon` (in per-stage units), or errors
/// after `max_iterations`.
///
/// The model must be unichain under every policy for the average cost to
/// be state-independent; models built from irreducible queue blocks
/// satisfy this.
///
/// # Errors
///
/// * [`CtmdpError::InvalidModel`] if the model has constraints (use the
///   LP solver for those) or a zero uniformization rate.
/// * [`CtmdpError::NoConvergence`] if the span does not contract in time.
///
/// # Examples
///
/// ```
/// use socbuf_ctmdp::{relative_value_iteration, CtmdpBuilder};
///
/// # fn main() -> Result<(), socbuf_ctmdp::CtmdpError> {
/// let mut b = CtmdpBuilder::new(2, 0);
/// b.add_action(0, "go", vec![(1, 1.0)], 0.0, vec![])?;
/// b.add_action(1, "slow", vec![(0, 1.0)], 1.0, vec![])?;
/// b.add_action(1, "fast", vec![(0, 4.0)], 1.0, vec![])?;
/// let vi = relative_value_iteration(&b.build()?, 1e-10, 100_000)?;
/// assert!((vi.average_cost - 0.2).abs() < 1e-6);
/// assert_eq!(vi.policy.action(1), 1); // fast
/// # Ok(())
/// # }
/// ```
pub fn relative_value_iteration(
    model: &CtmdpModel,
    epsilon: f64,
    max_iterations: usize,
) -> Result<ValueIterationResult, CtmdpError> {
    if model.num_constraints() > 0 {
        return Err(CtmdpError::InvalidModel(
            "value iteration handles unconstrained models only; use solve_constrained".into(),
        ));
    }
    let n = model.num_states();
    let lambda = {
        let max_exit = model.max_exit_rate();
        if max_exit <= 0.0 {
            return Err(CtmdpError::InvalidModel(
                "model has no positive transition rates".into(),
            ));
        }
        // Strictly larger than the max exit rate → strictly positive
        // self-loops → aperiodic uniformized chains.
        1.05 * max_exit
    };

    let mut h = vec![0.0; n];
    let mut w = vec![0.0; n];
    let mut choice = vec![0usize; n];
    let mut iterations = 0;
    let mut last_span = f64::INFINITY;

    while iterations < max_iterations {
        iterations += 1;
        for s in 0..n {
            let mut best = f64::INFINITY;
            let mut best_a = 0;
            for a in 0..model.num_actions(s) {
                // Uniformized one-step cost + expected continuation.
                let mut v = model.cost(s, a) / lambda;
                let exit = model.exit_rate(s, a);
                v += (1.0 - exit / lambda) * h[s];
                for &(to, rate) in model.transitions(s, a) {
                    v += rate / lambda * h[to];
                }
                if v < best - 1e-15 {
                    best = v;
                    best_a = a;
                }
            }
            w[s] = best;
            choice[s] = best_a;
        }
        let diff_max = (0..n).map(|s| w[s] - h[s]).fold(f64::MIN, f64::max);
        let diff_min = (0..n).map(|s| w[s] - h[s]).fold(f64::MAX, f64::min);
        last_span = diff_max - diff_min;
        // Normalize against the reference state to keep values bounded.
        let ref_val = w[0];
        for s in 0..n {
            h[s] = w[s] - ref_val;
        }
        if last_span < epsilon {
            // Average per-stage cost ≈ (diff_max + diff_min)/2; convert
            // back to a rate by multiplying with the uniformization rate.
            let g = 0.5 * (diff_max + diff_min) * lambda;
            let policy = DeterministicPolicy::new(model, choice)?;
            return Ok(ValueIterationResult {
                average_cost: g,
                bias: h,
                policy,
                iterations,
            });
        }
    }
    Err(CtmdpError::NoConvergence {
        iterations,
        span: last_span,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_constrained, CtmdpBuilder};

    fn repair_model(fast_rate: f64) -> CtmdpModel {
        let mut b = CtmdpBuilder::new(2, 0);
        b.add_action(0, "wait", vec![(1, 1.0)], 0.0, vec![])
            .unwrap();
        b.add_action(1, "slow", vec![(0, 1.0)], 1.0, vec![])
            .unwrap();
        b.add_action(1, "fast", vec![(0, fast_rate)], 1.0, vec![])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn agrees_with_lp_on_repair_model() {
        let m = repair_model(4.0);
        let vi = relative_value_iteration(&m, 1e-11, 200_000).unwrap();
        let lp = solve_constrained(&m).unwrap();
        assert!(
            (vi.average_cost - lp.average_cost()).abs() < 1e-6,
            "vi {} vs lp {}",
            vi.average_cost,
            lp.average_cost()
        );
    }

    #[test]
    fn greedy_policy_is_optimal() {
        let m = repair_model(10.0);
        let vi = relative_value_iteration(&m, 1e-11, 200_000).unwrap();
        let eval = vi.policy.to_randomized(&m).unwrap().evaluate(&m).unwrap();
        assert!((eval.average_cost - vi.average_cost).abs() < 1e-6);
    }

    #[test]
    fn rejects_constrained_models() {
        let mut b = CtmdpBuilder::new(2, 1);
        b.add_action(0, "a", vec![(1, 1.0)], 0.0, vec![0.0])
            .unwrap();
        b.add_action(1, "a", vec![(0, 1.0)], 0.0, vec![0.0])
            .unwrap();
        let m = b.build().unwrap();
        assert!(matches!(
            relative_value_iteration(&m, 1e-9, 1000),
            Err(CtmdpError::InvalidModel(_))
        ));
    }

    #[test]
    fn iteration_budget_is_honored() {
        let m = repair_model(4.0);
        assert!(matches!(
            relative_value_iteration(&m, 1e-300, 3),
            Err(CtmdpError::NoConvergence { iterations: 3, .. })
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{solve_constrained, CtmdpBuilder};
    use proptest::prelude::*;

    /// Random fully-connected unconstrained CTMDPs: every action moves to
    /// every other state with positive rate, so every policy is unichain.
    fn random_model() -> impl Strategy<Value = CtmdpModel> {
        (2usize..=5, 1usize..=3).prop_flat_map(|(n, na)| {
            let n_pairs = n * na;
            (
                proptest::collection::vec(0.05f64..4.0, n_pairs * (n - 1)),
                proptest::collection::vec(0.0f64..5.0, n_pairs),
            )
                .prop_map(move |(rates, costs)| {
                    let mut b = CtmdpBuilder::new(n, 0);
                    let mut r = 0;
                    for s in 0..n {
                        for a in 0..na {
                            let mut transitions = Vec::new();
                            for to in 0..n {
                                if to != s {
                                    transitions.push((to, rates[r]));
                                    r += 1;
                                }
                            }
                            b.add_action(
                                s,
                                format!("a{a}"),
                                transitions,
                                costs[s * na + a],
                                vec![],
                            )
                            .unwrap();
                        }
                    }
                    b.build().unwrap()
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The fundamental cross-check: LP and dynamic programming agree
        /// on the optimal average cost of unconstrained CTMDPs.
        #[test]
        fn lp_equals_value_iteration(m in random_model()) {
            let lp = solve_constrained(&m).unwrap();
            let vi = relative_value_iteration(&m, 1e-10, 500_000).unwrap();
            prop_assert!(
                (lp.average_cost() - vi.average_cost).abs() < 1e-5,
                "lp {} vs vi {}", lp.average_cost(), vi.average_cost
            );
        }

        /// Any deterministic policy evaluates to a cost no better than
        /// the LP optimum (LP is a true lower bound).
        #[test]
        fn lp_lower_bounds_arbitrary_policies(m in random_model(), seed in 0usize..100) {
            let lp = solve_constrained(&m).unwrap();
            let choice: Vec<usize> = (0..m.num_states())
                .map(|s| (s * 7 + seed) % m.num_actions(s))
                .collect();
            let d = DeterministicPolicy::new(&m, choice).unwrap();
            let eval = d.to_randomized(&m).unwrap().evaluate(&m).unwrap();
            prop_assert!(eval.average_cost >= lp.average_cost() - 1e-6);
        }
    }
}
