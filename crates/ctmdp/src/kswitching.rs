//! Detection and summary of the **K-switching** policy structure.
//!
//! Feinberg's structure theorem (reference \[1\] of the paper) says: a
//! constrained average-cost CTMDP with K side constraints admits an
//! optimal *randomized stationary* policy that randomizes in at most K
//! states — and a basic optimal solution of the occupation-measure LP
//! produces exactly such a policy. For the birth–death queue blocks of
//! the buffer-sizing formulation this specializes to a *threshold*
//! ("switching-curve") policy: serve at zero effort below a queue level,
//! full effort above it, and randomize between two adjacent effort levels
//! at the single switching level.
//!
//! The paper's translation step ("translating the state action pair
//! probabilities into buffer space requirements by using the K-switching
//! policy") consumes the summaries produced here.

use crate::{CtmdpModel, CtmdpSolution, RandomizedPolicy};

/// Structural summary of a randomized policy, viewed through the
/// crate convention that actions are ordered by increasing intensity
/// (service effort) within each state.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchingSummary {
    /// Expected action *index* per state: `Σ_a a·φ(a|s)`.
    pub expected_level: Vec<f64>,
    /// States where the policy randomizes over ≥ 2 actions.
    pub randomized_states: Vec<usize>,
    /// `true` when `expected_level` is non-decreasing in the state index
    /// — the threshold/switching-curve shape for birth–death blocks.
    pub is_monotone: bool,
    /// The switching threshold: smallest state whose expected level
    /// exceeds `tol`, or `None` if the policy never acts.
    pub threshold: Option<usize>,
}

/// Probability cutoff below which an action is considered unused.
pub const SUPPORT_TOL: f64 = 1e-9;

/// Summarizes the switching structure of `policy`.
///
/// # Examples
///
/// ```
/// use socbuf_ctmdp::{CtmdpBuilder, solve_constrained};
/// use socbuf_ctmdp::kswitching::summarize;
///
/// # fn main() -> Result<(), socbuf_ctmdp::CtmdpError> {
/// let mut b = CtmdpBuilder::new(2, 1);
/// b.add_action(0, "idle", vec![(1, 1.0)], 0.0, vec![0.0])?;
/// b.add_action(1, "slow", vec![(0, 1.0)], 1.0, vec![0.0])?;
/// b.add_action(1, "fast", vec![(0, 4.0)], 1.0, vec![1.0])?;
/// b.set_constraint_bound(0, 0.1);
/// let sol = solve_constrained(&b.build()?)?;
/// let summary = summarize(sol.policy());
/// assert!(summary.randomized_states.len() <= 1); // K = 1
/// # Ok(())
/// # }
/// ```
pub fn summarize(policy: &RandomizedPolicy) -> SwitchingSummary {
    let n = policy.num_states();
    let mut expected = Vec::with_capacity(n);
    for s in 0..n {
        let mut e = 0.0;
        for a in 0..policy.num_actions(s) {
            e += a as f64 * policy.prob(s, a);
        }
        expected.push(e);
    }
    let randomized_states = policy.randomized_states(SUPPORT_TOL);
    let is_monotone = expected.windows(2).all(|w| w[1] >= w[0] - 1e-9);
    let threshold = expected.iter().position(|&e| e > SUPPORT_TOL);
    SwitchingSummary {
        expected_level: expected,
        randomized_states,
        is_monotone,
        threshold,
    }
}

/// Checks Feinberg's bound: a basic optimal solution of a K-constraint
/// CTMDP randomizes in at most K states. Returns `(randomized, bound)`
/// so callers can assert `randomized ≤ bound`.
pub fn feinberg_bound(model: &CtmdpModel, solution: &CtmdpSolution) -> (usize, usize) {
    let randomized = solution.policy().randomized_states(SUPPORT_TOL).len();
    // Only constraints with finite bounds enter the LP.
    let active = (0..model.num_constraints())
        .filter(|&k| model.constraint_bound(k) < f64::MAX)
        .count();
    (randomized, active)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_constrained, CtmdpBuilder};

    /// A service-rate-controlled M/M/1/K queue: states 0..=4, actions
    /// {idle, serve} with a budget on serving effort. The strictly
    /// increasing holding cost makes serving at higher occupancy strictly
    /// more valuable, so the optimal policy is threshold-type with ≤ 1
    /// randomized state (without a holding cost the objective is
    /// degenerate and non-monotone optima coexist).
    fn queue_model(effort_budget: f64) -> crate::CtmdpModel {
        let k = 4;
        let lambda = 1.0;
        let mu = 2.5;
        let mut b = CtmdpBuilder::new(k + 1, 1);
        for s in 0..=k {
            let mut arrivals = Vec::new();
            if s < k {
                arrivals.push((s + 1, lambda));
            }
            // Holding cost s per unit time, plus the loss rate when full.
            let cost = s as f64 + if s == k { 10.0 * lambda } else { 0.0 };
            // Action 0: idle.
            b.add_action(s, "idle", arrivals.clone(), cost, vec![0.0])
                .unwrap();
            // Action 1: serve at μ (uses one unit of effort).
            let mut trans = arrivals;
            if s > 0 {
                trans.push((s - 1, mu));
            }
            b.add_action(s, "serve", trans, cost, vec![1.0]).unwrap();
        }
        b.set_constraint_bound(0, effort_budget);
        b.build().unwrap()
    }

    #[test]
    fn queue_policy_has_kswitching_structure() {
        let m = queue_model(0.3);
        let sol = solve_constrained(&m).unwrap();
        // Feinberg: at most K = 1 randomized state at a basic optimum.
        let (randomized, bound) = feinberg_bound(&m, &sol);
        assert!(randomized <= bound, "{randomized} > {bound}");
        let summary = summarize(sol.policy());
        // Effort budgets buy service where it matters: never at an empty
        // queue (serving there burns budget without a departure)…
        assert!(summary.expected_level[0] < 1e-9, "{summary:?}");
        // …and the policy does serve somewhere.
        assert!(summary.threshold.is_some(), "{summary:?}");
        // Note: expected effort need NOT be monotone in the queue length
        // under a time-fraction effort budget — effort concentrates where
        // stationary mass lives. `is_monotone` stays a diagnostic only.
    }

    #[test]
    fn tighter_budget_spends_less_effort() {
        let loose = solve_constrained(&queue_model(0.45)).unwrap();
        let tight = solve_constrained(&queue_model(0.15)).unwrap();
        // The effort constraint binds, so realized effort tracks the budget…
        assert!(loose.constraint_values()[0] <= 0.45 + 1e-8);
        assert!(tight.constraint_values()[0] <= 0.15 + 1e-8);
        assert!(tight.constraint_values()[0] <= loose.constraint_values()[0] + 1e-9);
        // …and less service effort cannot make the queue cheaper.
        assert!(tight.average_cost() >= loose.average_cost() - 1e-8);
    }

    #[test]
    fn feinberg_bound_over_random_budgets() {
        for budget in [0.1, 0.2, 0.25, 0.35, 0.5, 0.7] {
            let m = queue_model(budget);
            let sol = solve_constrained(&m).unwrap();
            let (randomized, bound) = feinberg_bound(&m, &sol);
            assert!(
                randomized <= bound,
                "budget {budget}: {randomized} randomized states with K = {bound}"
            );
        }
    }

    #[test]
    fn unconstrained_model_never_randomizes() {
        let mut b = CtmdpBuilder::new(2, 0);
        b.add_action(0, "a", vec![(1, 1.0)], 0.0, vec![]).unwrap();
        b.add_action(0, "b", vec![(1, 2.0)], 0.0, vec![]).unwrap();
        b.add_action(1, "a", vec![(0, 1.0)], 1.0, vec![]).unwrap();
        let m = b.build().unwrap();
        let sol = solve_constrained(&m).unwrap();
        let (randomized, _) = feinberg_bound(&m, &sol);
        assert_eq!(randomized, 0);
    }
}
