//! The occupation-measure LP (Feinberg 2002) for constrained
//! average-cost CTMDPs.

use socbuf_lp::{LpProblem, Relation, Sense, SimplexOptions, VarId};

use crate::{CtmdpError, CtmdpModel, RandomizedPolicy};

/// Solution of a constrained CTMDP: the optimal occupation measure, the
/// extracted randomized stationary policy, achieved cost rates and the
/// constraints' shadow prices.
#[derive(Debug, Clone)]
pub struct CtmdpSolution {
    occupation: Vec<Vec<f64>>,
    policy: RandomizedPolicy,
    average_cost: f64,
    constraint_values: Vec<f64>,
    constraint_duals: Vec<f64>,
    lp_iterations: usize,
}

impl CtmdpSolution {
    /// Optimal long-run average objective cost rate.
    pub fn average_cost(&self) -> f64 {
        self.average_cost
    }

    /// Occupation measure `x(s,a)`: long-run fraction of time spent in
    /// state `s` playing action `a`.
    pub fn occupation(&self) -> &[Vec<f64>] {
        &self.occupation
    }

    /// Marginal time fraction spent in state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn state_occupation(&self, s: usize) -> f64 {
        self.occupation[s].iter().sum()
    }

    /// The optimal randomized stationary policy `φ(a|s) = x(s,a)/x(s)`.
    pub fn policy(&self) -> &RandomizedPolicy {
        &self.policy
    }

    /// Achieved long-run average cost rate of each side constraint.
    pub fn constraint_values(&self) -> &[f64] {
        &self.constraint_values
    }

    /// Shadow price (`∂ optimal cost / ∂ bound`) of each side constraint.
    /// A negative value means relaxing the bound lowers the optimal cost.
    pub fn constraint_duals(&self) -> &[f64] {
        &self.constraint_duals
    }

    /// Simplex pivots spent solving the LP.
    pub fn lp_iterations(&self) -> usize {
        self.lp_iterations
    }
}

/// Solves the constrained CTMDP with default simplex options.
///
/// # Errors
///
/// * [`CtmdpError::Infeasible`] if no stationary policy meets the
///   constraint bounds.
/// * [`CtmdpError::Lp`] for solver-level failures.
///
/// # Examples
///
/// See the [crate-level documentation](crate).
pub fn solve_constrained(model: &CtmdpModel) -> Result<CtmdpSolution, CtmdpError> {
    solve_constrained_with(model, &SimplexOptions::default())
}

/// Solves the constrained CTMDP with explicit simplex options —
/// including the LP engine: `options.engine` picks between the sparse
/// revised simplex (default; the balance matrix is a few entries per
/// column, exactly the shape the revised engine prices in `O(nnz)`) and
/// the dense tableau oracle ([`socbuf_lp::LpEngine::Tableau`]).
///
/// # Errors
///
/// Same as [`solve_constrained`].
pub fn solve_constrained_with(
    model: &CtmdpModel,
    options: &SimplexOptions,
) -> Result<CtmdpSolution, CtmdpError> {
    let n = model.num_states();
    let k = model.num_constraints();

    let mut lp = LpProblem::new(Sense::Minimize);

    // One variable per state–action pair, in the lexicographic order of
    // `CtmdpModel::transition_csr` columns.
    let mut vars: Vec<Vec<VarId>> = Vec::with_capacity(n);
    for s in 0..n {
        let mut row = Vec::with_capacity(model.num_actions(s));
        for a in 0..model.num_actions(s) {
            row.push(lp.add_var(format!("x_{s}_{a}"), model.cost(s, a)));
        }
        vars.push(row);
    }

    // Balance rows: Σ_{s,a} x(s,a) q(j|s,a) = 0 for every state j. The
    // model's sparse balance matrix feeds the solver's CSR constraint
    // path directly — assembly stays O(nnz).
    let balance = model.transition_csr();
    debug_assert_eq!(balance.cols(), lp.num_vars());
    lp.add_constraints_csr(&balance, &vec![Relation::Eq; n], &vec![0.0; n])?;

    // Normalization: total time fraction is 1.
    let all_vars: Vec<(VarId, f64)> = vars.iter().flatten().map(|&v| (v, 1.0)).collect();
    lp.add_constraint(all_vars, Relation::Eq, 1.0)?;

    // Side constraints.
    let mut constraint_rows = Vec::with_capacity(k);
    for c in 0..k {
        let bound = model.constraint_bound(c);
        if bound >= f64::MAX {
            constraint_rows.push(None);
            continue;
        }
        let mut terms = Vec::new();
        for s in 0..n {
            for a in 0..model.num_actions(s) {
                let cc = model.constraint_cost(s, a, c);
                if cc != 0.0 {
                    terms.push((vars[s][a], cc));
                }
            }
        }
        let row = lp.add_constraint(terms, Relation::Le, bound)?;
        constraint_rows.push(Some(row));
    }

    let sol = lp.solve_with(options)?;

    // Extract occupation measure and policy.
    let mut occupation: Vec<Vec<f64>> = Vec::with_capacity(n);
    for s in 0..n {
        occupation.push(vars[s].iter().map(|&v| sol.value(v).max(0.0)).collect());
    }
    let policy = extract_policy(model, &occupation)?;

    let mut constraint_values = vec![0.0; k];
    for (c, cv) in constraint_values.iter_mut().enumerate() {
        for s in 0..n {
            for a in 0..model.num_actions(s) {
                *cv += occupation[s][a] * model.constraint_cost(s, a, c);
            }
        }
    }
    let constraint_duals = constraint_rows
        .iter()
        .map(|r| r.map_or(0.0, |row| sol.dual(row)))
        .collect();

    Ok(CtmdpSolution {
        occupation,
        policy,
        average_cost: sol.objective(),
        constraint_values,
        constraint_duals,
        lp_iterations: sol.iterations(),
    })
}

/// Normalizes an occupation measure into a randomized stationary policy.
/// States with (numerically) zero occupation are transient under the
/// optimal policy; they receive the *last* action of their action set —
/// by the crate's ordering convention the most "intense" one, which in
/// queue-control blocks means full service effort (the conservative
/// choice for states only reached on excursions).
fn extract_policy(
    model: &CtmdpModel,
    occupation: &[Vec<f64>],
) -> Result<RandomizedPolicy, CtmdpError> {
    const ZERO_STATE: f64 = 1e-12;
    let mut probs = Vec::with_capacity(occupation.len());
    for (s, xs) in occupation.iter().enumerate() {
        let total: f64 = xs.iter().sum();
        let mut row = vec![0.0; model.num_actions(s)];
        if total > ZERO_STATE {
            for (a, &x) in xs.iter().enumerate() {
                row[a] = (x / total).max(0.0);
            }
            // Clean tiny numerical dust and renormalize exactly.
            let sum: f64 = row.iter().sum();
            for p in row.iter_mut() {
                *p /= sum;
            }
        } else {
            let last = row.len() - 1;
            row[last] = 1.0;
        }
        probs.push(row);
    }
    RandomizedPolicy::new(model, probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmdpBuilder;

    /// Unconstrained 2-state repair problem: state 1 costs 1/time; fast
    /// repair is free here, so the optimum always repairs fast.
    #[test]
    fn unconstrained_picks_best_action() {
        let mut b = CtmdpBuilder::new(2, 0);
        b.add_action(0, "wait", vec![(1, 1.0)], 0.0, vec![])
            .unwrap();
        b.add_action(1, "slow", vec![(0, 1.0)], 1.0, vec![])
            .unwrap();
        b.add_action(1, "fast", vec![(0, 4.0)], 1.0, vec![])
            .unwrap();
        let m = b.build().unwrap();
        let sol = solve_constrained(&m).unwrap();
        // With fast repair: π(1) = 1/(1+4)·... chain 0→1 rate 1, 1→0 rate 4:
        // π = (4/5, 1/5); cost = 0.2.
        assert!((sol.average_cost() - 0.2).abs() < 1e-8);
        assert!(sol.policy().prob(1, 1) > 0.999);
    }

    /// The constrained variant: fast repair limited to 10% of time.
    #[test]
    fn constraint_binds_and_duals_are_negative() {
        let mut b = CtmdpBuilder::new(2, 1);
        b.add_action(0, "wait", vec![(1, 1.0)], 0.0, vec![0.0])
            .unwrap();
        b.add_action(1, "slow", vec![(0, 1.0)], 1.0, vec![0.0])
            .unwrap();
        b.add_action(1, "fast", vec![(0, 4.0)], 1.0, vec![1.0])
            .unwrap();
        b.set_constraint_bound(0, 0.10);
        let m = b.build().unwrap();
        let sol = solve_constrained(&m).unwrap();
        // Must be between all-slow (cost 0.5) and all-fast (cost 0.2).
        assert!(sol.average_cost() > 0.2);
        assert!(sol.average_cost() < 0.5);
        // The constraint binds.
        assert!((sol.constraint_values()[0] - 0.10).abs() < 1e-8);
        // Relaxing the bound reduces cost → negative shadow price.
        assert!(sol.constraint_duals()[0] < -1e-9);
        // Exactly one randomized state (K = 1 constraint).
        assert_eq!(sol.policy().randomized_states(1e-9).len(), 1);
    }

    #[test]
    fn occupation_is_probability_measure() {
        let mut b = CtmdpBuilder::new(3, 0);
        b.add_action(0, "a", vec![(1, 2.0)], 1.0, vec![]).unwrap();
        b.add_action(1, "a", vec![(2, 1.0), (0, 1.0)], 2.0, vec![])
            .unwrap();
        b.add_action(2, "a", vec![(0, 3.0)], 0.5, vec![]).unwrap();
        let m = b.build().unwrap();
        let sol = solve_constrained(&m).unwrap();
        let total: f64 = sol.occupation().iter().flatten().sum();
        assert!((total - 1.0).abs() < 1e-8);
        for s in 0..3 {
            assert!(sol.state_occupation(s) > 0.0);
        }
    }

    #[test]
    fn lp_solution_matches_policy_evaluation() {
        let mut b = CtmdpBuilder::new(2, 1);
        b.add_action(0, "wait", vec![(1, 2.0)], 0.0, vec![0.0])
            .unwrap();
        b.add_action(1, "slow", vec![(0, 1.0)], 1.0, vec![0.0])
            .unwrap();
        b.add_action(1, "fast", vec![(0, 6.0)], 1.0, vec![1.0])
            .unwrap();
        b.set_constraint_bound(0, 0.15);
        let m = b.build().unwrap();
        let sol = solve_constrained(&m).unwrap();
        let eval = sol.policy().evaluate(&m).unwrap();
        assert!(
            (eval.average_cost - sol.average_cost()).abs() < 1e-6,
            "{} vs {}",
            eval.average_cost,
            sol.average_cost()
        );
        assert!((eval.constraint_values[0] - sol.constraint_values()[0]).abs() < 1e-6);
    }

    /// The engine selector threads through to the LP layer: both
    /// engines must agree on the optimal average cost and the binding
    /// constraint value of the same constrained CTMDP.
    #[test]
    fn engine_selector_reaches_the_lp() {
        let mut b = CtmdpBuilder::new(2, 1);
        b.add_action(0, "wait", vec![(1, 1.0)], 0.0, vec![0.0])
            .unwrap();
        b.add_action(1, "slow", vec![(0, 1.0)], 1.0, vec![0.0])
            .unwrap();
        b.add_action(1, "fast", vec![(0, 4.0)], 1.0, vec![1.0])
            .unwrap();
        b.set_constraint_bound(0, 0.10);
        let m = b.build().unwrap();
        let base = SimplexOptions::default();
        let revised =
            solve_constrained_with(&m, &base.with_engine(socbuf_lp::LpEngine::Revised)).unwrap();
        let tableau =
            solve_constrained_with(&m, &base.with_engine(socbuf_lp::LpEngine::Tableau)).unwrap();
        assert!((revised.average_cost() - tableau.average_cost()).abs() < 1e-9);
        assert!((revised.constraint_values()[0] - tableau.constraint_values()[0]).abs() < 1e-9);
    }

    #[test]
    fn infeasible_constraint_detected() {
        let mut b = CtmdpBuilder::new(2, 1);
        // Both states always accrue constraint cost 1 → average is 1,
        // bound of 0.5 is unreachable.
        b.add_action(0, "a", vec![(1, 1.0)], 0.0, vec![1.0])
            .unwrap();
        b.add_action(1, "a", vec![(0, 1.0)], 0.0, vec![1.0])
            .unwrap();
        b.set_constraint_bound(0, 0.5);
        let m = b.build().unwrap();
        assert!(matches!(solve_constrained(&m), Err(CtmdpError::Infeasible)));
    }

    #[test]
    fn loose_bounds_are_skipped() {
        let mut b = CtmdpBuilder::new(2, 2);
        b.add_action(0, "a", vec![(1, 1.0)], 0.0, vec![1.0, 0.0])
            .unwrap();
        b.add_action(1, "a", vec![(0, 1.0)], 1.0, vec![0.0, 1.0])
            .unwrap();
        // Neither bound set → both default to f64::MAX → unconstrained.
        let m = b.build().unwrap();
        let sol = solve_constrained(&m).unwrap();
        assert_eq!(sol.constraint_duals(), &[0.0, 0.0]);
        assert!((sol.average_cost() - 0.5).abs() < 1e-8);
    }
}
