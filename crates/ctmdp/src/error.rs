use std::error::Error;
use std::fmt;

use socbuf_lp::LpError;
use socbuf_markov::MarkovError;

/// Errors produced while building or solving a CTMDP.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CtmdpError {
    /// The model description is malformed (bad state index, negative
    /// rate, missing action set, wrong constraint-cost arity, …).
    InvalidModel(String),
    /// The constraint set admits no stationary policy.
    Infeasible,
    /// The occupation-measure LP failed for a solver-level reason.
    Lp(LpError),
    /// Chain-level analysis of an induced policy failed.
    Markov(MarkovError),
    /// Value iteration did not converge within its iteration budget.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final span of the value-difference vector.
        span: f64,
    },
}

impl fmt::Display for CtmdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmdpError::InvalidModel(msg) => write!(f, "invalid ctmdp model: {msg}"),
            CtmdpError::Infeasible => {
                write!(f, "no stationary policy satisfies the constraints")
            }
            CtmdpError::Lp(e) => write!(f, "occupation-measure lp failed: {e}"),
            CtmdpError::Markov(e) => write!(f, "markov analysis failed: {e}"),
            CtmdpError::NoConvergence { iterations, span } => write!(
                f,
                "value iteration did not converge after {iterations} iterations (span {span:.3e})"
            ),
        }
    }
}

impl Error for CtmdpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CtmdpError::Lp(e) => Some(e),
            CtmdpError::Markov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for CtmdpError {
    fn from(e: LpError) -> Self {
        match e {
            LpError::Infeasible { .. } => CtmdpError::Infeasible,
            other => CtmdpError::Lp(other),
        }
    }
}

impl From<MarkovError> for CtmdpError {
    fn from(e: MarkovError) -> Self {
        CtmdpError::Markov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infeasible_lp_maps_to_infeasible() {
        let e: CtmdpError = LpError::Infeasible { residual: 0.1 }.into();
        assert_eq!(e, CtmdpError::Infeasible);
        let e: CtmdpError = LpError::EmptyProblem.into();
        assert!(matches!(e, CtmdpError::Lp(_)));
    }

    #[test]
    fn display_nonempty() {
        for e in [
            CtmdpError::InvalidModel("x".into()),
            CtmdpError::Infeasible,
            CtmdpError::NoConvergence {
                iterations: 5,
                span: 0.1,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
