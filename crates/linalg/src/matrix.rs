use std::fmt;
use std::ops::{Index, IndexMut};

use crate::LinalgError;

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse container shared by the simplex tableau, the
/// Markov generator matrices and the CTMDP occupation-measure LP builder.
/// It deliberately stays small: construction, element access, a few BLAS-1/2
/// style products, and shape queries. Factorizations live in [`crate::Lu`].
///
/// # Examples
///
/// ```
/// use socbuf_linalg::Matrix;
///
/// let i = Matrix::identity(3);
/// let v = i.matvec(&[1.0, 2.0, 3.0]).unwrap();
/// assert_eq!(v, vec![1.0, 2.0, 3.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Matrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if `rows` is empty or the first row
    /// has zero length, and [`LinalgError::RaggedRows`] if the rows have
    /// differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::RaggedRows {
                    first: cols,
                    row: i,
                    len: r.len(),
                });
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (rows, cols),
                found: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a freshly allocated vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[r] = acc;
        }
        Ok(y)
    }

    /// Vector–matrix product `xᵀ A` (useful for dual computations).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.rows()`.
    pub fn vecmat(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.rows, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.cols];
        for r in 0..self.rows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            for (c, yc) in y.iter_mut().enumerate() {
                *yc += xr * self[(r, c)];
            }
        }
        Ok(y)
    }

    /// Matrix–matrix product `A B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, self.cols),
                found: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Maximum absolute entry (the max norm).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns the underlying row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(12) {
                write!(f, "{:>10.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(12) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 12 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert!(i.is_square());
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_ragged_and_empty() {
        assert_eq!(Matrix::from_rows(&[]), Err(LinalgError::Empty));
        let r0: &[f64] = &[1.0, 2.0];
        let r1: &[f64] = &[3.0];
        let err = Matrix::from_rows(&[r0, r1]).unwrap_err();
        assert!(matches!(err, LinalgError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn matvec_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let y = a.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn vecmat_is_transpose_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[3.0, 4.0, -1.0]]).unwrap();
        let x = [2.0, -1.0];
        let via_vecmat = a.vecmat(&x).unwrap();
        let via_transpose = a.transpose().matvec(&x).unwrap();
        assert_eq!(via_vecmat, via_transpose);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, -4.0]]).unwrap();
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!(a.is_finite());
        let mut b = a.clone();
        b[(0, 0)] = f64::NAN;
        assert!(!b.is_finite());
    }

    #[test]
    fn row_and_col_access() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn debug_output_nonempty() {
        let a = Matrix::identity(2);
        let s = format!("{a:?}");
        assert!(s.contains("Matrix 2x2"));
    }
}
