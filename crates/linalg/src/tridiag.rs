use crate::{Csr, LinalgError};

/// A tridiagonal linear system solved by the Thomas algorithm.
///
/// Every single-queue block of the buffer-sizing formulation is a
/// birth–death chain, whose generator (and its transpose) is tridiagonal;
/// stationary solves on those chains reduce to one `O(n)` sweep instead
/// of an `O(n³)` dense LU factorization. `Tridiag` stores the three
/// diagonals explicitly:
///
/// * `sub[i]` — entry `(i + 1, i)` (below the diagonal),
/// * `diag[i]` — entry `(i, i)`,
/// * `sup[i]` — entry `(i, i + 1)` (above the diagonal).
///
/// # Examples
///
/// ```
/// use socbuf_linalg::Tridiag;
///
/// # fn main() -> Result<(), socbuf_linalg::LinalgError> {
/// // [ 2 1 0 ]        x = (1, 1, 1)
/// // [ 1 3 1 ]  =>  b = (3, 5, 4)
/// // [ 0 1 3 ]
/// let t = Tridiag::new(vec![1.0, 1.0], vec![2.0, 3.0, 3.0], vec![1.0, 1.0])?;
/// let x = t.solve(&[3.0, 5.0, 4.0])?;
/// for xi in x {
///     assert!((xi - 1.0).abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tridiag {
    sub: Vec<f64>,
    diag: Vec<f64>,
    sup: Vec<f64>,
}

/// Pivots smaller than this (relative to the row scale) are treated as
/// zero: the sweep reports the matrix singular rather than dividing by
/// numerical dust.
const PIVOT_TOL: f64 = 1e-13;

impl Tridiag {
    /// Builds a system from its three diagonals. For an `n × n` matrix,
    /// `diag` has `n` entries and `sub` / `sup` have `n − 1` each.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] if `diag` is empty.
    /// * [`LinalgError::DimensionMismatch`] if the off-diagonal lengths
    ///   are not `diag.len() − 1`.
    pub fn new(sub: Vec<f64>, diag: Vec<f64>, sup: Vec<f64>) -> Result<Self, LinalgError> {
        if diag.is_empty() {
            return Err(LinalgError::Empty);
        }
        let n = diag.len();
        if sub.len() != n - 1 || sup.len() != n - 1 {
            return Err(LinalgError::DimensionMismatch {
                expected: (n - 1, n - 1),
                found: (sub.len(), sup.len()),
            });
        }
        Ok(Tridiag { sub, diag, sup })
    }

    /// Extracts the three diagonals of a CSR matrix, or `None` if the
    /// matrix is not square-tridiagonal.
    pub fn from_csr(a: &Csr) -> Option<Self> {
        if !a.is_tridiagonal() || a.rows() == 0 {
            return None;
        }
        let n = a.rows();
        let mut sub = vec![0.0; n - 1];
        let mut diag = vec![0.0; n];
        let mut sup = vec![0.0; n - 1];
        for r in 0..n {
            for (c, v) in a.iter_row(r) {
                if c == r {
                    diag[r] = v;
                } else if c + 1 == r {
                    sub[c] = v;
                } else {
                    sup[r] = v;
                }
            }
        }
        Some(Tridiag { sub, diag, sup })
    }

    /// Dimension of the system.
    pub fn n(&self) -> usize {
        self.diag.len()
    }

    /// Matrix–vector product `A x` in `O(n)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.n()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.n();
        if x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = self.diag[i] * x[i];
            if i > 0 {
                acc += self.sub[i - 1] * x[i - 1];
            }
            if i + 1 < n {
                acc += self.sup[i] * x[i + 1];
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// Solves `A x = b` with the Thomas algorithm (Gaussian elimination
    /// without pivoting, `O(n)` time and memory).
    ///
    /// The sweep is numerically safe for the diagonally dominant and the
    /// generator-shaped systems this workspace produces; a vanishing
    /// pivot is reported as [`LinalgError::Singular`] so callers can fall
    /// back to the pivoted dense path.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `b.len() != self.n()`.
    /// * [`LinalgError::Singular`] on a vanishing pivot.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.n();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                found: (b.len(), 1),
            });
        }
        // Forward sweep on copies of the superdiagonal and rhs.
        let mut c = vec![0.0; n];
        let mut d = vec![0.0; n];
        let scale0 = 1.0 + self.diag[0].abs() + self.sup.first().map_or(0.0, |v| v.abs());
        if self.diag[0].abs() < PIVOT_TOL * scale0 {
            return Err(LinalgError::Singular { pivot: 0 });
        }
        c[0] = self.sup.first().map_or(0.0, |v| v / self.diag[0]);
        d[0] = b[0] / self.diag[0];
        for i in 1..n {
            let denom = self.diag[i] - self.sub[i - 1] * c[i - 1];
            let scale = 1.0 + self.diag[i].abs() + self.sub[i - 1].abs();
            if denom.abs() < PIVOT_TOL * scale {
                return Err(LinalgError::Singular { pivot: i });
            }
            if i + 1 < n {
                c[i] = self.sup[i] / denom;
            }
            d[i] = (b[i] - self.sub[i - 1] * d[i - 1]) / denom;
        }
        // Back substitution, reusing `d` as the solution vector.
        for i in (0..n - 1).rev() {
            d[i] -= c[i] * d[i + 1];
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{max_abs_diff, Lu, Matrix};

    fn dense_of(t: &Tridiag) -> Matrix {
        let n = t.n();
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = t.diag[i];
            if i + 1 < n {
                m[(i, i + 1)] = t.sup[i];
                m[(i + 1, i)] = t.sub[i];
            }
        }
        m
    }

    #[test]
    fn shape_validation() {
        assert!(Tridiag::new(vec![], vec![], vec![]).is_err());
        assert!(Tridiag::new(vec![1.0], vec![1.0], vec![]).is_err());
        assert!(Tridiag::new(vec![], vec![1.0], vec![]).is_ok());
    }

    #[test]
    fn one_by_one_system() {
        let t = Tridiag::new(vec![], vec![4.0], vec![]).unwrap();
        assert_eq!(t.solve(&[8.0]).unwrap(), vec![2.0]);
        assert_eq!(t.matvec(&[3.0]).unwrap(), vec![12.0]);
    }

    #[test]
    fn solve_matches_dense_lu() {
        let t = Tridiag::new(
            vec![1.0, -0.5, 2.0],
            vec![4.0, 5.0, 6.0, 4.5],
            vec![-1.0, 1.5, 0.25],
        )
        .unwrap();
        let b = [1.0, -2.0, 3.0, 0.5];
        let x = t.solve(&b).unwrap();
        let dense = Lu::factor(&dense_of(&t)).unwrap().solve(&b).unwrap();
        assert!(max_abs_diff(&x, &dense) < 1e-12, "{x:?} vs {dense:?}");
        // Residual check.
        let r = t.matvec(&x).unwrap();
        assert!(max_abs_diff(&r, &b) < 1e-12);
    }

    #[test]
    fn detects_singular() {
        // Row 1 becomes exactly zero after elimination.
        let t = Tridiag::new(vec![1.0], vec![1.0, 1.0], vec![1.0]).unwrap();
        assert!(matches!(
            t.solve(&[1.0, 1.0]),
            Err(LinalgError::Singular { pivot: 1 })
        ));
        let t = Tridiag::new(vec![1.0], vec![0.0, 1.0], vec![1.0]).unwrap();
        assert!(matches!(
            t.solve(&[1.0, 1.0]),
            Err(LinalgError::Singular { pivot: 0 })
        ));
    }

    #[test]
    fn rejects_bad_rhs_length() {
        let t = Tridiag::new(vec![1.0], vec![2.0, 2.0], vec![1.0]).unwrap();
        assert!(t.solve(&[1.0]).is_err());
        assert!(t.matvec(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn from_csr_roundtrip() {
        let a = Csr::from_triplets(
            3,
            3,
            &[
                (0, 0, -2.0),
                (0, 1, 2.0),
                (1, 0, 1.0),
                (1, 1, -3.0),
                (1, 2, 2.0),
                (2, 1, 1.0),
                (2, 2, -1.0),
            ],
        )
        .unwrap();
        let t = Tridiag::from_csr(&a).unwrap();
        assert_eq!(t.n(), 3);
        assert_eq!(Csr::from_dense(&dense_of(&t)), a);
        let not_tri = Csr::from_triplets(3, 3, &[(0, 2, 1.0)]).unwrap();
        assert!(Tridiag::from_csr(&not_tri).is_none());
        assert!(Tridiag::from_csr(&Csr::zeros(0, 0)).is_none());
    }

    #[test]
    fn matvec_matches_dense() {
        let t = Tridiag::new(vec![0.5, -1.0], vec![2.0, 3.0, 1.0], vec![1.0, 0.25]).unwrap();
        let x = [1.0, -1.0, 2.0];
        let via_dense = dense_of(&t).matvec(&x).unwrap();
        assert_eq!(t.matvec(&x).unwrap(), via_dense);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{max_abs_diff, Lu};
    use proptest::prelude::*;

    /// Diagonally dominant tridiagonal systems of dimension 1..=40 with a
    /// known solution.
    fn dd_tridiag() -> impl Strategy<Value = (Tridiag, Vec<f64>)> {
        (1usize..=40).prop_flat_map(|n| {
            (
                proptest::collection::vec(-1.0f64..1.0, n.saturating_sub(1)),
                proptest::collection::vec(-1.0f64..1.0, n.saturating_sub(1)),
                proptest::collection::vec(-5.0f64..5.0, n),
            )
                .prop_map(move |(sub, sup, x)| {
                    let mut diag = vec![0.0; n];
                    for i in 0..n {
                        let mut off = 0.0;
                        if i > 0 {
                            off += sub[i - 1].abs();
                        }
                        if i + 1 < n {
                            off += sup[i].abs();
                        }
                        diag[i] = off + 1.0;
                    }
                    (Tridiag::new(sub, diag, sup).unwrap(), x)
                })
        })
    }

    proptest! {
        #[test]
        fn thomas_recovers_solution((t, x_true) in dd_tridiag()) {
            let b = t.matvec(&x_true).unwrap();
            let x = t.solve(&b).unwrap();
            prop_assert!(max_abs_diff(&x, &x_true) < 1e-9);
        }

        #[test]
        fn thomas_matches_dense_lu((t, x_true) in dd_tridiag()) {
            let b = t.matvec(&x_true).unwrap();
            let x = t.solve(&b).unwrap();
            let n = t.n();
            let mut dense = crate::Matrix::zeros(n, n);
            // Rebuild densely from matvec columns (n small).
            for j in 0..n {
                let mut e = vec![0.0; n];
                e[j] = 1.0;
                let col = t.matvec(&e).unwrap();
                for i in 0..n {
                    dense[(i, j)] = col[i];
                }
            }
            let via_lu = Lu::factor(&dense).unwrap().solve(&b).unwrap();
            prop_assert!(max_abs_diff(&x, &via_lu) < 1e-9);
        }
    }
}
