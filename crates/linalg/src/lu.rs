use crate::{LinalgError, Matrix};

/// LU factorization with partial pivoting: `P A = L U`.
///
/// The factorization is computed once and can then be reused to solve
/// against many right-hand sides, compute the determinant, or build the
/// inverse. Stationary-distribution solves in `socbuf-markov` and the
/// basis solves used to verify simplex output both go through this type.
///
/// # Examples
///
/// ```
/// use socbuf_linalg::{Matrix, Lu};
///
/// # fn main() -> Result<(), socbuf_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implicit) and U (upper).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, `+1.0` or `-1.0` (for determinants).
    sign: f64,
}

/// Pivots smaller than this (in absolute value) are treated as zero,
/// i.e. the matrix is declared singular.
const PIVOT_TOL: f64 = 1e-12;

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is rectangular.
    /// * [`LinalgError::Empty`] if `a` has zero dimension.
    /// * [`LinalgError::Singular`] if a pivot column has no usable pivot.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivoting: pick the largest |entry| in column k at or
            // below the diagonal.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < PIVOT_TOL {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(p, c)];
                    lu[(p, c)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor == 0.0 {
                    continue;
                }
                for c in (k + 1)..n {
                    let ukc = lu[(k, c)];
                    lu[(i, c)] -= factor * ukc;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                found: (b.len(), 1),
            });
        }
        // Apply permutation: y = P b.
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            let mut acc = x[i];
            for k in 0..i {
                acc -= self.lu[(i, k)] * x[k];
            }
            x[i] = acc;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for k in (i + 1)..n {
                acc -= self.lu[(i, k)] * x[k];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `Aᵀ x = b` (used for dual/left-eigenvector computations).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve_transpose(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                found: (b.len(), 1),
            });
        }
        // Aᵀ = Uᵀ Lᵀ P, so solve Uᵀ z = b, then Lᵀ w = z, then x = Pᵀ w.
        let mut z = b.to_vec();
        for i in 0..n {
            let mut acc = z[i];
            for k in 0..i {
                acc -= self.lu[(k, i)] * z[k];
            }
            z[i] = acc / self.lu[(i, i)];
        }
        for i in (0..n).rev() {
            let mut acc = z[i];
            for k in (i + 1)..n {
                acc -= self.lu[(k, i)] * z[k];
            }
            z[i] = acc;
        }
        let mut x = vec![0.0; n];
        for (pos, &orig) in self.perm.iter().enumerate() {
            x[orig] = z[pos];
        }
        Ok(x)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Computes the inverse matrix column by column.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (which cannot occur for a successfully
    /// factored matrix, but the signature stays honest).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e)?;
            for r in 0..n {
                inv[(r, c)] = col[r];
            }
            e[c] = 0.0;
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_abs_diff;

    fn solve_roundtrip(a: &Matrix, x_true: &[f64]) {
        let b = a.matvec(x_true).unwrap();
        let lu = Lu::factor(a).unwrap();
        let x = lu.solve(&b).unwrap();
        assert!(
            max_abs_diff(&x, x_true) < 1e-9,
            "solve mismatch: {x:?} vs {x_true:?}"
        );
    }

    #[test]
    fn solves_small_systems() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        solve_roundtrip(&a, &[0.8, 1.4]);

        let a =
            Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]).unwrap();
        solve_roundtrip(&a, &[1.0, -1.0, 2.0]);
    }

    #[test]
    fn requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_rectangular_and_empty() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::NotSquare { .. })));
        let a = Matrix::zeros(0, 0);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Empty)));
    }

    #[test]
    fn determinant_of_known_matrices() {
        let i = Matrix::identity(4);
        assert!((Lu::factor(&i).unwrap().det() - 1.0).abs() < 1e-12);

        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!((Lu::factor(&a).unwrap().det() - (-2.0)).abs() < 1e-12);

        // Permutation matrix: det = -1.
        let p = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((Lu::factor(&p).unwrap().det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a =
            Matrix::from_rows(&[&[3.0, 0.5, -1.0], &[0.5, 2.0, 0.0], &[-1.0, 0.0, 4.0]]).unwrap();
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let i = Matrix::identity(3);
        for r in 0..3 {
            assert!(max_abs_diff(prod.row(r), i.row(r)) < 1e-9);
        }
    }

    #[test]
    fn solve_transpose_matches_explicit_transpose() {
        let a =
            Matrix::from_rows(&[&[2.0, -1.0, 0.5], &[1.0, 3.0, -2.0], &[0.0, 1.0, 1.5]]).unwrap();
        let b = [1.0, -2.0, 0.5];
        let lu = Lu::factor(&a).unwrap();
        let x1 = lu.solve_transpose(&b).unwrap();
        let at = a.transpose();
        let x2 = Lu::factor(&at).unwrap().solve(&b).unwrap();
        assert!(max_abs_diff(&x1, &x2) < 1e-9);
    }

    #[test]
    fn solve_rejects_bad_rhs_length() {
        let a = Matrix::identity(2);
        let lu = Lu::factor(&a).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
        assert!(lu.solve_transpose(&[1.0, 2.0, 3.0]).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::max_abs_diff;
    use proptest::prelude::*;

    /// Generates a random diagonally dominant matrix (guaranteed
    /// non-singular) of dimension 1..=8 together with a solution vector.
    fn dd_system() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
        (1usize..=8).prop_flat_map(|n| {
            (
                proptest::collection::vec(-1.0f64..1.0, n * n),
                proptest::collection::vec(-10.0f64..10.0, n),
            )
                .prop_map(move |(entries, x)| {
                    let mut a = Matrix::from_vec(n, n, entries).unwrap();
                    for i in 0..n {
                        let off: f64 = (0..n).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
                        a[(i, i)] = off + 1.0;
                    }
                    (a, x)
                })
        })
    }

    proptest! {
        #[test]
        fn lu_solve_recovers_solution((a, x_true) in dd_system()) {
            let b = a.matvec(&x_true).unwrap();
            let lu = Lu::factor(&a).unwrap();
            let x = lu.solve(&b).unwrap();
            prop_assert!(max_abs_diff(&x, &x_true) < 1e-6);
        }

        #[test]
        fn lu_residual_is_small((a, x_true) in dd_system()) {
            let b = a.matvec(&x_true).unwrap();
            let lu = Lu::factor(&a).unwrap();
            let x = lu.solve(&b).unwrap();
            let r = a.matvec(&x).unwrap();
            prop_assert!(max_abs_diff(&r, &b) < 1e-7);
        }

        #[test]
        fn det_of_product_sign_sane((a, _x) in dd_system()) {
            // Diagonally dominant with positive diagonal => det > 0 is NOT
            // guaranteed in general, but det must be nonzero and finite.
            let d = Lu::factor(&a).unwrap().det();
            prop_assert!(d.is_finite());
            prop_assert!(d.abs() > 0.0);
        }

        #[test]
        fn transpose_solve_consistent((a, x_true) in dd_system()) {
            let bt = a.vecmat(&x_true).unwrap(); // x^T A = b^T  <=>  A^T x = b
            let lu = Lu::factor(&a).unwrap();
            let x = lu.solve_transpose(&bt).unwrap();
            prop_assert!(max_abs_diff(&x, &x_true) < 1e-6);
        }
    }
}
