//! BLAS-1 style helpers over `&[f64]` slices.
//!
//! These free functions avoid pulling a full vector type into the public
//! API: plain slices interoperate with every other crate in the workspace.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean (L2) norm.
pub fn two_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Sum of absolute values (L1 norm).
pub fn one_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Maximum absolute value (L∞ norm). Returns `0.0` for an empty slice.
pub fn inf_norm(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Largest absolute componentwise difference between two slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn norms_agree_on_simple_vectors() {
        let x = [3.0, -4.0];
        assert!((two_norm(&x) - 5.0).abs() < 1e-12);
        assert_eq!(one_norm(&x), 7.0);
        assert_eq!(inf_norm(&x), 4.0);
        assert_eq!(inf_norm(&[]), 0.0);
    }

    #[test]
    fn max_abs_diff_basic() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 0.0]), 2.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }
}
