use std::error::Error;
use std::fmt;

/// Errors produced by dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes. Carries `(expected, found)`
    /// rendered as `rows x cols` strings for diagnostics.
    DimensionMismatch {
        /// Shape the operation required.
        expected: (usize, usize),
        /// Shape that was actually supplied.
        found: (usize, usize),
    },
    /// The matrix is singular (or numerically so) and cannot be factored
    /// or solved against.
    Singular {
        /// Pivot column at which factorization broke down.
        pivot: usize,
    },
    /// A routine that requires a square matrix received a rectangular one.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// An empty (zero-dimensional) matrix was supplied where a non-empty
    /// one is required.
    Empty,
    /// Rows of a `from_rows` constructor had differing lengths.
    RaggedRows {
        /// Length of the first row.
        first: usize,
        /// Index of the first row whose length differs.
        row: usize,
        /// That row's length.
        len: usize,
    },
    /// A sparse index `(row, col)` fell outside the matrix shape.
    IndexOutOfRange {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// Number of rows of the matrix being built or accessed.
        rows: usize,
        /// Number of columns of the matrix being built or accessed.
        cols: usize,
    },
    /// A sparse row's column indices were not strictly increasing.
    UnsortedColumns {
        /// Row in which the violation occurred.
        row: usize,
        /// The column index that was out of order or duplicated.
        col: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, found } => write!(
                f,
                "dimension mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::Empty => write!(f, "matrix must be non-empty"),
            LinalgError::RaggedRows { first, row, len } => write!(
                f,
                "ragged rows: row 0 has length {first} but row {row} has length {len}"
            ),
            LinalgError::IndexOutOfRange {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "sparse index ({row}, {col}) out of range for a {rows}x{cols} matrix"
            ),
            LinalgError::UnsortedColumns { row, col } => write!(
                f,
                "sparse row {row}: column {col} is out of order or duplicated \
                 (columns must be strictly increasing)"
            ),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LinalgError::Singular { pivot: 3 };
        assert_eq!(e.to_string(), "matrix is singular at pivot column 3");
        let e = LinalgError::DimensionMismatch {
            expected: (2, 3),
            found: (3, 2),
        };
        assert!(e.to_string().contains("2x3"));
        assert!(e.to_string().contains("3x2"));
        let e = LinalgError::NotSquare { rows: 4, cols: 5 };
        assert!(e.to_string().contains("4x5"));
        let e = LinalgError::Empty;
        assert!(!e.to_string().is_empty());
        let e = LinalgError::RaggedRows {
            first: 2,
            row: 1,
            len: 3,
        };
        assert!(e.to_string().contains("row 1"));
        let e = LinalgError::IndexOutOfRange {
            row: 7,
            col: 9,
            rows: 4,
            cols: 5,
        };
        assert!(e.to_string().contains("(7, 9)"));
        assert!(e.to_string().contains("4x5"));
        let e = LinalgError::UnsortedColumns { row: 3, col: 2 };
        assert!(e.to_string().contains("row 3"));
        assert!(e.to_string().contains("column 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
