//! Geometric-mean matrix equilibration and a cheap conditioning probe.
//!
//! Badly-scaled problem data — entries spanning many orders of magnitude
//! because the user states rates in arbitrary units — is the classic
//! source of simplex numerics trouble: pivot thresholds, feasibility
//! tolerances and redundancy verdicts are all absolute, so a row whose
//! coefficients sit at `1e-3` is policed a million times more tightly
//! than one at `1e3`. Production LP codes (Curtis–Reid in the open-source
//! solvers this workspace's PAPERS.md surveys) cut the condition number
//! *at the source* by scaling rows and columns before the solve rather
//! than chasing the spread with tolerance knobs. This module supplies the
//! two kernels that layer needs:
//!
//! * [`geometric_mean_scaling`] — iterative row/column equilibration
//!   driving every row's and column's geometric-mean magnitude toward 1,
//!   with the final factors **rounded to powers of two** so applying and
//!   inverting them is exact in binary floating point (the scaled
//!   problem is *exactly* equivalent to the original; only the solve
//!   numerics change),
//! * [`value_spread`] / [`scaled_value_spread`] — an `O(nnz)`
//!   conditioning estimate (the ratio of the largest to the smallest
//!   nonzero magnitude) used both to decide whether scaling is worth
//!   applying and to report the measured improvement.

use crate::Csr;

/// Row and column scale factors produced by [`geometric_mean_scaling`].
/// Every factor is a positive power of two, so `factor * x` and
/// `x / factor` are exact (no rounding) for any finite `x` in range.
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibration {
    /// Per-row multiplier `r_i` (length = matrix rows).
    pub row: Vec<f64>,
    /// Per-column multiplier `c_j` (length = matrix cols).
    pub col: Vec<f64>,
}

/// Ratio of the largest to the smallest nonzero magnitude stored in `a`
/// — a cheap, deterministic `O(nnz)` proxy for how badly scaled the
/// data is (`1.0` for an empty or single-magnitude matrix). This is not
/// a singular-value condition number; it is the quantity equilibration
/// directly attacks, and the quantity the solver's absolute tolerances
/// are implicitly calibrated against.
pub fn value_spread(a: &Csr) -> f64 {
    spread(a.vals().iter().map(|v| v.abs()))
}

/// [`value_spread`] of the matrix `diag(row) · a · diag(col)` without
/// materializing it.
///
/// # Panics
///
/// Panics if `row`/`col` lengths do not match the matrix shape.
pub fn scaled_value_spread(a: &Csr, row: &[f64], col: &[f64]) -> f64 {
    assert_eq!(row.len(), a.rows(), "row scale length mismatch");
    assert_eq!(col.len(), a.cols(), "col scale length mismatch");
    spread((0..a.rows()).flat_map(|i| a.iter_row(i).map(move |(j, v)| (row[i] * v * col[j]).abs())))
}

/// Root-mean-square deviation of the stored magnitudes from 1, in
/// octaves, reported as the factor `2^rms(log2|a_ij|)` (`1.0` for an
/// empty matrix or one whose entries all sit at magnitude 1). This is
/// the quantity geometric-mean equilibration (approximately) minimizes
/// — the least-squares objective of Curtis–Reid — so it is the honest
/// "did scaling help" metric even on matrices whose *worst-case*
/// max/min ratio is irreducible (e.g. a huge and a tiny coefficient in
/// the same row).
pub fn log_deviation(a: &Csr) -> f64 {
    deviation(a.vals().iter().map(|v| v.abs()))
}

/// [`log_deviation`] of `diag(row) · a · diag(col)` without
/// materializing it.
///
/// # Panics
///
/// Panics if `row`/`col` lengths do not match the matrix shape.
pub fn scaled_log_deviation(a: &Csr, row: &[f64], col: &[f64]) -> f64 {
    assert_eq!(row.len(), a.rows(), "row scale length mismatch");
    assert_eq!(col.len(), a.cols(), "col scale length mismatch");
    deviation(
        (0..a.rows()).flat_map(|i| a.iter_row(i).map(move |(j, v)| (row[i] * v * col[j]).abs())),
    )
}

fn deviation(mags: impl Iterator<Item = f64>) -> f64 {
    let mut sum_sq = 0.0_f64;
    let mut n = 0usize;
    for m in mags {
        if m > 0.0 && m.is_finite() {
            let l = m.log2();
            sum_sq += l * l;
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (sum_sq / n as f64).sqrt().exp2()
    }
}

fn spread(mags: impl Iterator<Item = f64>) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = 0.0_f64;
    for m in mags {
        if m > 0.0 {
            min = min.min(m);
            max = max.max(m);
        }
    }
    if max > 0.0 && min.is_finite() {
        max / min
    } else {
        1.0
    }
}

/// Rounds a positive finite value to the nearest power of two (nearest
/// in log scale: the mantissa splits at √2). Powers of two are exactly
/// representable and have exactly representable reciprocals, which is
/// what makes equilibration a *lossless* change of units. Implemented on
/// the bit pattern, so the result is identical on every platform.
pub fn nearest_pow2(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x.is_finite(), "nearest_pow2 domain: {x}");
    const FRAC_MASK: u64 = (1u64 << 52) - 1;
    // Fraction bits of √2 = 1.4142…: mantissas at or above this round up.
    const SQRT2_FRAC: u64 = 0x6A09E667F3BCD;
    let bits = x.to_bits();
    let mut exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    if (bits >> 52) & 0x7ff == 0 {
        // Subnormal: treat as the smallest normal (factors this extreme
        // are clamped below anyway).
        exp = -1022;
    } else if bits & FRAC_MASK >= SQRT2_FRAC {
        exp += 1;
    }
    // Clamp far inside the representable exponent range so reciprocals
    // and products with problem data stay normal.
    exp = exp.clamp(-500, 500);
    f64::from_bits(((exp + 1023) as u64) << 52)
}

/// Iterative geometric-mean row/column equilibration of `a`.
///
/// Each sweep rescales every row, then every column, by the reciprocal
/// of its geometric-mean magnitude `√(min·max)` over the current scaled
/// entries; sweeps stop when no factor would change by more than a
/// power of two (so further sweeps could not change the rounded result)
/// or after `max_sweeps`. The returned factors are rounded to powers of
/// two (see [`nearest_pow2`]); rows or columns with no stored entries
/// keep factor 1. `O(nnz)` per sweep, fully deterministic.
pub fn geometric_mean_scaling(a: &Csr, max_sweeps: usize) -> Equilibration {
    let (m, n) = (a.rows(), a.cols());
    let mut row = vec![1.0_f64; m];
    let mut col = vec![1.0_f64; n];
    for _ in 0..max_sweeps {
        let mut biggest_adjust = 1.0_f64;
        // Row pass over the current scaled magnitudes.
        for i in 0..m {
            let mut min = f64::INFINITY;
            let mut max = 0.0_f64;
            for (j, v) in a.iter_row(i) {
                let mag = (row[i] * v * col[j]).abs();
                if mag > 0.0 {
                    min = min.min(mag);
                    max = max.max(mag);
                }
            }
            if max > 0.0 && min.is_finite() {
                let g = (min * max).sqrt();
                if g.is_finite() && g > 0.0 {
                    row[i] /= g;
                    biggest_adjust = biggest_adjust.max(g.max(1.0 / g));
                }
            }
        }
        // Column pass, accumulated by scattering the rows.
        let mut cmin = vec![f64::INFINITY; n];
        let mut cmax = vec![0.0_f64; n];
        for i in 0..m {
            for (j, v) in a.iter_row(i) {
                let mag = (row[i] * v * col[j]).abs();
                if mag > 0.0 {
                    cmin[j] = cmin[j].min(mag);
                    cmax[j] = cmax[j].max(mag);
                }
            }
        }
        for j in 0..n {
            if cmax[j] > 0.0 && cmin[j].is_finite() {
                let g = (cmin[j] * cmax[j]).sqrt();
                if g.is_finite() && g > 0.0 {
                    col[j] /= g;
                    biggest_adjust = biggest_adjust.max(g.max(1.0 / g));
                }
            }
        }
        // All adjustments inside one octave: the power-of-two rounding
        // below would absorb any further sweep.
        if biggest_adjust < 2.0 {
            break;
        }
    }
    for r in row.iter_mut() {
        *r = nearest_pow2(*r);
    }
    for c in col.iter_mut() {
        *c = nearest_pow2(*c);
    }
    Equilibration { row, col }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_pow2_rounds_in_log_scale() {
        assert_eq!(nearest_pow2(1.0), 1.0);
        assert_eq!(nearest_pow2(2.0), 2.0);
        assert_eq!(nearest_pow2(0.25), 0.25);
        // √2 is the split point: just below rounds down, at/above up.
        assert_eq!(nearest_pow2(1.414), 1.0);
        assert_eq!(nearest_pow2(1.415), 2.0);
        assert_eq!(nearest_pow2(3.0), 4.0);
        assert_eq!(nearest_pow2(0.7), 0.5);
        assert_eq!(nearest_pow2(0.71), 1.0);
        // Exact reciprocals by construction.
        for x in [1e-3, 0.02, 1.0, 37.5, 1e3] {
            let p = nearest_pow2(x);
            assert_eq!(p * (1.0 / p), 1.0);
        }
    }

    #[test]
    fn value_spread_measures_magnitude_ratio() {
        let a = Csr::from_triplets(2, 2, &[(0, 0, 1e-3), (1, 1, 1e3)]).unwrap();
        assert_eq!(value_spread(&a), 1e6);
        assert_eq!(value_spread(&Csr::zeros(3, 3)), 1.0);
    }

    #[test]
    fn equilibration_cuts_the_spread_of_a_badly_scaled_matrix() {
        // Rows at wildly different magnitudes — the shape rate data in
        // arbitrary units produces.
        let a = Csr::from_triplets(
            3,
            3,
            &[
                (0, 0, 2e-3),
                (0, 1, -1e-3),
                (1, 1, 3e3),
                (1, 2, 5e2),
                (2, 0, 1.0),
                (2, 2, 2.0),
            ],
        )
        .unwrap();
        let before = value_spread(&a);
        let eq = geometric_mean_scaling(&a, 8);
        let after = scaled_value_spread(&a, &eq.row, &eq.col);
        assert!(
            after * 100.0 <= before,
            "spread {before:.3e} -> {after:.3e}"
        );
        for f in eq.row.iter().chain(&eq.col) {
            assert!(*f > 0.0 && f.is_finite());
            assert_eq!(*f, nearest_pow2(*f), "factor {f} not a power of two");
        }
    }

    #[test]
    fn well_scaled_matrices_are_left_nearly_alone() {
        let a = Csr::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, -0.5), (1, 1, 2.0)]).unwrap();
        let eq = geometric_mean_scaling(&a, 8);
        let after = scaled_value_spread(&a, &eq.row, &eq.col);
        assert!(after <= value_spread(&a) * 2.0 + 1e-12);
    }

    #[test]
    fn empty_rows_and_columns_keep_unit_factors() {
        let a = Csr::from_triplets(3, 3, &[(0, 0, 4.0)]).unwrap();
        let eq = geometric_mean_scaling(&a, 4);
        assert_eq!(eq.row[1], 1.0);
        assert_eq!(eq.row[2], 1.0);
        assert_eq!(eq.col[1], 1.0);
        assert_eq!(eq.col[2], 1.0);
    }
}
