//! Dense linear algebra substrate for the `socbuf` workspace.
//!
//! Everything downstream of this crate — the simplex solver in
//! [`socbuf-lp`](../socbuf_lp/index.html), the Markov-chain stationary
//! solvers in `socbuf-markov`, and ultimately the CTMDP buffer-sizing
//! pipeline — reduces to small dense linear systems. This crate provides
//! the minimal, well-tested kernel they share:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the usual
//!   constructors and arithmetic,
//! * [`Lu`] — LU factorization with partial pivoting, used for linear
//!   solves, determinants and inverses,
//! * free functions over `&[f64]` slices ([`dot`], [`axpy`], norms).
//!
//! # Examples
//!
//! ```
//! use socbuf_linalg::{Matrix, Lu};
//!
//! # fn main() -> Result<(), socbuf_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = Lu::factor(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod error;
mod lu;
mod matrix;
mod vector;

pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use vector::{axpy, dot, inf_norm, max_abs_diff, one_norm, scale, two_norm};

/// Default absolute tolerance used throughout the workspace when comparing
/// floating-point quantities that should be exact in infinite precision.
pub const DEFAULT_TOL: f64 = 1e-9;
