//! Dense **and sparse** linear algebra substrate for the `socbuf`
//! workspace.
//!
//! Everything downstream of this crate — the simplex solver in
//! [`socbuf-lp`](../socbuf_lp/index.html), the Markov-chain stationary
//! solvers in `socbuf-markov`, and ultimately the CTMDP buffer-sizing
//! pipeline — reduces to linear systems. The paper's systems are
//! structurally sparse (tridiagonal birth–death generators,
//! block-diagonal occupation-measure constraints), so the crate carries
//! two tiers of kernels:
//!
//! * **Sparse, for the hot path** —
//!   [`Csr`] (compressed-sparse-row storage with `O(nnz)` matvec /
//!   vecmat / transpose and triplet / row-builder assembly),
//!   [`Tridiag`] (the Thomas algorithm: `O(n)` tridiagonal solves), and
//!   the [`scaling`] kernels (geometric-mean equilibration with exact
//!   power-of-two factors plus the [`value_spread`] conditioning probe
//!   the LP solve path uses to decide when to scale).
//! * **Dense, for small kernels and fallbacks** —
//!   [`Matrix`] (row-major `f64`) and [`Lu`] (LU with partial pivoting,
//!   used for general-generator stationary solves, dual recovery and
//!   determinants),
//! * free functions over `&[f64]` slices ([`dot`], [`axpy`], norms).
//!
//! # Examples
//!
//! ```
//! use socbuf_linalg::{Csr, Matrix, Lu};
//!
//! # fn main() -> Result<(), socbuf_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = Lu::factor(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//!
//! // The same matrix as CSR: products agree with the dense path.
//! let s = Csr::from_dense(&a);
//! assert_eq!(s.matvec(&x)?, a.matvec(&x)?);
//! # Ok(())
//! # }
//! ```

mod csr;
mod error;
mod lu;
mod matrix;
pub mod scaling;
mod sparse_lu;
mod tridiag;
mod vector;

pub use csr::{Csr, CsrBuilder};
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use scaling::{
    geometric_mean_scaling, log_deviation, scaled_log_deviation, scaled_value_spread, value_spread,
    Equilibration,
};
pub use sparse_lu::SparseLu;
pub use tridiag::Tridiag;
pub use vector::{axpy, dot, inf_norm, max_abs_diff, one_norm, scale, two_norm};

/// Default absolute tolerance used throughout the workspace when comparing
/// floating-point quantities that should be exact in infinite precision.
pub const DEFAULT_TOL: f64 = 1e-9;
