//! Sparse LU factorization for simplex basis matrices.
//!
//! The revised simplex refactorizes its basis every few dozen pivots;
//! with the dense [`crate::Lu`] kernel that refresh costs `O(m³)` no
//! matter how sparse the basis is — and simplex bases of the
//! occupation-measure LPs carry only 2–6 nonzeros per column. This
//! left-looking, column-at-a-time factorization with partial pivoting
//! (the classic Gilbert–Peierls shape, minus the symbolic DFS: an
//! `O(n²)` scan with a trivial constant replaces it, which is the right
//! trade below a few thousand rows) costs `O(n² + fill)` — microseconds
//! where the dense kernel needs tens of milliseconds.
//!
//! Input is a set of sparse *columns* (exactly how a simplex basis is
//! gathered); `L` and `U` are stored as sparse column lists, and both
//! [`SparseLu::solve`] and [`SparseLu::solve_transpose`] run in
//! `O(n + nnz(L) + nnz(U))`.

use crate::LinalgError;

/// Sparse LU with partial pivoting: `P A = L U`, built from sparse
/// columns.
///
/// # Examples
///
/// ```
/// use socbuf_linalg::SparseLu;
///
/// # fn main() -> Result<(), socbuf_linalg::LinalgError> {
/// // [ 2 1 ]      columns: [(0,2),(1,1)] and [(0,1),(1,3)]
/// // [ 1 3 ]
/// let cols = vec![vec![(0, 2.0), (1, 1.0)], vec![(0, 1.0), (1, 3.0)]];
/// let lu = SparseLu::factor_cols(2, &cols)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// `L` by elimination column: `(original_row, l_value)` entries,
    /// strictly below the diagonal in position space; unit diagonal
    /// implicit.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// `U` by column: `(position, u_value)` entries strictly above the
    /// diagonal.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U` per elimination position.
    u_diag: Vec<f64>,
    /// `pivot_row[k]` — original row pivoting elimination position `k`.
    pivot_row: Vec<usize>,
    /// Inverse map: original row → elimination position (or `MAX`).
    position: Vec<usize>,
}

/// Pivots smaller than this (relative to the column's max) are refused;
/// a column with no usable pivot marks the matrix singular.
const PIVOT_TOL: f64 = 1e-12;

impl SparseLu {
    /// Factors the `n × n` matrix whose `j`-th column holds the sparse
    /// entries `cols[j]` as `(row, value)` pairs (any order, no
    /// duplicates).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] if `n == 0`.
    /// * [`LinalgError::DimensionMismatch`] if `cols.len() != n`.
    /// * [`LinalgError::IndexOutOfRange`] if an entry's row is `≥ n`.
    /// * [`LinalgError::Singular`] if a column has no usable pivot.
    pub fn factor_cols(n: usize, cols: &[Vec<(usize, f64)>]) -> Result<Self, LinalgError> {
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if cols.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, n),
                found: (n, cols.len()),
            });
        }
        let mut lu = SparseLu {
            n,
            l_cols: Vec::with_capacity(n),
            u_cols: Vec::with_capacity(n),
            u_diag: Vec::with_capacity(n),
            pivot_row: Vec::with_capacity(n),
            position: vec![usize::MAX; n],
        };
        // Dense accumulator + occupancy list: scatter, eliminate,
        // gather, clear — only touched entries are ever visited.
        let mut work = vec![0.0f64; n];
        let mut touched: Vec<usize> = Vec::with_capacity(64);

        for (j, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                if r >= n {
                    return Err(LinalgError::IndexOutOfRange {
                        row: r,
                        col: j,
                        rows: n,
                        cols: n,
                    });
                }
                work[r] += v;
                touched.push(r);
            }
            // Left-looking elimination: apply every earlier column whose
            // pivot row currently holds a nonzero. Increasing-k order is
            // required (an update from column k can light up the pivot
            // row of a later column k′).
            let mut u_col: Vec<(usize, f64)> = Vec::new();
            for k in 0..j {
                let ukj = work[lu.pivot_row[k]];
                if ukj == 0.0 {
                    continue;
                }
                for &(r, l) in &lu.l_cols[k] {
                    if work[r] == 0.0 {
                        touched.push(r);
                    }
                    work[r] -= l * ukj;
                }
                u_col.push((k, ukj));
            }
            // Partial pivoting among rows not yet assigned a position.
            let mut pivot: Option<(usize, f64)> = None;
            for &r in &touched {
                if lu.position[r] != usize::MAX {
                    continue;
                }
                let mag = work[r].abs();
                if mag > 0.0 && pivot.is_none_or(|(_, best)| mag > best) {
                    pivot = Some((r, mag));
                }
            }
            let Some((prow, pmag)) = pivot else {
                return Err(LinalgError::Singular { pivot: j });
            };
            if pmag < PIVOT_TOL {
                return Err(LinalgError::Singular { pivot: j });
            }
            let pval = work[prow];
            let mut l_col: Vec<(usize, f64)> = Vec::new();
            for &r in &touched {
                let v = work[r];
                work[r] = 0.0; // clear as we gather
                if v == 0.0 || r == prow {
                    continue;
                }
                if lu.position[r] == usize::MAX {
                    l_col.push((r, v / pval));
                }
                // Rows already pivoted were gathered into u_col above.
            }
            touched.clear();
            lu.position[prow] = j;
            lu.pivot_row.push(prow);
            lu.u_diag.push(pval);
            lu.u_cols.push(u_col);
            lu.l_cols.push(l_col);
        }
        Ok(lu)
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries in `L` and `U` combined (fill-in diagnostics).
    pub fn nnz(&self) -> usize {
        self.n
            + self.l_cols.iter().map(Vec::len).sum::<usize>()
            + self.u_cols.iter().map(Vec::len).sum::<usize>()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.n;
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                found: (b.len(), 1),
            });
        }
        // Forward: L z = P b, in original-row coordinates.
        let mut z = b.to_vec();
        for k in 0..n {
            let zk = z[self.pivot_row[k]];
            if zk == 0.0 {
                continue;
            }
            for &(r, l) in &self.l_cols[k] {
                z[r] -= l * zk;
            }
        }
        // Backward: U x = z, reading z through the pivot order.
        let mut zpos: Vec<f64> = self.pivot_row.iter().map(|&r| z[r]).collect();
        let mut x = vec![0.0; n];
        for j in (0..n).rev() {
            let xj = zpos[j] / self.u_diag[j];
            x[j] = xj;
            if xj == 0.0 {
                continue;
            }
            for &(k, u) in &self.u_cols[j] {
                zpos[k] -= u * xj;
            }
        }
        Ok(x)
    }

    /// Solves `Aᵀ x = b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve_transpose(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.n;
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                found: (b.len(), 1),
            });
        }
        // Aᵀ = Uᵀ Lᵀ P. Forward: Uᵀ w = b (columns of U in order).
        let mut w = vec![0.0; n];
        for j in 0..n {
            let mut acc = b[j];
            for &(k, u) in &self.u_cols[j] {
                acc -= u * w[k];
            }
            w[j] = acc / self.u_diag[j];
        }
        // Backward: Lᵀ v = w in position space (entries of L-col k sit
        // at strictly later positions).
        for k in (0..n).rev() {
            let mut acc = w[k];
            for &(r, l) in &self.l_cols[k] {
                acc -= l * w[self.position[r]];
            }
            w[k] = acc;
        }
        // x = Pᵀ v.
        let mut x = vec![0.0; n];
        for (k, &r) in self.pivot_row.iter().enumerate() {
            x[r] = w[k];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{max_abs_diff, Lu, Matrix};

    fn cols_of(m: &Matrix) -> Vec<Vec<(usize, f64)>> {
        (0..m.cols())
            .map(|j| {
                (0..m.rows())
                    .filter(|&i| m[(i, j)] != 0.0)
                    .map(|i| (i, m[(i, j)]))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn matches_dense_lu_on_small_systems() {
        let cases = [
            Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap(),
            Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap(), // needs pivoting
            Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]).unwrap(),
            Matrix::from_rows(&[&[1e-8, 1.0, 0.0], &[1.0, 0.0, 2.0], &[0.0, 3.0, 1.0]]).unwrap(),
        ];
        for a in &cases {
            let b: Vec<f64> = (0..a.rows()).map(|i| 1.0 + i as f64).collect();
            let dense = Lu::factor(a).unwrap();
            let sparse = SparseLu::factor_cols(a.rows(), &cols_of(a)).unwrap();
            assert!(max_abs_diff(&dense.solve(&b).unwrap(), &sparse.solve(&b).unwrap()) < 1e-9);
            assert!(
                max_abs_diff(
                    &dense.solve_transpose(&b).unwrap(),
                    &sparse.solve_transpose(&b).unwrap()
                ) < 1e-9
            );
        }
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            SparseLu::factor_cols(2, &cols_of(&a)),
            Err(LinalgError::Singular { .. })
        ));
        // Structurally singular: an empty column.
        assert!(matches!(
            SparseLu::factor_cols(2, &[vec![(0, 1.0)], vec![]]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(matches!(
            SparseLu::factor_cols(0, &[]),
            Err(LinalgError::Empty)
        ));
        assert!(matches!(
            SparseLu::factor_cols(2, &[vec![(0, 1.0)]]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            SparseLu::factor_cols(1, &[vec![(3, 1.0)]]),
            Err(LinalgError::IndexOutOfRange { .. })
        ));
        let lu = SparseLu::factor_cols(1, &[vec![(0, 2.0)]]).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
        assert!(lu.solve_transpose(&[]).is_err());
    }

    #[test]
    fn near_triangular_basis_has_no_fill() {
        // A birth–death-style bidiagonal basis: fill-in must be zero
        // (nnz of the factors equals nnz of the matrix).
        let n = 50;
        let cols: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|j| {
                let mut c = vec![(j, 2.0)];
                if j + 1 < n {
                    c.push((j + 1, -1.0));
                }
                c
            })
            .collect();
        let nnz_in: usize = cols.iter().map(Vec::len).sum();
        let lu = SparseLu::factor_cols(n, &cols).unwrap();
        assert_eq!(lu.nnz(), nnz_in);
        let b = vec![1.0; n];
        let x = lu.solve(&b).unwrap();
        // Residual check.
        let mut r = vec![0.0; n];
        for (j, col) in cols.iter().enumerate() {
            for &(i, v) in col {
                r[i] += v * x[j];
            }
        }
        assert!(max_abs_diff(&r, &b) < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{max_abs_diff, Matrix};
    use proptest::prelude::*;

    /// Random sparse diagonally dominant systems (non-singular) with a
    /// known solution.
    fn dd_sparse_system() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
        (2usize..=12).prop_flat_map(|n| {
            (
                proptest::collection::vec(-1.0f64..1.0, n * n),
                proptest::collection::vec(0.0f64..1.0, n * n),
                proptest::collection::vec(-10.0f64..10.0, n),
            )
                .prop_map(move |(entries, keep, x)| {
                    let mut a = Matrix::zeros(n, n);
                    for i in 0..n {
                        for j in 0..n {
                            // ~40% fill keeps the matrices genuinely sparse.
                            if keep[i * n + j] < 0.4 {
                                a[(i, j)] = entries[i * n + j];
                            }
                        }
                    }
                    for i in 0..n {
                        let off: f64 = (0..n).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
                        a[(i, i)] = off + 1.0;
                    }
                    (a, x)
                })
        })
    }

    fn cols_of(m: &Matrix) -> Vec<Vec<(usize, f64)>> {
        (0..m.cols())
            .map(|j| {
                (0..m.rows())
                    .filter(|&i| m[(i, j)] != 0.0)
                    .map(|i| (i, m[(i, j)]))
                    .collect()
            })
            .collect()
    }

    proptest! {
        #[test]
        fn sparse_lu_recovers_solutions((a, x_true) in dd_sparse_system()) {
            let b = a.matvec(&x_true).unwrap();
            let lu = SparseLu::factor_cols(a.rows(), &cols_of(&a)).unwrap();
            let x = lu.solve(&b).unwrap();
            prop_assert!(max_abs_diff(&x, &x_true) < 1e-6);
        }

        #[test]
        fn sparse_lu_transpose_consistent((a, x_true) in dd_sparse_system()) {
            let bt = a.vecmat(&x_true).unwrap();
            let lu = SparseLu::factor_cols(a.rows(), &cols_of(&a)).unwrap();
            let x = lu.solve_transpose(&bt).unwrap();
            prop_assert!(max_abs_diff(&x, &x_true) < 1e-6);
        }
    }
}
