use std::fmt;

use crate::{LinalgError, Matrix};

/// A sparse matrix in compressed-sparse-row (CSR) storage.
///
/// The workspace's structurally sparse objects — birth–death CTMC
/// generators (tridiagonal), CTMDP balance matrices (a handful of entries
/// per state–action column) and the block-diagonal occupation-measure LP
/// constraint matrix — all live here. Storage is the classic triple
/// `row_ptr` / `col_idx` / `vals`: row `r`'s nonzeros occupy
/// `col_idx[row_ptr[r]..row_ptr[r+1]]` (column indices, strictly
/// increasing) and `vals[..]` (the matching values). Memory is
/// `O(rows + nnz)` — never `O(rows × cols)`.
///
/// # Examples
///
/// ```
/// use socbuf_linalg::Csr;
///
/// # fn main() -> Result<(), socbuf_linalg::LinalgError> {
/// // [ 2 0 1 ]
/// // [ 0 3 0 ]
/// let a = Csr::from_triplets(2, 3, &[(0, 0, 2.0), (0, 2, 1.0), (1, 1, 3.0)])?;
/// assert_eq!(a.nnz(), 3);
/// assert_eq!(a.matvec(&[1.0, 1.0, 1.0])?, vec![3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl Csr {
    /// The empty `rows × cols` matrix (no stored entries).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Csr {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Builds a matrix from `(row, col, value)` triplets. Duplicate
    /// coordinates accumulate; entries that cancel to exactly zero are
    /// dropped. Triplets may arrive in any order.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::IndexOutOfRange`] if a triplet indexes outside
    ///   `rows × cols`.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, LinalgError> {
        // Two-pass counting sort by row: O(rows + nnz) and stable enough
        // that the per-row column sort below usually sees presorted data.
        let mut counts = vec![0usize; rows + 1];
        for &(r, c, _) in triplets {
            if r >= rows || c >= cols {
                return Err(LinalgError::IndexOutOfRange {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut entries: Vec<(usize, f64)> = vec![(0, 0.0); triplets.len()];
        let mut cursor = counts.clone();
        for &(r, c, v) in triplets {
            entries[cursor[r]] = (c, v);
            cursor[r] += 1;
        }

        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut vals = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        for r in 0..rows {
            let seg = &mut entries[counts[r]..counts[r + 1]];
            seg.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < seg.len() {
                let c = seg[i].0;
                let mut acc = 0.0;
                while i < seg.len() && seg[i].0 == c {
                    acc += seg[i].1;
                    i += 1;
                }
                if acc != 0.0 {
                    col_idx.push(c);
                    vals.push(acc);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        })
    }

    /// Builds a matrix row by row from already-sorted sparse rows. Each
    /// row must have strictly increasing column indices; zero values are
    /// kept out.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::IndexOutOfRange`] for an out-of-range column.
    /// * [`LinalgError::UnsortedColumns`] if a row's columns are not
    ///   strictly increasing.
    pub fn from_sorted_rows(cols: usize, rows: &[Vec<(usize, f64)>]) -> Result<Self, LinalgError> {
        let mut b = CsrBuilder::new(cols);
        for row in rows {
            b.push_row(row)?;
        }
        Ok(b.finish())
    }

    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> Self {
        let mut row_ptr = Vec::with_capacity(m.rows() + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for r in 0..m.rows() {
            for (c, &v) in m.row(r).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c);
                    vals.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            rows: m.rows(),
            cols: m.cols(),
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Materializes the matrix densely (small kernels and tests only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.iter_row(r) {
                m[(r, c)] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// The raw row-pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The raw column-index array (`nnz` entries, sorted within rows).
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The raw value array (`nnz` entries, parallel to `col_idx`).
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// The stored columns and values of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.vals[span])
    }

    /// The stored columns (shared) and values (mutable) of row `r` —
    /// the pattern-preserving update entry: callers may rewrite the
    /// numeric values of a row in place but never its sparsity pattern,
    /// which is what keeps incremental re-assembly (e.g. rescaling the
    /// rate coefficients of a cached LP standard form) `O(row nnz)`
    /// without invalidating anything built on the structure.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> (&[usize], &mut [f64]) {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &mut self.vals[span])
    }

    /// Iterates the `(col, value)` pairs of row `r` in column order.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn iter_row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (cols, vals) = self.row(r);
        cols.iter().copied().zip(vals.iter().copied())
    }

    /// Entry `(r, c)` (zero if not stored). Binary search within the row.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds ({}x{})",
            self.rows,
            self.cols
        );
        let (cols, vals) = self.row(r);
        match cols.binary_search(&c) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// Matrix–vector product `A x` in `O(nnz)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c];
            }
            *yr = acc;
        }
        Ok(y)
    }

    /// Vector–matrix product `xᵀ A` in `O(nnz)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.rows()`.
    pub fn vecmat(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.rows, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                y[*c] += xr * v;
            }
        }
        Ok(y)
    }

    /// Returns the transpose in `O(rows + cols + nnz)`.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            for (c, v) in self.iter_row(r) {
                let dst = cursor[c];
                col_idx[dst] = r;
                vals[dst] = v;
                cursor[c] += 1;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// `true` if every stored entry sits on the main, sub- or
    /// super-diagonal — i.e. the matrix is tridiagonal. Birth–death
    /// generators always are; [`crate::Tridiag::from_csr`] uses this to
    /// route stationary solves through the Thomas algorithm.
    pub fn is_tridiagonal(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            let (cols, _) = self.row(r);
            for &c in cols {
                if r.abs_diff(c) > 1 {
                    return false;
                }
            }
        }
        true
    }

    /// Rescales the matrix in place to `diag(row) · A · diag(col)` —
    /// the equilibration kernel. The sparsity pattern is untouched (a
    /// scale factor of zero would break that contract and is rejected).
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `row`/`col` lengths do not
    /// match the matrix shape.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) on a non-positive or non-finite factor.
    pub fn scale_rows_cols(&mut self, row: &[f64], col: &[f64]) -> Result<(), LinalgError> {
        if row.len() != self.rows || col.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.rows, self.cols),
                found: (row.len(), col.len()),
            });
        }
        debug_assert!(
            row.iter().chain(col).all(|f| *f > 0.0 && f.is_finite()),
            "scale factors must be positive and finite"
        );
        for r in 0..self.rows {
            let span = self.row_ptr[r]..self.row_ptr[r + 1];
            for (v, &c) in self.vals[span.clone()].iter_mut().zip(&self.col_idx[span]) {
                *v *= row[r] * col[c];
            }
        }
        Ok(())
    }

    /// Maximum absolute stored entry.
    pub fn max_abs(&self) -> f64 {
        self.vals.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Returns `true` if every stored entry is finite.
    pub fn is_finite(&self) -> bool {
        self.vals.iter().all(|v| v.is_finite())
    }
}

impl fmt::Debug for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Csr {}x{} ({} nnz) [", self.rows, self.cols, self.nnz())?;
        for r in 0..self.rows.min(8) {
            write!(f, "  {r}:")?;
            for (c, v) in self.iter_row(r).take(8) {
                write!(f, " ({c}, {v:.4})")?;
            }
            if self.row(r).0.len() > 8 {
                write!(f, " …")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Incremental row-by-row CSR assembly — the natural fit for LP
/// standard-form construction, where rows are produced in order with
/// already-sorted terms.
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl CsrBuilder {
    /// Starts an empty matrix with `cols` columns and no rows.
    pub fn new(cols: usize) -> Self {
        CsrBuilder {
            cols,
            row_ptr: vec![0],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Hints the expected total entry count.
    pub fn with_capacity(cols: usize, rows: usize, nnz: usize) -> Self {
        let mut b = CsrBuilder::new(cols);
        b.row_ptr.reserve(rows);
        b.col_idx.reserve(nnz);
        b.vals.reserve(nnz);
        b
    }

    /// Number of rows pushed so far.
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Appends one row given `(col, value)` terms with strictly
    /// increasing columns. Zero values are skipped.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::IndexOutOfRange`] for an out-of-range column.
    /// * [`LinalgError::UnsortedColumns`] if columns are not strictly
    ///   increasing.
    pub fn push_row(&mut self, terms: &[(usize, f64)]) -> Result<(), LinalgError> {
        self.push_row_iter(terms.iter().copied())
    }

    /// Like [`CsrBuilder::push_row`] but consumes any `(col, value)`
    /// iterator — lets callers chain term sources (e.g. structural
    /// coefficients plus a slack column) without an intermediate `Vec`.
    ///
    /// # Errors
    ///
    /// Same as [`CsrBuilder::push_row`]; a failed push leaves the
    /// builder unchanged.
    pub fn push_row_iter(
        &mut self,
        terms: impl IntoIterator<Item = (usize, f64)>,
    ) -> Result<(), LinalgError> {
        let start = self.col_idx.len();
        let mut last: Option<usize> = None;
        for (c, v) in terms {
            if c >= self.cols || last.is_some_and(|l| c <= l) {
                // Roll back the partially committed row.
                self.col_idx.truncate(start);
                self.vals.truncate(start);
                return if c >= self.cols {
                    Err(LinalgError::IndexOutOfRange {
                        row: self.rows(),
                        col: c,
                        rows: self.rows() + 1,
                        cols: self.cols,
                    })
                } else {
                    Err(LinalgError::UnsortedColumns {
                        row: self.rows(),
                        col: c,
                    })
                };
            }
            last = Some(c);
            if v != 0.0 {
                self.col_idx.push(c);
                self.vals.push(v);
            }
        }
        self.row_ptr.push(self.col_idx.len());
        Ok(())
    }

    /// Finalizes the matrix.
    pub fn finish(self) -> Csr {
        Csr {
            rows: self.row_ptr.len() - 1,
            cols: self.cols,
            row_ptr: self.row_ptr,
            col_idx: self.col_idx,
            vals: self.vals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Csr {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        Csr::from_triplets(3, 3, &[(2, 1, 4.0), (0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0)]).unwrap()
    }

    #[test]
    fn triplets_sort_accumulate_and_drop_zeros() {
        let a = Csr::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, 2.0), (1, 0, 5.0), (1, 0, -5.0)])
            .unwrap();
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 1), 3.0);
        assert_eq!(a.get(1, 0), 0.0);
    }

    #[test]
    fn triplets_reject_out_of_range() {
        assert!(Csr::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(Csr::from_triplets(2, 2, &[(0, 2, 1.0)]).is_err());
    }

    #[test]
    fn row_mut_rewrites_values_in_place() {
        let mut a = example();
        {
            let (cols, vals) = a.row_mut(2);
            assert_eq!(cols, &[0, 1]);
            vals[0] = -3.0;
            vals[1] = 8.0;
        }
        assert_eq!(a.get(2, 0), -3.0);
        assert_eq!(a.get(2, 1), 8.0);
        // The pattern (and every other row) is untouched.
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_mut_rejects_bad_row() {
        let mut a = example();
        let _ = a.row_mut(3);
    }

    #[test]
    fn dense_roundtrip() {
        let a = example();
        let d = a.to_dense();
        assert_eq!(d[(0, 2)], 2.0);
        assert_eq!(d[(1, 1)], 0.0);
        let back = Csr::from_dense(&d);
        assert_eq!(back, a);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = example();
        let x = [1.0, -2.0, 0.5];
        assert_eq!(a.matvec(&x).unwrap(), a.to_dense().matvec(&x).unwrap());
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn vecmat_matches_dense() {
        let a = example();
        let x = [2.0, 1.0, -1.0];
        assert_eq!(a.vecmat(&x).unwrap(), a.to_dense().vecmat(&x).unwrap());
        assert!(a.vecmat(&[1.0]).is_err());
    }

    #[test]
    fn transpose_roundtrip_and_matches_dense() {
        let a = example();
        let t = a.transpose();
        assert_eq!(t.to_dense(), a.to_dense().transpose());
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn row_access_is_sorted() {
        let a = example();
        let (cols, vals) = a.row(2);
        assert_eq!(cols, &[0, 1]);
        assert_eq!(vals, &[3.0, 4.0]);
        assert_eq!(a.row(1).0.len(), 0);
    }

    #[test]
    fn tridiagonal_detection() {
        let tri = Csr::from_triplets(
            3,
            3,
            &[
                (0, 0, -1.0),
                (0, 1, 1.0),
                (1, 0, 2.0),
                (1, 2, 1.0),
                (2, 1, 3.0),
            ],
        )
        .unwrap();
        assert!(tri.is_tridiagonal());
        let not = Csr::from_triplets(3, 3, &[(0, 2, 1.0)]).unwrap();
        assert!(!not.is_tridiagonal());
        let rect = Csr::zeros(2, 3);
        assert!(!rect.is_tridiagonal());
    }

    #[test]
    fn builder_enforces_sorted_columns() {
        let mut b = CsrBuilder::new(3);
        b.push_row(&[(0, 1.0), (2, 2.0)]).unwrap();
        assert!(matches!(
            b.push_row(&[(1, 1.0), (1, 2.0)]),
            Err(LinalgError::UnsortedColumns { row: 1, col: 1 })
        ));
        assert!(matches!(
            b.push_row(&[(5, 1.0)]),
            Err(LinalgError::IndexOutOfRange { col: 5, .. })
        ));
        b.push_row(&[]).unwrap();
        let a = b.finish();
        // The two failed pushes must not have committed partial rows.
        assert_eq!(a.rows(), 2);
        assert_eq!(a.get(0, 2), 2.0);
    }

    #[test]
    fn norms_and_finiteness() {
        let a = example();
        assert_eq!(a.max_abs(), 4.0);
        assert!(a.is_finite());
    }

    #[test]
    fn empty_matrix_behaves() {
        let z = Csr::zeros(2, 2);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.matvec(&[1.0, 1.0]).unwrap(), vec![0.0, 0.0]);
        assert_eq!(z.transpose().nnz(), 0);
    }

    #[test]
    fn debug_output_nonempty() {
        let s = format!("{:?}", example());
        assert!(s.contains("Csr 3x3"));
    }
}
