//! The end-to-end loop of the paper: size the buffers with the CTMDP
//! LP, re-simulate the architecture with the new buffer lengths, and
//! compare losses against the constant-sizing and timeout baselines.

use socbuf_lp::{BasisSnapshot, LpEngine, LpError, PreparedLp};
use socbuf_sim::{
    average_reports, replication_config, Arbiter, SimConfig, SimEngine, SimReport, TimeoutSpec,
};
use socbuf_soc::{Architecture, BufferAllocation};

use crate::formulation::{solve_ladder, SizingConfig, SizingLp, SizingSolution};
use crate::translate::{translate, Translation};
use crate::CoreError;

/// Result of the sizing step alone (no simulation).
#[derive(Debug, Clone)]
pub struct SizingOutcome {
    /// The exact-budget integer buffer allocation.
    pub allocation: BufferAllocation,
    /// Effort curves for the K-switching arbiter.
    pub efforts: Vec<Vec<f64>>,
    /// Quantile requirements before apportionment.
    pub requirements: Vec<usize>,
    /// LP-predicted weighted loss rate.
    pub predicted_loss_rate: f64,
    /// Shadow price of the buffer-budget row (≤ 0; see
    /// [`crate::formulation::SizingSolution::budget_shadow_price`]).
    pub budget_shadow_price: f64,
    /// Whether the LP budget row had to be relaxed.
    pub budget_row_relaxed: bool,
    /// Simplex pivots used by the joint LP.
    pub lp_iterations: usize,
    /// Engine that solved the joint LP (pivot counts are only
    /// comparable within one engine).
    pub lp_engine: LpEngine,
    /// What the LP equilibration pass measured and did for the joint
    /// solve: the standard form's nonzero-magnitude spread before and
    /// after scaling, and whether scaling was applied at all (only
    /// badly-scaled instances are touched; see
    /// [`SizingConfig::equilibrate`](crate::SizingConfig)).
    pub lp_scaling: socbuf_lp::ScalingStats,
}

/// Sizes the buffers of `arch` for a total budget of `budget` units.
///
/// This is steps 1–3 of the methodology: split (implicit in the
/// formulation), solve the joint occupation-measure LP, translate via
/// the K-switching policy into integer buffer lengths.
///
/// # Errors
///
/// Propagates formulation/LP/translation failures.
///
/// # Examples
///
/// See the [crate-level documentation](crate).
pub fn size_buffers(
    arch: &Architecture,
    budget: usize,
    config: &SizingConfig,
) -> Result<SizingOutcome, CoreError> {
    let lp = SizingLp::build(arch, budget, config)?;
    let solution = lp.solve()?;
    let Translation {
        allocation,
        requirements,
        efforts,
    } = translate(arch, &solution, budget, config)?;
    Ok(SizingOutcome {
        allocation,
        efforts,
        requirements,
        predicted_loss_rate: solution.loss_rate,
        budget_shadow_price: solution.budget_shadow_price,
        budget_row_relaxed: solution.budget_row_relaxed,
        lp_iterations: solution.lp_iterations,
        lp_engine: solution.lp_engine,
        lp_scaling: solution.lp_scaling,
    })
}

/// Warm-start state for a *chain* of sizing solves over one
/// architecture family — the pipeline hook the sweep campaigns thread
/// through contiguous runs of budget or load points.
///
/// The context lazily builds the joint LP at the chain's first point,
/// caches its assembled standard form in a [`PreparedLp`], and from
/// then on re-targets the cached form **in place** (budget = RHS-only
/// delta on the budget row; load factor = pattern-preserving rescale of
/// the cut rows and loss costs) and re-enters the revised simplex from
/// the previous point's optimal basis. Every solve still climbs the
/// same perturbation ladder as [`size_buffers`] and falls back to a
/// cold solve whenever the basis is stale, so a warm-started point
/// reports the same status and (to solver precision) the same optimal
/// objective a cold point would — warm starts change pivot counts and
/// wall time, never answers. The first solve of a fresh context is
/// bit-identical to [`size_buffers`].
///
/// # Examples
///
/// ```
/// use socbuf_core::{size_buffers, SizingConfig, SolveContext};
/// use socbuf_soc::templates;
///
/// # fn main() -> Result<(), socbuf_core::CoreError> {
/// let arch = templates::amba();
/// let config = SizingConfig::small();
/// let mut ctx = SolveContext::new(&arch, &config);
/// let mut last = None;
/// for budget in [12, 16, 24] {
///     let warm = ctx.size_buffers(budget)?; // warm after the first
///     let cold = size_buffers(&arch, budget, &config)?;
///     let (w, c) = (warm.predicted_loss_rate, cold.predicted_loss_rate);
///     assert!((w - c).abs() <= 1e-9 * (1.0 + c.abs()));
///     last = Some(warm);
/// }
/// assert_eq!(last.unwrap().allocation.total(), 24);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SolveContext {
    /// The factor-1 architecture the chain is parameterized over.
    arch: Architecture,
    config: SizingConfig,
    state: Option<WarmState>,
    /// A basis imported from outside the chain (typically shipped
    /// cross-process by a coordinator), consumed when the first
    /// [`WarmState`] is built so the chain's opening solve warm-starts.
    seed: Option<BasisSnapshot>,
}

#[derive(Debug)]
struct WarmState {
    lp: SizingLp,
    prepared: PreparedLp,
    basis: Option<BasisSnapshot>,
}

impl SolveContext {
    /// A fresh (cold) context over `arch`; nothing is assembled until
    /// the first solve.
    pub fn new(arch: &Architecture, config: &SizingConfig) -> SolveContext {
        SolveContext {
            arch: arch.clone(),
            config: config.clone(),
            state: None,
            seed: None,
        }
    }

    /// The basis this context would warm-start its next solve from: the
    /// most recent solve's exported basis, or an imported seed on a
    /// context that has not solved yet. `None` on a fully cold context.
    pub fn basis_snapshot(&self) -> Option<&BasisSnapshot> {
        self.state
            .as_ref()
            .and_then(|s| s.basis.as_ref())
            .or(self.seed.as_ref())
    }

    /// Seeds the chain with a basis exported elsewhere (usually by a
    /// coordinator process, via the wire codec), so this context's
    /// *first* solve warm-starts instead of running the full cold
    /// two-phase path. A snapshot whose shape does not match the chain's
    /// LP is detected on import by the solver, which falls back cold —
    /// seeding changes pivot counts and wall time, never answers.
    pub fn import_basis(&mut self, snapshot: BasisSnapshot) {
        match &mut self.state {
            Some(state) if state.basis.is_none() => state.basis = Some(snapshot),
            Some(_) => {} // an in-chain basis is fresher than any import
            None => self.seed = Some(snapshot),
        }
    }

    /// Sizes the nominal architecture at `budget`, warm-starting from
    /// the previous solve in this context when one exists. Semantically
    /// identical to [`size_buffers`]`(arch, budget, config)`.
    ///
    /// # Errors
    ///
    /// Same as [`size_buffers`].
    pub fn size_buffers(&mut self, budget: usize) -> Result<SizingOutcome, CoreError> {
        let arch = self.arch.clone();
        self.size_buffers_scaled(&arch, 1.0, budget)
    }

    /// Sizes a load-scaled variant of the nominal architecture:
    /// `scaled` must equal `arch.scale_rates(factor, 1.0)` for this
    /// context's architecture. Semantically identical to
    /// [`size_buffers`]`(scaled, budget, config)` (loss weights of
    /// multi-source bridge queues may differ at the last ulp — they are
    /// rate-*ratio* weighted, which a common λ scale cancels only in
    /// exact arithmetic).
    ///
    /// # Errors
    ///
    /// Same as [`size_buffers`].
    pub fn size_buffers_scaled(
        &mut self,
        scaled: &Architecture,
        factor: f64,
        budget: usize,
    ) -> Result<SizingOutcome, CoreError> {
        let solution = self.solve_sizing(scaled, factor, budget)?;
        let Translation {
            allocation,
            requirements,
            efforts,
        } = translate(scaled, &solution, budget, &self.config)?;
        Ok(SizingOutcome {
            allocation,
            efforts,
            requirements,
            predicted_loss_rate: solution.loss_rate,
            budget_shadow_price: solution.budget_shadow_price,
            budget_row_relaxed: solution.budget_row_relaxed,
            lp_iterations: solution.lp_iterations,
            lp_engine: solution.lp_engine,
            lp_scaling: solution.lp_scaling,
        })
    }

    fn solve_sizing(
        &mut self,
        scaled: &Architecture,
        factor: f64,
        budget: usize,
    ) -> Result<SizingSolution, CoreError> {
        // Validate once, at entry, so a chain's first (cold) solve and
        // every later (warm) solve surface the identical `BadConfig`
        // error for a zero budget. The check used to live only on the
        // warm branch, leaving the cold branch to rely on
        // `SizingLp::build` rejecting the budget several layers down —
        // same net refusal, but a different code path to keep aligned.
        if budget == 0 {
            return Err(CoreError::BadConfig("budget must be positive".into()));
        }
        if self.state.is_none() {
            // Chain start: build exactly what the cold path builds (at
            // this point's own budget/factor) and cache its assembly —
            // including the equilibration decision and scale vectors,
            // which the whole chain then shares (in-place deltas are
            // rescaled with the cached factors, so warm bases stay
            // meaningful across retargets).
            let lp = SizingLp::build(scaled, budget, &self.config)?;
            let prepared =
                PreparedLp::new_with_scaling(lp.problem().clone(), self.config.equilibrate)?;
            self.state = Some(WarmState {
                lp,
                prepared,
                // An imported seed (if any) plays the role of the
                // previous point's basis for the opening solve.
                basis: self.seed.take(),
            });
        } else {
            let state = self.state.as_mut().expect("just checked");
            if state
                .lp
                .retarget(&mut state.prepared, &self.arch, budget, factor)
                .is_err()
            {
                // Structure drifted (shouldn't happen for budget/load
                // deltas, but e.g. a λ of exactly 0 would): rebuild cold.
                self.state = None;
                return self.solve_sizing(scaled, factor, budget);
            }
        }

        let state = self.state.as_mut().expect("built above");
        let mut last_err = None;
        let ladder = solve_ladder(
            self.config.engine,
            self.config.equilibrate,
            &self.config.executor,
        );
        for options in &ladder {
            let attempt = match (&state.basis, options.engine) {
                // A decomposed solve exports a *joint* basis, so the
                // chain warm-starts the joint form from it exactly like
                // the revised engine (the warm path is the engine's own
                // finishing solve).
                (
                    Some(snapshot),
                    socbuf_lp::LpEngine::Revised | socbuf_lp::LpEngine::Decomposed,
                ) => state.prepared.solve_warm(options, snapshot),
                _ => state.prepared.solve_with(options),
            };
            match attempt {
                Ok(sol) => {
                    state.basis = Some(sol.basis_snapshot());
                    return Ok(state.lp.interpret(&sol, false));
                }
                Err(LpError::Infeasible { .. }) => {
                    // Budget-row relaxation is a different problem shape;
                    // route it through the cold path (rare: tiny budgets).
                    // The cached form and basis stay valid for the next
                    // point of the chain.
                    let lp = SizingLp::build(scaled, budget, &self.config)?;
                    return lp.solve();
                }
                Err(LpError::IterationLimit { limit }) => {
                    last_err = Some(CoreError::Lp(LpError::IterationLimit { limit }));
                }
                // Same retry policy as the cold ladder: a stronger
                // perturbation rung may resolve the θ=0 breakdown.
                Err(e @ LpError::ResidualArtificial { .. }) => {
                    last_err = Some(CoreError::Lp(e));
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(last_err.expect("ladder is non-empty"))
    }
}

/// Simulation side of the evaluation loop.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// CTMDP formulation knobs.
    pub sizing: SizingConfig,
    /// Simulated time per replication.
    pub horizon: f64,
    /// Discarded warmup prefix.
    pub warmup: f64,
    /// Base RNG seed (replication `i` derives its own seed via
    /// [`socbuf_sim::replication_seed`]).
    pub seed: u64,
    /// Independent replications to average (the paper uses 10).
    pub replications: usize,
    /// Simulator core to execute replications on. The default
    /// [`SimEngine::Auto`] picks the actor engine exactly when the
    /// architecture declares extended semantics (traffic shapes,
    /// arbitration modes, bridge latency) and the legacy engine
    /// otherwise; both agree per-seed wherever both apply.
    pub sim_engine: SimEngine,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            sizing: SizingConfig::default(),
            horizon: 1000.0,
            warmup: 100.0,
            seed: 2005,
            replications: 10,
            sim_engine: SimEngine::Auto,
        }
    }
}

impl PipelineConfig {
    /// A fast configuration for unit tests.
    pub fn small() -> Self {
        PipelineConfig {
            sizing: SizingConfig::small(),
            horizon: 400.0,
            warmup: 40.0,
            seed: 7,
            replications: 3,
            sim_engine: SimEngine::Auto,
        }
    }
}

/// The three policies of the paper's Figure 3, averaged over
/// replications.
#[derive(Debug, Clone)]
pub struct PolicyComparison {
    /// Total budget in units.
    pub budget: usize,
    /// Constant (uniform) buffer sizing, equal-share arbitration — the
    /// "before sizing" bars.
    pub pre: SimReport,
    /// CTMDP-sized buffers + K-switching arbitration — the "after
    /// sizing" bars.
    pub post: SimReport,
    /// Uniform buffers, equal-share arbitration, timeout drops with
    /// threshold = calibrated mean waiting time — the third bars.
    pub timeout: SimReport,
    /// The sizing artifacts that produced `post`.
    pub outcome: SizingOutcome,
}

impl PolicyComparison {
    /// Relative reduction of total loss vs the constant-sizing baseline
    /// (`0.2` = 20 % fewer losses, the paper's headline number).
    pub fn improvement_vs_pre(&self) -> f64 {
        relative_reduction(self.pre.total_lost, self.post.total_lost)
    }

    /// Relative reduction of total loss vs the timeout policy
    /// (the paper reports ≈ 50 %).
    pub fn improvement_vs_timeout(&self) -> f64 {
        relative_reduction(self.timeout.total_lost, self.post.total_lost)
    }
}

fn relative_reduction(before: f64, after: f64) -> f64 {
    if before <= 0.0 {
        0.0
    } else {
        (before - after) / before
    }
}

/// Execution strategy for the pipeline's independent simulation
/// replications — the hook `socbuf-sweep`'s work pool plugs into.
///
/// Implementations MUST return results in replication-index order and
/// call `f` exactly once per index; under those rules the pipeline's
/// output is bit-identical no matter how the replications are scheduled
/// (each replication derives its own RNG seed from its index, never
/// from execution order).
pub trait ReplicationPool {
    /// Evaluates `f(0), …, f(n-1)` and returns the results in index
    /// order.
    fn run_replications(&self, n: usize, f: &(dyn Fn(usize) -> SimReport + Sync))
        -> Vec<SimReport>;
}

/// The default [`ReplicationPool`]: runs replications one after another
/// on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialPool;

impl ReplicationPool for SerialPool {
    fn run_replications(
        &self,
        n: usize,
        f: &(dyn Fn(usize) -> SimReport + Sync),
    ) -> Vec<SimReport> {
        (0..n).map(f).collect()
    }
}

/// `socbuf_sim::replicate`, routed through a [`ReplicationPool`] onto
/// the configured [`SimEngine`].
#[allow(clippy::too_many_arguments)]
fn replicate_on<P: ReplicationPool + ?Sized>(
    pool: &P,
    engine: SimEngine,
    arch: &Architecture,
    alloc: &BufferAllocation,
    arbiter: &Arbiter,
    timeout: Option<&TimeoutSpec>,
    config: &SimConfig,
    n: usize,
) -> Vec<SimReport> {
    pool.run_replications(n, &|i| {
        let cfg = replication_config(config, i);
        let mut arb = arbiter.clone();
        engine.simulate_with(arch, alloc, &mut arb, timeout, &cfg)
    })
}

/// Runs the full evaluation: size the buffers, then simulate all three
/// policies with common seeds and average the replications.
///
/// # Errors
///
/// Propagates sizing failures; simulation itself is infallible for a
/// validated architecture.
pub fn evaluate_policies(
    arch: &Architecture,
    budget: usize,
    config: &PipelineConfig,
) -> Result<PolicyComparison, CoreError> {
    evaluate_policies_with(arch, budget, config, &SerialPool)
}

/// [`evaluate_policies`] with the simulation replications executed
/// through `pool` — identical output for every [`ReplicationPool`]
/// implementation (replication seeds derive from indices, averages are
/// reduced in index order).
///
/// # Errors
///
/// Same as [`evaluate_policies`].
pub fn evaluate_policies_with<P: ReplicationPool + ?Sized>(
    arch: &Architecture,
    budget: usize,
    config: &PipelineConfig,
    pool: &P,
) -> Result<PolicyComparison, CoreError> {
    if config.replications == 0 {
        return Err(CoreError::BadConfig("replications must be ≥ 1".into()));
    }
    if !(config.warmup >= 0.0 && config.warmup < config.horizon) {
        return Err(CoreError::BadConfig(
            "warmup must lie within the horizon".into(),
        ));
    }
    let outcome = size_buffers(arch, budget, &config.sizing)?;
    evaluate_policies_sized(arch, budget, config, outcome, pool)
}

/// The simulation half of [`evaluate_policies_with`], fed an already
/// computed [`SizingOutcome`] — the entry point for warm-started sweep
/// campaigns, where the sizing comes from a [`SolveContext`] chain
/// instead of a cold [`size_buffers`] call. `config.sizing` is ignored
/// (the outcome already embodies a sizing configuration).
///
/// # Errors
///
/// [`CoreError::BadConfig`] for invalid replication/warmup settings;
/// simulation itself is infallible for a validated architecture.
pub fn evaluate_policies_sized<P: ReplicationPool + ?Sized>(
    arch: &Architecture,
    budget: usize,
    config: &PipelineConfig,
    outcome: SizingOutcome,
    pool: &P,
) -> Result<PolicyComparison, CoreError> {
    if config.replications == 0 {
        return Err(CoreError::BadConfig("replications must be ≥ 1".into()));
    }
    if !(config.warmup >= 0.0 && config.warmup < config.horizon) {
        return Err(CoreError::BadConfig(
            "warmup must lie within the horizon".into(),
        ));
    }
    let sim_cfg = SimConfig {
        horizon: config.horizon,
        warmup: config.warmup,
        seed: config.seed,
    };

    // "Before": constant sizing under the static (TDMA-style) bus
    // controller — slots granted backlog-blind, so hot clients are
    // pinned to a fixed share of the bus.
    let uniform = BufferAllocation::uniform(arch, budget);
    let pre_runs = replicate_on(
        pool,
        config.sim_engine,
        arch,
        &uniform,
        &Arbiter::FixedSlot,
        None,
        &sim_cfg,
        config.replications,
    );
    let pre = average_reports(&pre_runs);

    // "After": CTMDP allocation + K-switching arbitration.
    let post_runs = replicate_on(
        pool,
        config.sim_engine,
        arch,
        &outcome.allocation,
        &Arbiter::WeightedEffort {
            efforts: outcome.efforts.clone(),
        },
        None,
        &sim_cfg,
        config.replications,
    );
    let post = average_reports(&post_runs);

    // Timeout policy: thresholds calibrated to the baseline's mean waits
    // (the paper: "the average time spent by a request in a buffer").
    let spec = TimeoutSpec::from_calibration(&pre);
    let to_runs = replicate_on(
        pool,
        config.sim_engine,
        arch,
        &uniform,
        &Arbiter::FixedSlot,
        Some(&spec),
        &sim_cfg,
        config.replications,
    );
    let timeout = average_reports(&to_runs);

    Ok(PolicyComparison {
        budget,
        pre,
        post,
        timeout,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use socbuf_soc::{templates, ArchitectureBuilder, FlowTarget};

    #[test]
    fn sizing_respects_budget_on_templates() {
        let cfg = SizingConfig::small();
        for arch in [templates::figure1(), templates::amba()] {
            for budget in [16usize, 48] {
                let out = size_buffers(&arch, budget, &cfg).unwrap();
                assert_eq!(out.allocation.total(), budget);
                assert_eq!(out.efforts.len(), arch.num_queues());
            }
        }
    }

    #[test]
    fn resizing_beats_uniform_on_skewed_load() {
        // One hot and one cold processor on a shared bus: the uniform
        // split starves the hot queue, the CTMDP sizing must cut total
        // loss.
        let mut b = ArchitectureBuilder::new();
        let bus = b.add_bus("bus", 1.0).unwrap();
        let hot = b.add_processor("hot", &[bus], 1.0).unwrap();
        let cold = b.add_processor("cold", &[bus], 1.0).unwrap();
        b.add_flow(hot, FlowTarget::Bus(bus), 0.72).unwrap();
        b.add_flow(cold, FlowTarget::Bus(bus), 0.10).unwrap();
        let arch = b.build().unwrap();

        let mut cfg = PipelineConfig::small();
        cfg.horizon = 3000.0;
        cfg.warmup = 300.0;
        let cmp = evaluate_policies(&arch, 10, &cfg).unwrap();
        assert!(
            cmp.post.total_lost < cmp.pre.total_lost,
            "post {} vs pre {}",
            cmp.post.total_lost,
            cmp.pre.total_lost
        );
        assert!(cmp.improvement_vs_pre() > 0.0);
    }

    #[test]
    fn evaluate_runs_all_three_policies_on_figure1() {
        let arch = templates::figure1();
        let cmp = evaluate_policies(&arch, 22, &PipelineConfig::small()).unwrap();
        assert_eq!(cmp.pre.per_proc.len(), arch.num_processors());
        assert_eq!(cmp.post.per_proc.len(), arch.num_processors());
        assert_eq!(cmp.timeout.per_proc.len(), arch.num_processors());
        assert!(cmp.pre.total_offered > 0.0);
        assert!(cmp.post.total_offered > 0.0);
        // The timeout policy actually triggers timeouts under contention.
        let _ = cmp
            .timeout
            .per_queue
            .iter()
            .map(|q| q.lost_timeout)
            .sum::<f64>();
    }

    #[test]
    fn warm_budget_chain_agrees_with_cold_sizing() {
        let arch = templates::figure1();
        let cfg = SizingConfig::small();
        let mut ctx = SolveContext::new(&arch, &cfg);
        for (i, budget) in [14usize, 18, 22, 30, 22, 14].into_iter().enumerate() {
            let warm = ctx.size_buffers(budget).unwrap();
            let cold = size_buffers(&arch, budget, &cfg).unwrap();
            assert_eq!(warm.budget_row_relaxed, cold.budget_row_relaxed);
            assert_eq!(warm.lp_engine, cold.lp_engine, "budget {budget}");
            assert!(
                (warm.predicted_loss_rate - cold.predicted_loss_rate).abs()
                    <= 1e-9 * (1.0 + cold.predicted_loss_rate.abs()),
                "budget {budget}: warm {} vs cold {}",
                warm.predicted_loss_rate,
                cold.predicted_loss_rate
            );
            assert_eq!(warm.allocation.total(), budget);
            if i == 0 {
                // The chain's first point is the cold path verbatim.
                assert_eq!(warm.allocation.as_slice(), cold.allocation.as_slice());
                assert_eq!(warm.lp_iterations, cold.lp_iterations);
            }
        }
    }

    #[test]
    fn warm_load_chain_agrees_with_cold_sizing() {
        let arch = templates::amba();
        let cfg = SizingConfig::small();
        let mut ctx = SolveContext::new(&arch, &cfg);
        for factor in [0.5, 0.8, 1.0, 1.3, 0.9] {
            let scaled = arch.scale_rates(factor, 1.0).unwrap();
            let warm = ctx.size_buffers_scaled(&scaled, factor, 16).unwrap();
            let cold = size_buffers(&scaled, 16, &cfg).unwrap();
            assert_eq!(warm.budget_row_relaxed, cold.budget_row_relaxed);
            assert!(
                (warm.predicted_loss_rate - cold.predicted_loss_rate).abs()
                    <= 1e-9 * (1.0 + cold.predicted_loss_rate.abs()),
                "factor {factor}: warm {} vs cold {}",
                warm.predicted_loss_rate,
                cold.predicted_loss_rate
            );
            assert_eq!(warm.allocation.total(), 16);
        }
    }

    #[test]
    fn warm_chain_survives_a_relaxed_budget_point() {
        // An overloaded single queue at budget 1 forces the budget-row
        // relaxation; the chain must answer like the cold path there AND
        // keep warm-starting correctly afterwards.
        let mut b = ArchitectureBuilder::new();
        let bus = b.add_bus("bus", 1.0).unwrap();
        let p = b.add_processor("p", &[bus], 1.0).unwrap();
        b.add_flow(p, FlowTarget::Bus(bus), 3.0).unwrap();
        let arch = b.build().unwrap();
        let cfg = SizingConfig::small();
        let mut ctx = SolveContext::new(&arch, &cfg);
        for budget in [40usize, 1, 40] {
            let warm = ctx.size_buffers(budget).unwrap();
            let cold = size_buffers(&arch, budget, &cfg).unwrap();
            assert_eq!(warm.budget_row_relaxed, cold.budget_row_relaxed);
            // The relaxed point routes through the warm chain's cold
            // `Infeasible` fallback; the reported engine must still be
            // the one that actually solved (the solution's own tag).
            assert_eq!(warm.lp_engine, cold.lp_engine, "budget {budget}");
            assert!(
                (warm.predicted_loss_rate - cold.predicted_loss_rate).abs()
                    <= 1e-9 * (1.0 + cold.predicted_loss_rate.abs()),
                "budget {budget}: warm {} vs cold {}",
                warm.predicted_loss_rate,
                cold.predicted_loss_rate
            );
        }
    }

    #[test]
    fn evaluate_policies_sized_matches_the_joint_entry_point() {
        let arch = templates::amba();
        let cfg = PipelineConfig::small();
        let joint = evaluate_policies(&arch, 16, &cfg).unwrap();
        let outcome = size_buffers(&arch, 16, &cfg.sizing).unwrap();
        let split = evaluate_policies_sized(&arch, 16, &cfg, outcome, &SerialPool).unwrap();
        assert_eq!(joint.pre, split.pre);
        assert_eq!(joint.post, split.post);
        assert_eq!(joint.timeout, split.timeout);
    }

    #[test]
    fn budget_zero_is_rejected_identically_cold_and_warm() {
        let arch = templates::amba();
        let cfg = SizingConfig::small();

        // Fresh context: the very first solve must refuse budget 0 with
        // the same error the warm path raises — not fall through to a
        // deeper layer with a different shape.
        let mut fresh = SolveContext::new(&arch, &cfg);
        let cold_err = match fresh.size_buffers(0) {
            Err(CoreError::BadConfig(msg)) => msg,
            other => panic!("fresh context budget 0: expected BadConfig, got {other:?}"),
        };
        // The refusal must not have half-initialized the chain: a valid
        // follow-up solve is still bit-identical to the cold path.
        let after = fresh.size_buffers(16).unwrap();
        let direct = size_buffers(&arch, 16, &cfg).unwrap();
        assert_eq!(after.allocation.as_slice(), direct.allocation.as_slice());
        assert_eq!(after.lp_iterations, direct.lp_iterations);

        // Warmed context (state exists): same error, byte for byte.
        let mut warmed = SolveContext::new(&arch, &cfg);
        warmed.size_buffers(16).unwrap();
        let warm_err = match warmed.size_buffers(0) {
            Err(CoreError::BadConfig(msg)) => msg,
            other => panic!("warm context budget 0: expected BadConfig, got {other:?}"),
        };
        assert_eq!(cold_err, warm_err);

        // And the standalone entry point agrees too.
        match size_buffers(&arch, 0, &cfg) {
            Err(CoreError::BadConfig(msg)) => assert_eq!(msg, cold_err),
            other => panic!("size_buffers budget 0: expected BadConfig, got {other:?}"),
        }
    }

    #[test]
    fn reported_engine_matches_the_solving_engine_for_all_engines() {
        let arch = templates::figure1();
        for engine in socbuf_lp::LpEngine::ALL {
            let cfg = SizingConfig {
                engine,
                ..SizingConfig::small()
            };
            let cold = size_buffers(&arch, 18, &cfg).unwrap();
            assert_eq!(cold.lp_engine, engine, "cold path must tag {engine}");
            let mut ctx = SolveContext::new(&arch, &cfg);
            for budget in [18usize, 24, 18] {
                let warm = ctx.size_buffers(budget).unwrap();
                assert_eq!(warm.lp_engine, engine, "warm chain must tag {engine}");
            }
        }
    }

    #[test]
    fn engine_choice_is_transparent_on_plain_architectures() {
        // Legacy and Actors agree per-seed, so the full pipeline output
        // must be identical whichever engine executes it.
        let arch = templates::figure1();
        let mut cfg = PipelineConfig::small();
        cfg.sim_engine = SimEngine::Legacy;
        let legacy = evaluate_policies(&arch, 22, &cfg).unwrap();
        cfg.sim_engine = SimEngine::Actors;
        let actors = evaluate_policies(&arch, 22, &cfg).unwrap();
        cfg.sim_engine = SimEngine::Auto;
        let auto = evaluate_policies(&arch, 22, &cfg).unwrap();
        assert_eq!(legacy.pre, actors.pre);
        assert_eq!(legacy.post, actors.post);
        assert_eq!(legacy.timeout, actors.timeout);
        assert_eq!(legacy.pre, auto.pre);
    }

    #[test]
    fn pipeline_runs_extended_architectures_through_auto() {
        // Bursty traffic + priority arbitration: the legacy engine
        // refuses this architecture, but the default Auto engine routes
        // it to the actor core and the whole sizing loop still runs.
        use socbuf_soc::{BusArbitration, TrafficShape};
        let mut b = ArchitectureBuilder::new();
        let bus = b
            .add_bus_with_arbitration("bus", 1.0, BusArbitration::Priority)
            .unwrap();
        let hot = b.add_processor("hot", &[bus], 1.0).unwrap();
        let cold = b.add_processor("cold", &[bus], 1.0).unwrap();
        b.add_flow_shaped(
            hot,
            FlowTarget::Bus(bus),
            0.6,
            TrafficShape::Burst { batch: 4 },
        )
        .unwrap();
        b.add_flow(cold, FlowTarget::Bus(bus), 0.2).unwrap();
        let arch = b.build().unwrap();
        assert!(arch.uses_extended_semantics());
        let cmp = evaluate_policies(&arch, 12, &PipelineConfig::small()).unwrap();
        assert!(cmp.pre.total_offered > 0.0);
        assert!(cmp.post.total_offered > 0.0);
        assert_eq!(cmp.outcome.allocation.total(), 12);
    }

    #[test]
    fn config_validation() {
        let arch = templates::amba();
        let mut cfg = PipelineConfig::small();
        cfg.replications = 0;
        assert!(evaluate_policies(&arch, 10, &cfg).is_err());
        let mut cfg = PipelineConfig::small();
        cfg.warmup = cfg.horizon;
        assert!(evaluate_policies(&arch, 10, &cfg).is_err());
    }

    #[test]
    fn improvement_metrics_are_well_defined() {
        let arch = templates::amba();
        let cmp = evaluate_policies(&arch, 30, &PipelineConfig::small()).unwrap();
        let a = cmp.improvement_vs_pre();
        let b = cmp.improvement_vs_timeout();
        assert!(a.is_finite() && b.is_finite());
        assert!(a <= 1.0 && b <= 1.0);
    }
}
