//! Translating occupation measures into integer buffer lengths — the
//! paper's step of *"translating the state action pair probabilities
//! into buffer space requirements by using the K-switching policy"*.
//!
//! Each queue's stationary occupancy marginal (under the optimal
//! K-switching policy) yields a *requirement*: the smallest buffer
//! length covering the configured quantile of the occupancy law. The
//! finite pool is then apportioned to the requirements with the
//! largest-remainder method, so the allocation sums to the budget
//! exactly — the integer-feasibility step the LP cannot do by itself.

use socbuf_markov::BirthDeath;
use socbuf_soc::alloc::apportion_with_keys;
use socbuf_soc::{Architecture, BufferAllocation};

use crate::formulation::{SizingConfig, SizingSolution};
use crate::CoreError;

/// The translated solution: an exact-budget integer allocation plus the
/// effort curves for the simulator's K-switching arbiter.
#[derive(Debug, Clone)]
pub struct Translation {
    /// Integer buffer units per queue, summing to the budget.
    pub allocation: BufferAllocation,
    /// Quantile-based raw requirements per queue (before apportionment).
    pub requirements: Vec<usize>,
    /// `efforts[q][n]` — expected service effort of queue `q` at
    /// occupancy `n`, directly usable as
    /// [`socbuf_sim::Arbiter::WeightedEffort`] curves.
    pub efforts: Vec<Vec<f64>>,
}

/// Translates `solution` into an exact `budget`-unit allocation.
///
/// Queues with traffic always receive at least one unit when the budget
/// allows (a zero-length buffer loses everything); the remainder is
/// split in proportion to the quantile requirements.
///
/// # Errors
///
/// [`CoreError::BadConfig`] if the solution's shape does not match the
/// architecture.
pub fn translate(
    arch: &Architecture,
    solution: &SizingSolution,
    budget: usize,
    config: &SizingConfig,
) -> Result<Translation, CoreError> {
    let nq = arch.num_queues();
    if solution.marginals.len() != nq {
        return Err(CoreError::BadConfig(format!(
            "solution covers {} queues, architecture has {nq}",
            solution.marginals.len()
        )));
    }

    // The joint LP couples queues on a bus only *in expectation*, so each
    // block's marginal assumes it owns the whole bus whenever it chooses
    // to serve — optimistic tails. Requirements therefore come from a
    // mean-field-corrected birth–death chain per queue: its service rate
    // is discounted by the bus capacity the *other* queues' optimal
    // policies consume. (The paper closes the same gap empirically by
    // re-simulating with the new buffer lengths.)
    let expected_effort: Vec<f64> = solution
        .marginals
        .iter()
        .zip(&solution.efforts)
        .map(|(marg, eff)| marg.iter().zip(eff).map(|(m, e)| m * e).sum())
        .collect();
    let mut requirements = Vec::with_capacity(nq);
    for q in arch.queues() {
        let qi = q.id.index();
        let others: f64 = arch
            .bus_queue_ids(q.bus)
            .iter()
            .filter(|id| id.index() != qi)
            .map(|id| expected_effort[id.index()])
            .sum();
        let mu_bus = arch.bus(q.bus).service_rate();
        let avail = (1.0 - others).clamp(0.05, 1.0);
        let corrected = contended_marginal(q.offered_rate, mu_bus * avail, &solution.efforts[qi]);
        requirements.push(quantile_requirement(&corrected, config.quantile));
    }

    // Queue names key the apportionment's remainder tie-breaks: they
    // are unique and survive declaration reordering, so the allocation
    // is permutation-equivariant (the metamorphic suite pins this) —
    // positional tie-breaking would hand the contested unit to whichever
    // tied queue happened to be declared first.
    let keys: Vec<String> = arch.queue_ids().map(|q| arch.queue_name(q)).collect();
    let units = if budget >= nq {
        // One unit of floor per queue, remainder by (requirement − 1).
        let extra_shares: Vec<f64> = requirements
            .iter()
            .map(|&r| (r.saturating_sub(1)) as f64)
            .collect();
        let extra = apportion_with_keys(budget - nq, &extra_shares, &keys);
        extra.into_iter().map(|e| e + 1).collect()
    } else {
        apportion_with_keys(
            budget,
            &requirements.iter().map(|&r| r as f64).collect::<Vec<_>>(),
            &keys,
        )
    };

    let allocation = BufferAllocation::new(arch, units)?;
    debug_assert_eq!(allocation.total(), budget);

    // Re-index the effort curves from the LP's model states (0..=N) onto
    // each queue's *allocated* capacity: the K-switching threshold is a
    // fraction of the buffer, so a queue nearing its (possibly small)
    // real capacity must reach the same urgency the model assigned to
    // near-full model states. Without this, a 3-unit buffer would
    // overflow long before its priority ever rose.
    let efforts: Vec<Vec<f64>> = allocation
        .as_slice()
        .iter()
        .zip(&solution.efforts)
        .map(|(&cap, curve)| {
            let n_model = curve.len() - 1;
            if cap == 0 || n_model == 0 {
                return vec![0.0];
            }
            (0..=cap)
                .map(|n| {
                    let idx = ((n as f64 / cap as f64) * n_model as f64).round() as usize;
                    curve[idx.min(n_model)]
                })
                .collect()
        })
        .collect();

    Ok(Translation {
        allocation,
        requirements,
        efforts,
    })
}

/// Stationary occupancy law of one queue under its optimal effort curve
/// with a contention-discounted service rate: birth λ, death
/// `effort(n)·μ_eff` (floored so the chain stays well-defined where the
/// policy idles).
fn contended_marginal(lambda: f64, mu_eff: f64, efforts: &[f64]) -> Vec<f64> {
    let n = efforts.len().saturating_sub(1).max(1);
    let birth = vec![lambda.max(1e-9); n];
    let death: Vec<f64> = (1..=n)
        .map(|state| (efforts[state.min(efforts.len() - 1)] * mu_eff).max(1e-9))
        .collect();
    BirthDeath::new(birth, death)
        .expect("positive rates by construction")
        .stationary()
        .expect("birth-death stationary always exists")
}

/// Smallest buffer length whose cumulative stationary probability
/// reaches `quantile` (at least 1).
fn quantile_requirement(marginal: &[f64], quantile: f64) -> usize {
    let mut cdf = 0.0;
    for (n, p) in marginal.iter().enumerate() {
        cdf += p;
        if cdf >= quantile {
            return n.max(1);
        }
    }
    marginal.len().saturating_sub(1).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulation::SizingLp;
    use socbuf_soc::{ArchitectureBuilder, FlowTarget};

    fn hot_cold_arch() -> Architecture {
        let mut b = ArchitectureBuilder::new();
        let bus = b.add_bus("bus", 1.0).unwrap();
        let hot = b.add_processor("hot", &[bus], 1.0).unwrap();
        let cold = b.add_processor("cold", &[bus], 1.0).unwrap();
        b.add_flow(hot, FlowTarget::Bus(bus), 0.60).unwrap();
        b.add_flow(cold, FlowTarget::Bus(bus), 0.08).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn quantile_requirement_basics() {
        assert_eq!(quantile_requirement(&[0.99, 0.01], 0.98), 1);
        assert_eq!(quantile_requirement(&[0.5, 0.3, 0.2], 0.98), 2);
        assert_eq!(quantile_requirement(&[0.5, 0.5], 0.5), 1);
        // Degenerate empty-ish marginals still give at least 1.
        assert_eq!(quantile_requirement(&[1.0], 0.9), 1);
    }

    #[test]
    fn allocation_sums_to_budget_and_favors_hot_queue() {
        // Both engines: the hot-queue preference must not depend on
        // which optimal vertex the LP lands on (the effort-curve dust
        // filter in `SizingLp::interpret` is what guarantees this).
        let arch = hot_cold_arch();
        for engine in [socbuf_lp::LpEngine::Revised, socbuf_lp::LpEngine::Tableau] {
            let cfg = SizingConfig {
                engine,
                ..SizingConfig::small()
            };
            for budget in [6usize, 16, 64] {
                let sol = SizingLp::build(&arch, budget, &cfg)
                    .unwrap()
                    .solve()
                    .unwrap();
                let tr = translate(&arch, &sol, budget, &cfg).unwrap();
                assert_eq!(tr.allocation.total(), budget);
                let units = tr.allocation.as_slice();
                assert!(
                    units[0] >= units[1],
                    "hot queue must get at least as much under {engine}: \
                     {units:?} (budget {budget})"
                );
                assert!(units.iter().all(|&u| u >= 1), "{units:?}");
            }
        }
    }

    #[test]
    fn starvation_budget_still_apportions() {
        let arch = hot_cold_arch();
        let cfg = SizingConfig::small();
        let sol = SizingLp::build(&arch, 1, &cfg).unwrap().solve().unwrap();
        let tr = translate(&arch, &sol, 1, &cfg).unwrap();
        assert_eq!(tr.allocation.total(), 1);
    }

    #[test]
    fn effort_curves_cover_the_allocated_capacity() {
        let arch = hot_cold_arch();
        let cfg = SizingConfig::small();
        let sol = SizingLp::build(&arch, 20, &cfg).unwrap().solve().unwrap();
        let tr = translate(&arch, &sol, 20, &cfg).unwrap();
        for (q, curve) in tr.efforts.iter().enumerate() {
            let cap = tr.allocation.as_slice()[q];
            assert_eq!(curve.len(), cap + 1, "curve spans the real buffer");
            assert_eq!(curve[0], 0.0, "no effort on an empty queue");
            assert!(curve.iter().all(|&e| (0.0..=1.0 + 1e-9).contains(&e)));
            // Near-full states carry the model's near-full urgency.
            assert!(curve[cap] >= curve[1] - 1e-9);
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let arch = hot_cold_arch();
        let cfg = SizingConfig::small();
        let mut sol = SizingLp::build(&arch, 10, &cfg).unwrap().solve().unwrap();
        sol.marginals.pop();
        assert!(translate(&arch, &sol, 10, &cfg).is_err());
    }
}
