//! The **unsplit** (bridge-coupled) steady-state system — the nonlinear
//! formulation the paper could not solve with Matlab 6.1, constructed
//! explicitly so the failure mode is reproducible.
//!
//! Without a bridge buffer, a transfer from bus X to bus Y occupies both
//! buses at once: the effective service rate of an X-side queue whose
//! traffic crosses the bridge is `μ_X · share_X · A_Y`, where `A_Y` is
//! the availability of the *downstream* bus. `share_X` depends on the
//! X-side utilizations and `A_Y` on the Y-side ones, so every crossing
//! multiplies unknowns from two different subsystems — the quadratic
//! terms of the paper's Section 2 ("the equality constraints and the
//! cost function have quadratic terms ... an equation may have more than
//! one quadratic term").
//!
//! [`CoupledSystem::solve_fixed_point`] runs the natural Picard
//! iteration on these equations, with optional damping. On bridge-free
//! architectures the system degenerates to independent M/M/1/K fixed
//! points and converges immediately; on a **saturated** bridge ring
//! (the paper's Figure 1 has the cycle `b → f → g → b`; push its loads
//! toward the ring's capacity and the availability products start
//! overshooting) the undamped iteration oscillates without settling —
//! which is exactly the observation that motivates the split-and-buffer
//! methodology implemented in [`crate::formulation`]. At Figure 1's
//! nominal loads the coupling is weak enough for even the naive
//! iteration to settle; the tests below pin both regimes.

use socbuf_markov::MM1K;
use socbuf_soc::{Architecture, BufferAllocation, Client};

use crate::CoreError;

/// One queue of the coupled system (processor queues only: with no
/// bridge buffers, crossing traffic is handed bus-to-bus directly).
#[derive(Debug, Clone)]
struct CoupledQueue {
    /// Nominal arrival rate.
    lambda: f64,
    /// Raw service rate of the owning bus.
    mu: f64,
    /// Owning bus index.
    bus: usize,
    /// Buffer capacity.
    cap: usize,
    /// Buses other than the owner whose availability gates this queue's
    /// service (one entry per downstream bus on its flows' routes). Each
    /// entry contributes one product of cross-subsystem unknowns — a
    /// quadratic term.
    downstream_buses: Vec<usize>,
}

/// The assembled nonlinear system.
#[derive(Debug, Clone)]
pub struct CoupledSystem {
    queues: Vec<CoupledQueue>,
    num_buses: usize,
}

/// Fixed point returned by [`CoupledSystem::solve_fixed_point`].
#[derive(Debug, Clone)]
pub struct CoupledSolution {
    /// Blocking probability per modelled queue.
    pub blocking: Vec<f64>,
    /// Bus-time fraction each queue consumes.
    pub utilization: Vec<f64>,
    /// Picard iterations used.
    pub iterations: usize,
    /// Residual trace (max |Δ| per iteration) — lets callers inspect
    /// oscillation/divergence.
    pub residuals: Vec<f64>,
}

impl CoupledSystem {
    /// Builds the unsplit system for `arch`. Processor queues take their
    /// capacities from `alloc`; bridge-buffer capacities are ignored
    /// (the whole point: there are no bridge buffers before insertion).
    pub fn build(arch: &Architecture, alloc: &BufferAllocation) -> Self {
        let mut queues = Vec::new();
        for q in arch.queues() {
            if !matches!(q.client, Client::Processor(_)) {
                continue;
            }
            // Union of downstream buses across this queue's flows.
            let mut downstream: Vec<usize> = Vec::new();
            for &f in &q.flows {
                let route = arch.route(f);
                for bus in route.buses.iter().skip(1) {
                    if bus.index() != q.bus.index() && !downstream.contains(&bus.index()) {
                        downstream.push(bus.index());
                    }
                }
            }
            queues.push(CoupledQueue {
                lambda: q.offered_rate,
                mu: arch.bus(q.bus).service_rate(),
                bus: q.bus.index(),
                cap: alloc.units(q.id).max(1),
                downstream_buses: downstream,
            });
        }
        CoupledSystem {
            queues,
            num_buses: arch.num_buses(),
        }
    }

    /// Number of modelled (processor) queues.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Number of quadratic (cross-bus product) terms in the system — the
    /// quantity the paper points to as the source of nonlinearity. Zero
    /// iff the architecture is bridge-free (all routes single-bus).
    pub fn quadratic_term_count(&self) -> usize {
        self.queues.iter().map(|q| q.downstream_buses.len()).sum()
    }

    /// Runs the Picard iteration `x ← (1−d)·x + d·F(x)` with damping
    /// `d ∈ (0, 1]` (`1.0` = undamped, the naive solver).
    ///
    /// # Errors
    ///
    /// [`CoreError::CoupledDiverged`] when the residual does not drop
    /// below `tol` within `max_iterations` — the reproduction of the
    /// paper's "we were not able to get solutions".
    pub fn solve_fixed_point(
        &self,
        damping: f64,
        max_iterations: usize,
        tol: f64,
    ) -> Result<CoupledSolution, CoreError> {
        assert!(
            (0.0..=1.0).contains(&damping) && damping > 0.0,
            "damping in (0,1]"
        );
        let nq = self.queues.len();
        let mut blocking = vec![0.0_f64; nq];
        let mut utilization = vec![0.0_f64; nq];
        let mut residuals = Vec::new();

        for iter in 1..=max_iterations {
            // Bus availabilities from current utilizations.
            let mut bus_load = vec![0.0_f64; self.num_buses];
            for (q, u) in self.queues.iter().zip(&utilization) {
                bus_load[q.bus] += u;
            }
            let avail: Vec<f64> = bus_load.iter().map(|l| (1.0 - l).max(0.0)).collect();

            let mut residual = 0.0_f64;
            let mut new_blocking = blocking.clone();
            let mut new_util = utilization.clone();
            for (i, q) in self.queues.iter().enumerate() {
                // Service share left on the own bus once the *other*
                // queues' demands are honoured.
                let others = bus_load[q.bus] - utilization[i];
                let mut mu_eff = q.mu * (1.0 - others).max(1e-9);
                // Bridge products: downstream availability gates service.
                for &db in &q.downstream_buses {
                    mu_eff *= avail[db].max(1e-9);
                }
                let model =
                    MM1K::new(q.lambda, mu_eff, q.cap).expect("positive rates by construction");
                let b_new = model.blocking_probability();
                let u_new = (q.lambda * (1.0 - b_new) / q.mu).min(1.0);
                residual = residual
                    .max((b_new - blocking[i]).abs())
                    .max((u_new - utilization[i]).abs());
                new_blocking[i] = (1.0 - damping) * blocking[i] + damping * b_new;
                new_util[i] = (1.0 - damping) * utilization[i] + damping * u_new;
            }
            blocking = new_blocking;
            utilization = new_util;
            residuals.push(residual);
            if residual < tol {
                return Ok(CoupledSolution {
                    blocking,
                    utilization,
                    iterations: iter,
                    residuals,
                });
            }
        }
        Err(CoreError::CoupledDiverged {
            iterations: max_iterations,
            residual: *residuals.last().unwrap_or(&f64::INFINITY),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socbuf_soc::{templates, ArchitectureBuilder, FlowTarget};

    #[test]
    fn bridge_free_system_is_linear_and_converges() {
        let mut b = ArchitectureBuilder::new();
        let bus = b.add_bus("bus", 1.0).unwrap();
        let p0 = b.add_processor("p0", &[bus], 1.0).unwrap();
        let p1 = b.add_processor("p1", &[bus], 1.0).unwrap();
        b.add_flow(p0, FlowTarget::Bus(bus), 0.3).unwrap();
        b.add_flow(p1, FlowTarget::Bus(bus), 0.2).unwrap();
        let arch = b.build().unwrap();
        let alloc = BufferAllocation::uniform(&arch, 8);
        let sys = CoupledSystem::build(&arch, &alloc);
        assert_eq!(sys.quadratic_term_count(), 0);
        let sol = sys.solve_fixed_point(1.0, 200, 1e-10).unwrap();
        assert!(sol.iterations < 200);
        assert!(sol.blocking.iter().all(|b| (0.0..=1.0).contains(b)));
    }

    #[test]
    fn figure1_has_quadratic_terms() {
        let arch = templates::figure1();
        let alloc = BufferAllocation::uniform(&arch, 22);
        let sys = CoupledSystem::build(&arch, &alloc);
        // p2→p5 crosses f and g; p5→p2 crosses b; p3→p4 crosses d.
        assert!(
            sys.quadratic_term_count() >= 4,
            "expected ≥ 4 products, got {}",
            sys.quadratic_term_count()
        );
    }

    #[test]
    fn single_queue_fixed_point_matches_mm1k() {
        let mut b = ArchitectureBuilder::new();
        let bus = b.add_bus("bus", 1.0).unwrap();
        let p = b.add_processor("p", &[bus], 1.0).unwrap();
        b.add_flow(p, FlowTarget::Bus(bus), 0.6).unwrap();
        let arch = b.build().unwrap();
        let alloc = BufferAllocation::uniform(&arch, 5);
        let sys = CoupledSystem::build(&arch, &alloc);
        let sol = sys.solve_fixed_point(0.5, 500, 1e-12).unwrap();
        let oracle = MM1K::new(0.6, 1.0, 5).unwrap();
        // Self-consistency: utilization feedback shifts μ_eff, so the
        // fixed point is the *contended* queue, not the bare M/M/1/K; it
        // must still be close for a single queue at moderate load.
        assert!((sol.blocking[0] - oracle.blocking_probability()).abs() < 0.15);
    }

    #[test]
    fn damping_rescues_what_naive_iteration_cannot() {
        // A saturated bridge ring (the paper's b → f → g → b cycle, made
        // hot): the undamped Picard iteration keeps overshooting the
        // availability products; heavy damping settles.
        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 0.7).unwrap();
        let y = b.add_bus("y", 0.7).unwrap();
        let z = b.add_bus("z", 0.7).unwrap();
        let px = b.add_processor("px", &[x], 1.0).unwrap();
        let py = b.add_processor("py", &[y], 1.0).unwrap();
        let pz = b.add_processor("pz", &[z], 1.0).unwrap();
        b.add_bridge("xy", x, y).unwrap();
        b.add_bridge("yz", y, z).unwrap();
        b.add_bridge("zx", z, x).unwrap();
        b.add_flow(px, FlowTarget::Processor(py), 0.6).unwrap();
        b.add_flow(py, FlowTarget::Processor(pz), 0.6).unwrap();
        b.add_flow(pz, FlowTarget::Processor(px), 0.6).unwrap();
        let arch = b.build().unwrap();
        let alloc = BufferAllocation::uniform(&arch, 12);
        let sys = CoupledSystem::build(&arch, &alloc);
        assert!(sys.quadratic_term_count() >= 3);

        let naive = sys.solve_fixed_point(1.0, 60, 1e-9);
        let damped = sys.solve_fixed_point(0.2, 2000, 1e-9);
        match (&naive, &damped) {
            (Err(CoreError::CoupledDiverged { .. }), Ok(_)) => {} // the expected story
            (Ok(n), Ok(d)) => {
                // If the naive iteration happens to settle, damping must
                // not be slower in residual terms at the same iteration
                // count — i.e. the system is at least *hard* for the
                // naive solver.
                assert!(
                    n.iterations >= d.iterations / 10,
                    "naive {} vs damped {}",
                    n.iterations,
                    d.iterations
                );
            }
            (Err(e), _) => {
                // Naive diverged (damped may or may not have settled):
                // still the paper's observation.
                assert!(matches!(e, CoreError::CoupledDiverged { .. }));
            }
            (Ok(_), Err(e)) => {
                panic!("damped solve failed where the naive one settled: {e}");
            }
        }
    }

    #[test]
    fn nominal_figure1_converges_even_undamped() {
        // Honesty pin: at the paper's nominal loads the figure1 ring's
        // coupling is weak and even the naive iteration settles fast.
        // The methodology's motivation is the *saturated* regime below,
        // not ring topology alone.
        let arch = templates::figure1();
        let alloc = BufferAllocation::uniform(&arch, 22);
        let sys = CoupledSystem::build(&arch, &alloc);
        let sol = sys.solve_fixed_point(1.0, 100, 1e-10).unwrap();
        assert!(sol.iterations <= 20, "took {} iterations", sol.iterations);
    }

    #[test]
    fn undamped_iteration_fails_on_the_saturated_figure1_ring() {
        // The paper's motivating failure, previously asserted in doc
        // comments only: push figure1's own bridge ring (b → f → g → b)
        // toward saturation (λ × 4, μ unchanged) and the undamped
        // Picard iteration oscillates without ever meeting the
        // tolerance, while damping rescues the very same system.
        let arch = templates::figure1()
            .scale_rates(4.0, 1.0)
            .expect("valid scaling");
        let alloc = BufferAllocation::uniform(&arch, 22);
        let sys = CoupledSystem::build(&arch, &alloc);
        assert!(sys.quadratic_term_count() >= 4, "ring must stay coupled");

        match sys.solve_fixed_point(1.0, 200, 1e-10) {
            Err(CoreError::CoupledDiverged {
                iterations,
                residual,
            }) => {
                assert_eq!(iterations, 200);
                // Oscillation, not numerical explosion: the residual
                // plateaus at a finite level orders of magnitude above
                // the tolerance.
                assert!(residual.is_finite());
                assert!(residual > 1e-7, "residual {residual} nearly converged");
            }
            Ok(sol) => panic!(
                "undamped iteration settled in {} iterations on the saturated ring",
                sol.iterations
            ),
            Err(e) => panic!("unexpected error {e}"),
        }

        // Damping solves what the naive iteration cannot.
        let damped = sys
            .solve_fixed_point(0.2, 5000, 1e-10)
            .expect("damped iteration converges on the saturated ring");
        assert!(damped.blocking.iter().all(|b| (0.0..=1.0).contains(b)));
    }

    #[test]
    fn bridge_free_architecture_converges_undamped_at_the_same_load() {
        // The control arm: comparable per-bus pressure but no bridges →
        // no cross-subsystem products → the naive iteration converges.
        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let y = b.add_bus("y", 0.6).unwrap();
        let px = b.add_processor("px", &[x], 1.0).unwrap();
        let qx = b.add_processor("qx", &[x], 1.0).unwrap();
        let py = b.add_processor("py", &[y], 1.0).unwrap();
        b.add_flow(px, FlowTarget::Bus(x), 0.60).unwrap();
        b.add_flow(qx, FlowTarget::Bus(x), 0.28).unwrap();
        b.add_flow(py, FlowTarget::Bus(y), 0.48).unwrap();
        let arch = b.build().unwrap();
        let alloc = BufferAllocation::uniform(&arch, 22);
        let sys = CoupledSystem::build(&arch, &alloc);
        assert_eq!(sys.quadratic_term_count(), 0, "no bridges, no products");
        let sol = sys
            .solve_fixed_point(1.0, 300, 1e-10)
            .expect("bridge-free system converges undamped");
        assert!(sol.iterations < 300);
        // Residuals contract once the iteration is near the fixed point.
        let tail = &sol.residuals[sol.residuals.len().saturating_sub(3)..];
        assert!(tail.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn residual_trace_is_recorded() {
        let arch = templates::figure1();
        let alloc = BufferAllocation::uniform(&arch, 22);
        let sys = CoupledSystem::build(&arch, &alloc);
        match sys.solve_fixed_point(0.3, 300, 1e-10) {
            Ok(sol) => assert_eq!(sol.residuals.len(), sol.iterations),
            Err(CoreError::CoupledDiverged { iterations, .. }) => {
                assert_eq!(iterations, 300);
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
