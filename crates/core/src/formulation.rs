//! The joint occupation-measure LP: one birth–death CTMDP block per
//! queue, all solved "in one go".
//!
//! Every queue (processor transmit buffer or bridge buffer) becomes a
//! constrained CTMDP over its occupancy `0..=N`:
//!
//! * **birth** — the queue's nominal offered rate λ (Poisson arrivals),
//! * **death** — `e·μ_bus`, where the *action* is the service-effort
//!   level `e ∈ {0, 1/(L−1), …, 1}` the bus arbiter grants this queue,
//! * **objective** — the weighted loss rate `w·λ·P(occupancy = N)`,
//! * **bus rows** — for every bus, the expected granted effort over all
//!   its queues is at most 1 (the bus serves one request at a time),
//! * **budget row** — total expected occupancy is at most
//!   `α · budget`, the LP-level image of the finite buffer pool.
//!
//! The split (`socbuf-soc::split`) is what makes the blocks *linear*:
//! bridge buffers decouple adjacent buses, so a block's rates involve
//! only its own variables. Without the split the death rates carry
//! availability factors of *other* buses — products of unknowns; see
//! [`crate::coupled`].

use socbuf_lp::{
    ExecutorHandle, LpEngine, LpProblem, Relation, RowId, Sense, SimplexOptions, VarId,
};
use socbuf_soc::split::split;
use socbuf_soc::{Architecture, Client};

use crate::CoreError;

/// Tuning knobs of the sizing formulation.
#[derive(Debug, Clone)]
pub struct SizingConfig {
    /// Per-queue occupancy cap `N` in the CTMDP blocks (states `0..=N`).
    pub state_cap: usize,
    /// Number of effort levels `L ≥ 2` (efforts `0, 1/(L−1), …, 1`).
    pub effort_levels: usize,
    /// Budget-row tightness: `Σ E[occupancy] ≤ α · budget`.
    pub alpha: f64,
    /// Occupancy quantile used by the translation step (e.g. `0.98`).
    pub quantile: f64,
    /// Per-bus expected-effort limit (1.0 = the physical bus).
    pub bus_effort_limit: f64,
    /// LP engine the joint solve runs on. Defaults to the sparse
    /// revised simplex; [`LpEngine::Tableau`] selects the dense oracle
    /// engine (what the golden-artifact cross-checks compare against).
    pub engine: LpEngine,
    /// Whether the LP layer equilibrates badly-scaled instances before
    /// solving (default ON; see [`socbuf_lp::SimplexOptions`]). Rate
    /// data in arbitrary units — service/arrival rates spanning
    /// `1e-3..1e3` — is rescaled to well-conditioned form and un-scaled
    /// at extraction; well-conditioned instances are untouched
    /// bit-for-bit. [`crate::SizingOutcome`]'s `lp_scaling` field
    /// reports what the pass measured and did.
    pub equilibrate: bool,
    /// Where [`LpEngine::Decomposed`] runs its independent per-block
    /// solves. The serial default evaluates blocks in index order on the
    /// calling thread; `socbuf-sweep` attaches its `WorkPool` here so
    /// blocks fan out. Executors change wall time, never results — the
    /// other engines ignore this entirely.
    pub executor: ExecutorHandle,
}

impl Default for SizingConfig {
    fn default() -> Self {
        SizingConfig {
            state_cap: 20,
            effort_levels: 4,
            alpha: 0.5,
            quantile: 0.98,
            bus_effort_limit: 1.0,
            engine: LpEngine::default(),
            equilibrate: true,
            executor: ExecutorHandle::serial(),
        }
    }
}

impl SizingConfig {
    /// A small configuration for unit tests and doc examples (tiny state
    /// spaces solve in milliseconds even in debug builds).
    pub fn small() -> Self {
        SizingConfig {
            state_cap: 8,
            effort_levels: 3,
            ..SizingConfig::default()
        }
    }

    fn validate(&self) -> Result<(), CoreError> {
        if self.state_cap < 2 {
            return Err(CoreError::BadConfig("state_cap must be ≥ 2".into()));
        }
        if self.effort_levels < 2 {
            return Err(CoreError::BadConfig("effort_levels must be ≥ 2".into()));
        }
        if !(0.0 < self.alpha && self.alpha <= 1.0) {
            return Err(CoreError::BadConfig(format!(
                "alpha must lie in (0, 1], got {}",
                self.alpha
            )));
        }
        if !(0.5 <= self.quantile && self.quantile < 1.0) {
            return Err(CoreError::BadConfig(format!(
                "quantile must lie in [0.5, 1), got {}",
                self.quantile
            )));
        }
        if self.bus_effort_limit <= 0.0 {
            return Err(CoreError::BadConfig(
                "bus_effort_limit must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// The assembled joint LP plus the bookkeeping to interpret its solution.
#[derive(Debug, Clone)]
pub struct SizingLp {
    lp: LpProblem,
    /// `vars[q][n][a]` — occupation variables. State 0 has one action.
    vars: Vec<Vec<Vec<VarId>>>,
    efforts: Vec<f64>,
    bus_rows: Vec<RowId>,
    budget_row: Option<RowId>,
    /// `cut_rows[q][j]` — the level-crossing row between states `j` and
    /// `j+1` of queue `q`; its birth-side coefficients carry λ, which is
    /// what a load-factor retarget rewrites in place.
    cut_rows: Vec<Vec<RowId>>,
    weights: Vec<f64>,
    lambdas: Vec<f64>,
    state_cap: usize,
    alpha: f64,
    engine: LpEngine,
    equilibrate: bool,
    executor: ExecutorHandle,
}

/// Solution of the joint LP in queue-level terms.
#[derive(Debug, Clone)]
pub struct SizingSolution {
    /// `occupation[q][n][a]` (each block sums to 1).
    pub occupation: Vec<Vec<Vec<f64>>>,
    /// Stationary occupancy marginal per queue: `marginals[q][n]`.
    pub marginals: Vec<Vec<f64>>,
    /// Expected service effort per queue and occupancy (the K-switching
    /// policy curve fed to the simulator's arbiter).
    pub efforts: Vec<Vec<f64>>,
    /// Weighted total loss rate at the optimum (the LP objective).
    pub loss_rate: f64,
    /// Per-queue unweighted loss-rate estimates `λ_q · P(full)`.
    pub queue_loss_rates: Vec<f64>,
    /// Shadow price of the global budget row (`∂ loss / ∂ (α·budget)`;
    /// ≤ 0, and 0 when the budget row was dropped or slack).
    pub budget_shadow_price: f64,
    /// Shadow prices of the per-bus effort rows.
    pub bus_shadow_prices: Vec<f64>,
    /// `true` if the budget row had to be dropped to restore feasibility
    /// (the integer budget is still enforced by the translation step).
    pub budget_row_relaxed: bool,
    /// Simplex pivots used.
    pub lp_iterations: usize,
    /// Engine that produced the solution, as reported by the LP layer
    /// itself ([`socbuf_lp::LpSolution::engine`]) — the one source of
    /// truth every outcome field derives from. The pipeline used to
    /// report the *configured* engine in some paths and the solving
    /// LP's engine in others; routing both through the solution keeps
    /// them identical by construction (including across the warm
    /// chain's cold `Infeasible` fallback, which re-solves through a
    /// freshly built LP).
    pub lp_engine: socbuf_lp::LpEngine,
    /// What the LP equilibration pass measured and did (condition
    /// estimate before/after, and whether scaling was applied).
    pub lp_scaling: socbuf_lp::ScalingStats,
}

impl SizingLp {
    /// Builds the joint LP for `arch` with a total buffer budget of
    /// `budget` units.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadConfig`] for invalid configs or a zero budget.
    pub fn build(
        arch: &Architecture,
        budget: usize,
        config: &SizingConfig,
    ) -> Result<SizingLp, CoreError> {
        config.validate()?;
        if budget == 0 {
            return Err(CoreError::BadConfig("budget must be positive".into()));
        }
        // The split certifies the block structure; the LP below relies on
        // it (bridge buffers are independent blocks on their own buses).
        let parts = split(arch);
        debug_assert!(!parts.subsystems.is_empty());

        let n = config.state_cap;
        let levels = config.effort_levels;
        let efforts: Vec<f64> = (0..levels)
            .map(|a| a as f64 / (levels - 1) as f64)
            .collect();

        let mut lp = LpProblem::new(Sense::Minimize);
        let mut vars: Vec<Vec<Vec<VarId>>> = Vec::with_capacity(arch.num_queues());
        let mut cut_rows: Vec<Vec<RowId>> = Vec::with_capacity(arch.num_queues());
        let mut weights = Vec::with_capacity(arch.num_queues());
        let mut lambdas = Vec::with_capacity(arch.num_queues());

        for q in arch.queues() {
            let lambda = q.offered_rate;
            let mu = arch.bus(q.bus).service_rate();
            let w = queue_weight(arch, q.id);
            weights.push(w);
            lambdas.push(lambda);

            // Variables: state 0 has the single idle action; states 1..=N
            // have all effort levels. Loss cost sits on the full state.
            let mut block: Vec<Vec<VarId>> = Vec::with_capacity(n + 1);
            for state in 0..=n {
                let acts = if state == 0 { 1 } else { levels };
                let mut row = Vec::with_capacity(acts);
                for a in 0..acts {
                    let cost = if state == n { w * lambda } else { 0.0 };
                    row.push(lp.add_var(format!("x_q{}_n{}_a{}", q.id.index(), state, a), cost));
                }
                block.push(row);
            }

            // Level-crossing (cut) equations: probability flow up across
            // the n|n+1 boundary equals the flow down,
            //   λ·Σ_a x(n,a) = μ·Σ_a e_a·x(n+1,a).
            // For a birth–death block this is equivalent to global
            // balance but the rows are linearly *independent*, which
            // keeps the system consistent under the simplex solver's
            // degeneracy-breaking rhs perturbation.
            //
            // The whole block — n cut rows plus the normalization row —
            // goes through the sparse triplet builder in one batch, so
            // LP assembly stays O(nnz) per block and the block-diagonal
            // structure reaches the solver's CSR standard form intact.
            let mut triplets: Vec<(usize, VarId, f64)> = Vec::new();
            for j in 0..n {
                for &v in &block[j] {
                    triplets.push((j, v, lambda));
                }
                for (a, &v) in block[j + 1].iter().enumerate() {
                    if efforts[a] > 0.0 {
                        triplets.push((j, v, -efforts[a] * mu));
                    }
                }
            }
            // Block normalization as row n of the batch.
            for v in block.iter().flatten() {
                triplets.push((n, *v, 1.0));
            }
            let mut rhs = vec![0.0; n + 1];
            rhs[n] = 1.0;
            let ids =
                lp.add_constraints_from_triplets(triplets, &vec![Relation::Eq; n + 1], &rhs)?;
            // Rows 0..n of the batch are the cut rows (row n is the
            // normalization) — remembered for in-place load retargets.
            cut_rows.push(ids[..n].to_vec());

            vars.push(block);
        }

        // Per-bus effort rows.
        let mut bus_rows = Vec::with_capacity(arch.num_buses());
        for bus in arch.bus_ids() {
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            for &qid in arch.bus_queue_ids(bus) {
                let block = &vars[qid.index()];
                for (state, row) in block.iter().enumerate().skip(1) {
                    let _ = state;
                    for (a, &v) in row.iter().enumerate() {
                        if efforts[a] > 0.0 {
                            terms.push((v, efforts[a]));
                        }
                    }
                }
            }
            let row = lp.add_constraint(terms, Relation::Le, config.bus_effort_limit)?;
            bus_rows.push(row);
        }

        // Global budget row: Σ E[occupancy] ≤ α·budget.
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for block in &vars {
            for (state, row) in block.iter().enumerate().skip(1) {
                for &v in row {
                    terms.push((v, state as f64));
                }
            }
        }
        let budget_row =
            Some(lp.add_constraint(terms, Relation::Le, config.alpha * budget as f64)?);

        Ok(SizingLp {
            lp,
            vars,
            efforts,
            bus_rows,
            budget_row,
            cut_rows,
            weights,
            lambdas,
            state_cap: n,
            alpha: config.alpha,
            engine: config.engine,
            equilibrate: config.equilibrate,
            executor: config.executor.clone(),
        })
    }

    /// The LP engine [`SizingLp::solve`] will run (from the
    /// [`SizingConfig`] this LP was built with).
    pub fn engine(&self) -> LpEngine {
        self.engine
    }

    /// Rewrites a [`socbuf_lp::PreparedLp`] built from this LP's
    /// problem so it describes the same architecture at a different
    /// budget and load factor — the in-place alternative to rebuilding
    /// the whole formulation per sweep point:
    ///
    /// * the budget row's rhs moves to `α · budget` (RHS-only delta);
    /// * every cut row's birth-side coefficients and every full-state
    ///   loss cost are rescaled to `λ_nominal · factor` (a
    ///   pattern-preserving coefficient delta), bitwise identical to
    ///   what [`SizingLp::build`] on
    ///   [`socbuf_soc::Architecture::scale_rates`]`(factor, 1.0)` would
    ///   assemble (both compute `rate * factor` from the same nominal
    ///   rates; only the loss *weights* of multi-source bridge queues
    ///   can differ at the last ulp, since they are rate-ratio
    ///   weighted).
    ///
    /// `nominal` must be the factor-1 architecture this LP's queue
    /// order came from. The retarget also refreshes this LP's own
    /// per-queue λ bookkeeping so a subsequent [`SizingLp::interpret`]
    /// reports `queue_loss_rates` at the retargeted load, not the load
    /// the LP was first built at. (The loss *weights* need no refresh:
    /// they are rate-ratio weighted, so a common λ factor cancels.)
    ///
    /// # Errors
    ///
    /// Propagates [`socbuf_lp::LpError`] from the delta application
    /// (e.g. a pattern change) — the caller then rebuilds cold.
    pub(crate) fn retarget(
        &mut self,
        prepared: &mut socbuf_lp::PreparedLp,
        nominal: &Architecture,
        budget: usize,
        factor: f64,
    ) -> Result<(), socbuf_lp::LpError> {
        if let Some(row) = self.budget_row {
            prepared.set_rhs(row, self.alpha * budget as f64)?;
        }
        let n = self.state_cap;
        for (q, queue) in nominal.queues().iter().enumerate() {
            let lambda = queue.offered_rate * factor;
            self.lambdas[q] = lambda;
            let mu = nominal.bus(queue.bus).service_rate();
            let block = &self.vars[q];
            for j in 0..n {
                let mut terms: Vec<(VarId, f64)> =
                    Vec::with_capacity(block[j].len() + block[j + 1].len());
                for &v in &block[j] {
                    terms.push((v, lambda));
                }
                for (a, &v) in block[j + 1].iter().enumerate() {
                    if self.efforts[a] > 0.0 {
                        terms.push((v, -self.efforts[a] * mu));
                    }
                }
                prepared.set_row_coeffs(self.cut_rows[q][j], &terms)?;
            }
            for &v in &block[n] {
                prepared.set_objective_coeff(v, self.weights[q] * lambda)?;
            }
        }
        Ok(())
    }

    /// Number of LP variables.
    pub fn num_vars(&self) -> usize {
        self.lp.num_vars()
    }

    /// Number of LP rows.
    pub fn num_rows(&self) -> usize {
        self.lp.num_rows()
    }

    /// The assembled joint LP — exposed so benches and tests can inspect
    /// or re-assemble its standard form (e.g. to compare the sparse and
    /// dense assembly paths on the paper's own problem shapes).
    pub fn problem(&self) -> &LpProblem {
        &self.lp
    }

    /// Solves the joint LP. If the budget row makes the program
    /// infeasible (a very small budget cannot hold the minimum possible
    /// expected occupancy), it is dropped and the solve retried — the
    /// translation step still enforces the exact integer budget.
    ///
    /// # Errors
    ///
    /// Propagates LP failures other than budget infeasibility.
    pub fn solve(&self) -> Result<SizingSolution, CoreError> {
        let ladder = solve_ladder(self.engine, self.equilibrate, &self.executor);
        let mut last_err = None;
        for options in &ladder {
            match self.solve_with_options(options) {
                Ok(sol) => return Ok(sol),
                Err(CoreError::Lp(socbuf_lp::LpError::IterationLimit { .. })) => {
                    last_err = Some(CoreError::Lp(socbuf_lp::LpError::IterationLimit {
                        limit: options.max_iterations,
                    }));
                }
                // Numerical breakdown on the θ=0 redundancy contract:
                // a stronger perturbation rung may resolve it.
                Err(CoreError::Lp(e @ socbuf_lp::LpError::ResidualArtificial { .. })) => {
                    last_err = Some(CoreError::Lp(e));
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.expect("ladder is non-empty"))
    }

    /// Solves with explicit simplex options (no retry ladder). The same
    /// budget-row relaxation as [`SizingLp::solve`] applies.
    ///
    /// # Errors
    ///
    /// Propagates LP failures other than budget infeasibility.
    pub fn solve_with_options(
        &self,
        options: &SimplexOptions,
    ) -> Result<SizingSolution, CoreError> {
        match self.lp.solve_with(options) {
            Ok(sol) => Ok(self.interpret(&sol, false)),
            Err(socbuf_lp::LpError::Infeasible { .. }) if self.budget_row.is_some() => {
                let mut relaxed = self.clone();
                relaxed.drop_budget_row();
                let sol = relaxed.lp.solve_with(options)?;
                Ok(relaxed.interpret(&sol, true))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn drop_budget_row(&mut self) {
        // Rebuild without the budget row by re-adding it as a loose
        // constraint is impossible post-hoc; instead mark it None and
        // rebuild the LP from scratch is costly. The budget row is the
        // last row added, so rebuild via a fresh problem is avoided by
        // simply re-adding an equivalent LP... Keep it simple: rebuild.
        // (`build` is deterministic, so clone-and-mutate is safe.)
        if let Some(_row) = self.budget_row.take() {
            // Replace the LP with one where the budget row is vacuous.
            // The row was added last; adding a fresh LP without it means
            // replaying construction — instead we exploit that LpProblem
            // rows are immutable and just rebuild the problem minus the
            // final row via its public API.
            let mut lp = LpProblem::new(Sense::Minimize);
            let mut mapping = Vec::with_capacity(self.lp.num_vars());
            for v in self.lp.vars() {
                let (lo, up) = self.lp.bounds(v);
                mapping.push(lp.add_var_bounded(
                    self.lp.var_name(v).to_string(),
                    self.lp.objective_coeff(v),
                    lo,
                    up,
                ));
            }
            let rows: Vec<_> = self.lp.row_ids().collect();
            let mut new_bus_rows = Vec::with_capacity(self.bus_rows.len());
            for r in rows.iter().take(rows.len().saturating_sub(1)) {
                let (terms, rel, rhs) = self.lp.row(*r);
                let new_terms: Vec<_> = terms
                    .into_iter()
                    .map(|(v, c)| (mapping[v.index()], c))
                    .collect();
                let nr = lp
                    .add_constraint(new_terms, rel, rhs)
                    .expect("replayed row is valid");
                if self.bus_rows.contains(r) {
                    new_bus_rows.push(nr);
                }
            }
            self.bus_rows = new_bus_rows;
            self.lp = lp;
        }
    }

    /// Occupation mass below which a state counts as *unreached* when
    /// extracting effort curves. The solve ladder perturbs the rhs at
    /// the 1e-6..1e-4 scale, which parks that much probability dust in
    /// arbitrary (often zero-effort) actions of states the optimal
    /// policy never visits; dividing dust by dust yields effort curves
    /// with dead zones that the translation step's birth–death
    /// reconstruction then reads as absorbing tails. Every state that
    /// actually matters to sizing carries mass far above this (the
    /// 0.98-quantile requirement is insensitive to sub-1e-4 tails), so
    /// such states take the conservative full-effort fallback instead.
    /// This keeps the translated allocation stable across optimal
    /// vertices — and therefore across LP engines.
    const EFFORT_DUST: f64 = 1e-4;

    pub(crate) fn interpret(&self, sol: &socbuf_lp::LpSolution, relaxed: bool) -> SizingSolution {
        let nq = self.vars.len();
        let mut occupation = Vec::with_capacity(nq);
        let mut marginals = Vec::with_capacity(nq);
        let mut effort_curves = Vec::with_capacity(nq);
        let mut queue_loss_rates = Vec::with_capacity(nq);
        for (q, block) in self.vars.iter().enumerate() {
            let mut occ: Vec<Vec<f64>> = Vec::with_capacity(block.len());
            let mut marg = Vec::with_capacity(block.len());
            let mut curve = Vec::with_capacity(block.len());
            for row in block {
                let xs: Vec<f64> = row.iter().map(|&v| sol.value(v).max(0.0)).collect();
                let total: f64 = xs.iter().sum();
                let expected_effort = if row.len() == 1 {
                    0.0
                } else if total > Self::EFFORT_DUST {
                    xs.iter()
                        .enumerate()
                        .map(|(a, x)| self.efforts[a] * x)
                        .sum::<f64>()
                        / total
                } else {
                    // States unreached at the optimum (or holding only
                    // perturbation dust): serve at full effort if an
                    // excursion ever lands here.
                    1.0
                };
                marg.push(total);
                curve.push(expected_effort);
                occ.push(xs);
            }
            // Normalize marginals exactly (numerical dust).
            let s: f64 = marg.iter().sum();
            if s > 0.0 {
                for m in marg.iter_mut() {
                    *m /= s;
                }
            }
            queue_loss_rates.push(self.lambdas[q] * marg[self.state_cap]);
            occupation.push(occ);
            marginals.push(marg);
            effort_curves.push(curve);
        }
        SizingSolution {
            occupation,
            marginals,
            efforts: effort_curves,
            loss_rate: sol.objective(),
            queue_loss_rates,
            budget_shadow_price: self.budget_row.map_or(0.0, |r| sol.dual(r)),
            bus_shadow_prices: self.bus_rows.iter().map(|&r| sol.dual(r)).collect(),
            budget_row_relaxed: relaxed,
            lp_iterations: sol.iterations(),
            lp_engine: sol.engine(),
            lp_scaling: sol.scaling_stats(),
        }
    }

    /// The loss weight attached to each queue.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// The escalation ladder shared by [`SizingLp::solve`] and the
/// warm-started [`crate::SolveContext`] (the two must stay identical:
/// whether a point is solved cold or warm, it must attempt the same
/// sequence of perturbation settings so statuses and objectives agree).
///
/// Occupation-measure LPs are massively degenerate (hundreds of
/// zero-rhs balance rows); the rhs perturbation keeps simplex making
/// strict progress. Marginals are renormalized downstream, so the
/// O(1e-6) wobble is immaterial. Individual instances can still stall
/// under a particular perturbation pattern, so a ladder of increasingly
/// aggressive settings backs the first attempt up.
pub(crate) fn solve_ladder(
    engine: LpEngine,
    equilibrate: bool,
    executor: &ExecutorHandle,
) -> [SimplexOptions; 3] {
    [
        SimplexOptions {
            perturbation: 1e-6,
            max_iterations: 30_000,
            engine,
            equilibrate,
            executor: executor.clone(),
            ..SimplexOptions::default()
        },
        SimplexOptions {
            perturbation: 1e-5,
            max_iterations: 60_000,
            stall_switch: 20,
            engine,
            equilibrate,
            executor: executor.clone(),
            ..SimplexOptions::default()
        },
        SimplexOptions {
            perturbation: 1e-4,
            max_iterations: 200_000,
            stall_switch: 10,
            engine,
            equilibrate,
            executor: executor.clone(),
            ..SimplexOptions::default()
        },
    ]
}

/// Loss weight of a queue: the processor's weight for transmit queues;
/// for bridge buffers, the traffic-weighted mean weight of the source
/// processors routed through it.
fn queue_weight(arch: &Architecture, queue: socbuf_soc::QueueId) -> f64 {
    let q = arch.queue(queue);
    match q.client {
        Client::Processor(p) => arch.processor(p).weight(),
        Client::Bridge(_) => {
            let mut num = 0.0;
            let mut den = 0.0;
            for &f in &q.flows {
                let flow = arch.flow(f);
                num += flow.rate() * arch.processor(flow.src()).weight();
                den += flow.rate();
            }
            if den > 0.0 {
                num / den
            } else {
                1.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socbuf_soc::{ArchitectureBuilder, FlowTarget};

    fn single_queue(lambda: f64, mu: f64) -> Architecture {
        let mut b = ArchitectureBuilder::new();
        let bus = b.add_bus("bus", mu).unwrap();
        let p = b.add_processor("p", &[bus], 1.0).unwrap();
        b.add_flow(p, FlowTarget::Bus(bus), lambda).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn config_validation() {
        let arch = single_queue(0.5, 1.0);
        let mut c = SizingConfig::small();
        c.state_cap = 1;
        assert!(SizingLp::build(&arch, 10, &c).is_err());
        let mut c = SizingConfig::small();
        c.effort_levels = 1;
        assert!(SizingLp::build(&arch, 10, &c).is_err());
        let mut c = SizingConfig::small();
        c.alpha = 0.0;
        assert!(SizingLp::build(&arch, 10, &c).is_err());
        let mut c = SizingConfig::small();
        c.quantile = 1.0;
        assert!(SizingLp::build(&arch, 10, &c).is_err());
        assert!(SizingLp::build(&arch, 0, &SizingConfig::small()).is_err());
    }

    #[test]
    fn single_queue_matches_mm1k_under_loose_budget() {
        // With a loose budget and a single queue per bus, the optimal
        // policy is full effort everywhere; the block then *is* an
        // M/M/1/N queue and the LP loss matches the closed form.
        let (lambda, mu) = (0.7, 1.0);
        let cfg = SizingConfig::small(); // state_cap 8
        let arch = single_queue(lambda, mu);
        let lp = SizingLp::build(&arch, 1000, &cfg).unwrap();
        let sol = lp.solve().unwrap();
        let oracle = socbuf_markov::MM1K::new(lambda, mu, cfg.state_cap).unwrap();
        // Tolerances track the solver's documented degeneracy-breaking
        // perturbation (1e-6 relative wobble on the occupation measure).
        assert!(
            (sol.loss_rate - oracle.loss_rate()).abs() < 1e-4,
            "lp {} vs mm1k {}",
            sol.loss_rate,
            oracle.loss_rate()
        );
        // Effort curve: full service at every positive occupancy.
        for n in 1..=cfg.state_cap {
            assert!(
                sol.efforts[0][n] > 0.999,
                "effort at {n}: {}",
                sol.efforts[0][n]
            );
        }
        // Marginals match the M/M/1/K stationary law.
        let pi = oracle.state_probabilities();
        for (m, p) in sol.marginals[0].iter().zip(&pi) {
            assert!((m - p).abs() < 1e-4, "{m} vs {p}");
        }
    }

    #[test]
    fn tight_budget_increases_loss_and_prices_buffer_space() {
        let arch = single_queue(0.8, 1.0);
        let cfg = SizingConfig::small();
        let loose = SizingLp::build(&arch, 1000, &cfg).unwrap().solve().unwrap();
        let tight = SizingLp::build(&arch, 2, &cfg).unwrap().solve().unwrap();
        assert!(tight.loss_rate >= loose.loss_rate - 1e-9);
        // With E[n] ≤ 1 binding, buffer space has a strictly negative
        // shadow price (more budget ⇒ less loss).
        assert!(
            tight.budget_row_relaxed || tight.budget_shadow_price < 1e-12,
            "{tight:?}"
        );
    }

    #[test]
    fn bus_effort_is_shared_between_queues() {
        // Two processors on one bus, each λ = 0.45, μ = 1: together they
        // need 0.9 expected effort, so both queues must receive service
        // and the bus row must bind within its limit.
        let mut b = ArchitectureBuilder::new();
        let bus = b.add_bus("bus", 1.0).unwrap();
        let p0 = b.add_processor("p0", &[bus], 1.0).unwrap();
        let p1 = b.add_processor("p1", &[bus], 1.0).unwrap();
        b.add_flow(p0, FlowTarget::Bus(bus), 0.45).unwrap();
        b.add_flow(p1, FlowTarget::Bus(bus), 0.45).unwrap();
        let arch = b.build().unwrap();
        let lp = SizingLp::build(&arch, 100, &SizingConfig::small()).unwrap();
        let sol = lp.solve().unwrap();
        // Total expected effort across both queues ≤ 1.
        let mut total_effort = 0.0;
        for q in 0..2 {
            for n in 1..sol.occupation[q].len() {
                for (a, &x) in sol.occupation[q][n].iter().enumerate() {
                    total_effort += x * (a as f64 / 2.0); // small() has 3 levels
                }
            }
        }
        assert!(total_effort <= 1.0 + 1e-6, "{total_effort}");
        // Both queues keep their loss below the no-service level.
        for q in 0..2 {
            assert!(sol.queue_loss_rates[q] < 0.45 * 0.5);
        }
    }

    #[test]
    fn weighted_queue_is_protected() {
        // Same two-queue bus, but p0's losses weigh 10×: the optimum must
        // grant p0 at least as much protection (lower loss).
        let mut b = ArchitectureBuilder::new();
        let bus = b.add_bus("bus", 1.0).unwrap();
        let p0 = b.add_processor("p0", &[bus], 10.0).unwrap();
        let p1 = b.add_processor("p1", &[bus], 1.0).unwrap();
        b.add_flow(p0, FlowTarget::Bus(bus), 0.55).unwrap();
        b.add_flow(p1, FlowTarget::Bus(bus), 0.55).unwrap();
        let arch = b.build().unwrap();
        let sol = SizingLp::build(&arch, 12, &SizingConfig::small())
            .unwrap()
            .solve()
            .unwrap();
        assert!(
            sol.queue_loss_rates[0] <= sol.queue_loss_rates[1] + 1e-9,
            "{:?}",
            sol.queue_loss_rates
        );
    }

    #[test]
    fn retarget_refreshes_queue_loss_rate_bookkeeping() {
        // Regression: `retarget` must update the LP's per-queue λ
        // bookkeeping, or `interpret` reports `queue_loss_rates` at the
        // load the LP was *built* at (here 0.5×) instead of the load it
        // was retargeted to (2×) — a 4× error.
        let arch = single_queue(0.4, 1.0);
        let cfg = SizingConfig::small();
        let built_arch = arch.scale_rates(0.5, 1.0).unwrap();
        let mut lp = SizingLp::build(&built_arch, 50, &cfg).unwrap();
        let mut prepared = socbuf_lp::PreparedLp::new(lp.problem().clone()).unwrap();
        lp.retarget(&mut prepared, &arch, 50, 2.0).unwrap();
        let options = &solve_ladder(cfg.engine, cfg.equilibrate, &cfg.executor)[0];
        let warm = lp.interpret(&prepared.solve_with(options).unwrap(), false);
        let cold = SizingLp::build(&arch.scale_rates(2.0, 1.0).unwrap(), 50, &cfg)
            .unwrap()
            .solve()
            .unwrap();
        for (w, c) in warm.queue_loss_rates.iter().zip(&cold.queue_loss_rates) {
            assert!(
                (w - c).abs() <= 1e-5 * (1.0 + c.abs()),
                "queue loss rate drifted: warm {w} vs cold {c}"
            );
        }
    }

    #[test]
    fn infeasible_budget_row_is_relaxed() {
        // Overloaded queue (ρ > 1) with a 1-unit budget: E[n] ≤ α·1 is
        // unattainable, so the solver must drop the budget row and still
        // return a solution.
        let arch = single_queue(3.0, 1.0);
        let sol = SizingLp::build(&arch, 1, &SizingConfig::small())
            .unwrap()
            .solve()
            .unwrap();
        assert!(sol.budget_row_relaxed);
        assert!(sol.loss_rate > 0.0);
    }

    #[test]
    fn figure1_assembly_is_o_nnz() {
        // The joint LP of the paper's Figure 1 example is block diagonal
        // with a handful of coupling rows: its sparse standard form must
        // store a small fraction of the dense footprint, and the entry
        // count per row must stay bounded as the state cap grows.
        let arch = socbuf_soc::templates::figure1();
        for cap in [8usize, 16, 32] {
            let cfg = SizingConfig {
                state_cap: cap,
                ..SizingConfig::default()
            };
            let lp = SizingLp::build(&arch, 22, &cfg).unwrap();
            let stats = socbuf_lp::assembly::stats(lp.problem()).unwrap();
            let dense_footprint = stats.rows * stats.cols;
            assert!(
                stats.nnz * 10 < dense_footprint,
                "cap {cap}: nnz {} vs dense {dense_footprint}",
                stats.nnz
            );
            // Cut rows have ≤ 2·effort_levels entries, coupling rows are
            // O(num_vars): total nnz is linear in the variable count.
            assert!(
                stats.nnz < 8 * lp.num_vars(),
                "cap {cap}: nnz {} vs vars {}",
                stats.nnz,
                lp.num_vars()
            );
        }
    }

    #[test]
    fn bridge_buffers_get_their_own_blocks() {
        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let y = b.add_bus("y", 1.0).unwrap();
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        b.add_bridge("g", x, y).unwrap();
        b.add_flow(p, FlowTarget::Bus(y), 0.4).unwrap();
        let arch = b.build().unwrap();
        let cfg = SizingConfig::small();
        let lp = SizingLp::build(&arch, 50, &cfg).unwrap();
        // Two blocks: (1 + N·L) vars each.
        let per_block = 1 + cfg.state_cap * cfg.effort_levels;
        assert_eq!(lp.num_vars(), 2 * per_block);
        let sol = lp.solve().unwrap();
        assert_eq!(sol.marginals.len(), 2);
        // Each marginal is a distribution.
        for m in &sol.marginals {
            assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-8);
        }
    }
}
