//! Optimal buffer sizing and bridge buffer insertion for SoC
//! communication subsystems — the primary contribution of
//! *Kallakuri, Doboli, Feinberg: "Buffer Insertion for Bridges and
//! Optimal Buffer Sizing for Communication Sub-System of
//! Systems-on-Chip"* (DATE 2005), reimplemented end to end.
//!
//! # The methodology
//!
//! 1. **Split** the architecture at its bridges
//!    ([`socbuf_soc::split::split`]): bridge buffers decouple adjacent
//!    buses, so each remaining subsystem has *linear* steady-state
//!    equations. The [`coupled`] module constructs the *unsplit*
//!    equations explicitly — their bridge products are quadratic, which
//!    is exactly why the authors' Matlab attempt failed — and solves
//!    them with a fixed-point iteration for comparison.
//! 2. **Formulate** one constrained CTMDP per queue (a birth–death
//!    block over buffer occupancy whose actions are bus service-effort
//!    levels), and assemble *all* blocks into a single occupation-measure
//!    LP — the paper insists the subsystems be solved "in one go and not
//!    sequentially" — coupled by per-bus effort rows and one global
//!    buffer-budget row ([`formulation`]).
//! 3. **Translate** the optimal occupation measure through the
//!    K-switching policy into integer buffer lengths: per-queue
//!    occupancy quantiles, apportioned to the exact budget
//!    ([`translate`]).
//! 4. **Re-simulate** the architecture with the new buffer lengths and
//!    the CTMDP arbitration policy, and compare losses against the
//!    constant-sizing and timeout baselines ([`pipeline`]).
//!
//! # Examples
//!
//! ```
//! use socbuf_core::{size_buffers, SizingConfig};
//! use socbuf_soc::templates;
//!
//! # fn main() -> Result<(), socbuf_core::CoreError> {
//! let arch = templates::amba();
//! let outcome = size_buffers(&arch, 24, &SizingConfig::small())?;
//! assert_eq!(outcome.allocation.total(), 24);
//! // The CTMDP allocation is a genuine redistribution, not an even split.
//! let units = outcome.allocation.as_slice();
//! assert!(units.iter().max() > units.iter().min());
//! # Ok(())
//! # }
//! ```

pub mod coupled;
mod error;
pub mod formulation;
pub mod pipeline;
pub mod report;
pub mod translate;
pub mod wire;

pub use error::CoreError;
pub use formulation::{SizingConfig, SizingLp, SizingSolution};
pub use pipeline::{
    evaluate_policies, evaluate_policies_sized, evaluate_policies_with, size_buffers,
    PipelineConfig, PolicyComparison, ReplicationPool, SerialPool, SizingOutcome, SolveContext,
};
pub use report::SizingReport;
pub use translate::Translation;

// LP-layer types that appear in this crate's public API (engine
// selection, the decomposed engine's block executor, warm-start basis
// export/import, and the workspace chunk-scheduling policy),
// re-exported so downstream crates — `socbuf-sweep` in particular —
// need no direct `socbuf-lp` dependency.
pub use socbuf_lp::{BasisSnapshot, ChunkPolicy, ExecutorHandle, LpEngine, SolveExecutor};

// Simulator engine selector, re-exported for the same reason: it is a
// field of [`PipelineConfig`], and downstream crates should not need a
// direct `socbuf-sim` dependency to set it.
pub use socbuf_sim::SimEngine;
