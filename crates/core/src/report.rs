//! Human-readable rendering of sizing results — the tables and series
//! the experiment binaries print (Figure 3, Table 1).

use std::fmt::Write as _;

use socbuf_soc::Architecture;

use crate::pipeline::PolicyComparison;

/// Formatter for a [`PolicyComparison`].
#[derive(Debug, Clone)]
pub struct SizingReport<'a> {
    arch: &'a Architecture,
    comparison: &'a PolicyComparison,
}

impl<'a> SizingReport<'a> {
    /// Couples a comparison with its architecture for naming.
    pub fn new(arch: &'a Architecture, comparison: &'a PolicyComparison) -> Self {
        SizingReport { arch, comparison }
    }

    /// The paper's Figure 3 series: per-processor loss counts under the
    /// three policies, one row per processor.
    pub fn figure3_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>12} {:>12}",
            "processor", "pre-sizing", "post-sizing", "timeout"
        );
        for (i, ((pre, post), to)) in self
            .comparison
            .pre
            .per_proc
            .iter()
            .zip(&self.comparison.post.per_proc)
            .zip(&self.comparison.timeout.per_proc)
            .enumerate()
        {
            let p = self.arch.proc_ids().nth(i).expect("processor in range");
            let _ = writeln!(
                out,
                "{:<10} {:>12.1} {:>12.1} {:>12.1}",
                self.arch.processor(p).name(),
                pre.lost,
                post.lost,
                to.lost
            );
        }
        let _ = writeln!(
            out,
            "{:<10} {:>12.1} {:>12.1} {:>12.1}",
            "TOTAL",
            self.comparison.pre.total_lost,
            self.comparison.post.total_lost,
            self.comparison.timeout.total_lost
        );
        let _ = writeln!(
            out,
            "improvement vs constant sizing: {:+.1}%   vs timeout policy: {:+.1}%",
            100.0 * self.comparison.improvement_vs_pre(),
            100.0 * self.comparison.improvement_vs_timeout()
        );
        out
    }

    /// One row of the paper's Table 1 (`pre`/`post` loss for selected
    /// processors at this budget), given 1-indexed processor numbers.
    pub fn table1_row(&self, processors_1_indexed: &[usize]) -> String {
        let mut out = String::new();
        let _ = write!(out, "budget {:>4}:", self.comparison.budget);
        for &idx in processors_1_indexed {
            let pre = self.comparison.pre.per_proc[idx - 1].lost;
            let post = self.comparison.post.per_proc[idx - 1].lost;
            let _ = write!(out, "  P{idx} {pre:>7.1} -> {post:>6.1}");
        }
        out
    }

    /// CSV with one line per processor: `name,pre,post,timeout`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("processor,pre,post,timeout\n");
        for (i, ((pre, post), to)) in self
            .comparison
            .pre
            .per_proc
            .iter()
            .zip(&self.comparison.post.per_proc)
            .zip(&self.comparison.timeout.per_proc)
            .enumerate()
        {
            let p = self.arch.proc_ids().nth(i).expect("processor in range");
            let _ = writeln!(
                out,
                "{},{},{},{}",
                self.arch.processor(p).name(),
                pre.lost,
                post.lost,
                to.lost
            );
        }
        out
    }

    /// The allocation table: queue name, requirement, granted units.
    pub fn allocation_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<16} {:>11} {:>8}", "queue", "requirement", "units");
        for q in self.arch.queue_ids() {
            let _ = writeln!(
                out,
                "{:<16} {:>11} {:>8}",
                self.arch.queue_name(q),
                self.comparison.outcome.requirements[q.index()],
                self.comparison.outcome.allocation.units(q)
            );
        }
        let _ = writeln!(
            out,
            "{:<16} {:>11} {:>8}",
            "TOTAL",
            "",
            self.comparison.outcome.allocation.total()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{evaluate_policies, PipelineConfig};
    use socbuf_soc::templates;

    #[test]
    fn report_renders_all_processors_and_totals() {
        let arch = templates::amba();
        let cmp = evaluate_policies(&arch, 20, &PipelineConfig::small()).unwrap();
        let report = SizingReport::new(&arch, &cmp);
        let fig3 = report.figure3_table();
        for p in arch.proc_ids() {
            assert!(fig3.contains(arch.processor(p).name()));
        }
        assert!(fig3.contains("TOTAL"));
        assert!(fig3.contains("improvement"));

        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), arch.num_processors() + 1);

        let row = report.table1_row(&[1, 2]);
        assert!(row.contains("budget"));
        assert!(row.contains("P1"));

        let alloc = report.allocation_table();
        assert!(alloc.contains("TOTAL"));
        for q in arch.queue_ids() {
            assert!(alloc.contains(&arch.queue_name(q)));
        }
    }
}
