use std::error::Error;
use std::fmt;

use socbuf_ctmdp::CtmdpError;
use socbuf_lp::LpError;
use socbuf_soc::SocError;

/// Errors produced by the buffer-sizing pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Architecture-level failure (bad handle, unroutable flow, …).
    Soc(SocError),
    /// The sizing LP failed (most prominently: the budget or bus-effort
    /// constraints admit no stationary policy).
    Lp(LpError),
    /// A CTMDP sub-solve failed.
    Ctmdp(CtmdpError),
    /// Configuration rejected before solving.
    BadConfig(String),
    /// The coupled (unsplit, nonlinear) system did not converge.
    CoupledDiverged {
        /// Iterations performed.
        iterations: usize,
        /// Final residual (max |Δ| between successive iterates).
        residual: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Soc(e) => write!(f, "architecture error: {e}"),
            CoreError::Lp(e) => write!(f, "sizing lp failed: {e}"),
            CoreError::Ctmdp(e) => write!(f, "ctmdp solve failed: {e}"),
            CoreError::BadConfig(msg) => write!(f, "bad sizing config: {msg}"),
            CoreError::CoupledDiverged {
                iterations,
                residual,
            } => write!(
                f,
                "coupled nonlinear system did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Soc(e) => Some(e),
            CoreError::Lp(e) => Some(e),
            CoreError::Ctmdp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SocError> for CoreError {
    fn from(e: SocError) -> Self {
        CoreError::Soc(e)
    }
}

impl From<LpError> for CoreError {
    fn from(e: LpError) -> Self {
        CoreError::Lp(e)
    }
}

impl From<CtmdpError> for CoreError {
    fn from(e: CtmdpError) -> Self {
        CoreError::Ctmdp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = SocError::Empty("buses".into()).into();
        assert!(e.to_string().contains("buses"));
        assert!(e.source().is_some());
        let e: CoreError = LpError::EmptyProblem.into();
        assert!(matches!(e, CoreError::Lp(_)));
        let e = CoreError::CoupledDiverged {
            iterations: 50,
            residual: 0.3,
        };
        assert!(e.to_string().contains("50"));
    }
}
