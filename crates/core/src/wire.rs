//! Wire formats: hand-rolled, escaping-correct JSON serialization and
//! deserialization for the pipeline's API types — no dependencies, same
//! discipline as the report renderers.
//!
//! This module is the one place the workspace turns values into JSON
//! text and back. Everything downstream builds on it: the sweep
//! report's JSON-lines rendering routes its floats through
//! [`push_f64`], and the `socbuf-serve` request protocol parses and
//! renders whole [`Architecture`] / [`SizingConfig`] /
//! [`SizingOutcome`] payloads with the codecs below.
//!
//! # Canonical form
//!
//! Rendered JSON is *canonical*: no insignificant whitespace, object
//! keys in the fixed schema order, numbers through the shared writer.
//! Two semantically equal values therefore serialize to byte-identical
//! text, and `render(parse(text)) == text` for any text this module
//! produced — the property the service layer's byte-parity checks and
//! the sweep determinism suite both lean on.
//!
//! # Numbers
//!
//! All floats go through one shared writer, [`push_f64`]:
//!
//! * finite values render via `f64`'s `Display` (shortest decimal that
//!   round-trips, so bit-identical inputs give byte-identical text);
//! * **non-finite values render as `null`** — bare `NaN` / `inf`, which
//!   `Display` would otherwise produce, are not JSON. Parsers map the
//!   `null` back to `f64::NAN` where a float field expects a number.
//!
//! Integer-valued fields (budgets, counts, indices) render as plain
//! integers and are rejected on parse if they arrive negative,
//! fractional, or beyond 2⁵³ (where `f64` stops being exact).

use std::fmt::Write as _;

use socbuf_lp::{BasisSnapshot, ChunkPolicy, LpEngine, ScalingStats};
use socbuf_soc::templates::RandomArchParams;
use socbuf_soc::{
    Architecture, ArchitectureBuilder, BufferAllocation, BusArbitration, FlowTarget, TrafficShape,
};

use crate::pipeline::SizingOutcome;
use crate::SizingConfig;

/// Maximum nesting depth [`JsonValue::parse`] accepts. The codecs here
/// need 5; the cap exists so a hostile request (`[[[[…`) exhausts a
/// counter, not the stack.
const MAX_DEPTH: usize = 128;

/// Largest integer magnitude exactly representable in the `f64` number
/// model (2⁵³); integer fields beyond it are rejected instead of being
/// silently rounded.
const MAX_EXACT_INT: f64 = 9_007_199_254_740_992.0;

// ---------------------------------------------------------------------
// Shared writers
// ---------------------------------------------------------------------

/// Appends `v` as a JSON number — **the** float writer every renderer
/// in the workspace shares.
///
/// Finite values use `f64`'s shortest-round-trip `Display`; non-finite
/// values (`NaN`, `±inf`) append `null`, because JSON has no spelling
/// for them and a bare `NaN` makes the whole document unparseable.
/// Readers treat the `null` as "value exists but is not a finite
/// number" and map it back to `f64::NAN`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends `s` as a JSON string literal, escaping everything JSON
/// requires: quote, backslash, and all control characters below 0x20
/// (the common ones by name, the rest as `\u00XX`).
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON unsigned integer.
pub fn push_usize(out: &mut String, v: usize) {
    let _ = write!(out, "{v}");
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Failure while parsing or interpreting wire-format JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The text is not well-formed JSON.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The JSON is well-formed but does not match the expected schema
    /// (wrong type, missing/unknown field, out-of-range value, or a
    /// domain validation failure while rebuilding the value).
    Schema(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Parse { offset, message } => {
                write!(f, "invalid JSON at byte {offset}: {message}")
            }
            WireError::Schema(msg) => write!(f, "schema error: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// JSON document model
// ---------------------------------------------------------------------

/// A parsed JSON document. Objects preserve key order (they are
/// association lists, not maps), so `render ∘ parse` is the identity on
/// canonical text.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` — also how non-finite floats travel (see [`push_f64`]).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, key order preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses `text` as one JSON document (trailing non-whitespace is
    /// an error).
    ///
    /// # Errors
    ///
    /// [`WireError::Parse`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<JsonValue, WireError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Appends this value in canonical form (no whitespace, floats via
    /// [`push_f64`], strings via [`push_str`]).
    pub fn push(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => push_f64(out, *v),
            JsonValue::Str(s) => push_str(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.push(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_str(out, k);
                    out.push(':');
                    v.push(out);
                }
                out.push('}');
            }
        }
    }

    /// This value in canonical form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.push(&mut out);
        out
    }

    /// Looks up a field of an object (`None` for non-objects and
    /// missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's fields, or a schema error naming `what`.
    ///
    /// # Errors
    ///
    /// [`WireError::Schema`] if this is not an object.
    pub fn obj(&self, what: &str) -> Result<&[(String, JsonValue)], WireError> {
        match self {
            JsonValue::Obj(fields) => Ok(fields),
            other => Err(WireError::Schema(format!(
                "{what}: expected an object, got {}",
                other.kind()
            ))),
        }
    }

    /// The array's items, or a schema error naming `what`.
    ///
    /// # Errors
    ///
    /// [`WireError::Schema`] if this is not an array.
    pub fn arr(&self, what: &str) -> Result<&[JsonValue], WireError> {
        match self {
            JsonValue::Arr(items) => Ok(items),
            other => Err(WireError::Schema(format!(
                "{what}: expected an array, got {}",
                other.kind()
            ))),
        }
    }

    /// The string's contents, or a schema error naming `what`.
    ///
    /// # Errors
    ///
    /// [`WireError::Schema`] if this is not a string.
    pub fn str(&self, what: &str) -> Result<&str, WireError> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => Err(WireError::Schema(format!(
                "{what}: expected a string, got {}",
                other.kind()
            ))),
        }
    }

    /// The boolean, or a schema error naming `what`.
    ///
    /// # Errors
    ///
    /// [`WireError::Schema`] if this is not a boolean.
    pub fn bool(&self, what: &str) -> Result<bool, WireError> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(WireError::Schema(format!(
                "{what}: expected a boolean, got {}",
                other.kind()
            ))),
        }
    }

    /// The number as `f64`; `null` maps to `f64::NAN` (the wire
    /// spelling of a non-finite float — see [`push_f64`]).
    ///
    /// # Errors
    ///
    /// [`WireError::Schema`] if this is neither a number nor `null`.
    pub fn f64(&self, what: &str) -> Result<f64, WireError> {
        match self {
            JsonValue::Num(v) => Ok(*v),
            JsonValue::Null => Ok(f64::NAN),
            other => Err(WireError::Schema(format!(
                "{what}: expected a number, got {}",
                other.kind()
            ))),
        }
    }

    /// A finite number — `null` (non-finite) is rejected, unlike
    /// [`JsonValue::f64`].
    ///
    /// # Errors
    ///
    /// [`WireError::Schema`] for non-numbers and `null`.
    pub fn finite_f64(&self, what: &str) -> Result<f64, WireError> {
        match self {
            JsonValue::Num(v) => Ok(*v),
            other => Err(WireError::Schema(format!(
                "{what}: expected a finite number, got {}",
                other.kind()
            ))),
        }
    }

    /// The number as `usize`: must be a non-negative integer within the
    /// exactly-representable range.
    ///
    /// # Errors
    ///
    /// [`WireError::Schema`] for non-numbers, negatives, fractions, and
    /// values beyond 2⁵³.
    pub fn usize(&self, what: &str) -> Result<usize, WireError> {
        let v = self.finite_f64(what)?;
        if v < 0.0 || v.fract() != 0.0 || v > MAX_EXACT_INT {
            return Err(WireError::Schema(format!(
                "{what}: expected a non-negative integer, got {v}"
            )));
        }
        Ok(v as usize)
    }

    /// The number as `u64` (same rules as [`JsonValue::usize`]).
    ///
    /// # Errors
    ///
    /// [`WireError::Schema`] for non-numbers, negatives, fractions, and
    /// values beyond 2⁵³.
    pub fn u64(&self, what: &str) -> Result<u64, WireError> {
        Ok(self.usize(what)? as u64)
    }

    /// Short type tag for error messages.
    fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "a boolean",
            JsonValue::Num(_) => "a number",
            JsonValue::Str(_) => "a string",
            JsonValue::Arr(_) => "an array",
            JsonValue::Obj(_) => "an object",
        }
    }
}

/// Required-field lookup with a schema error naming the parent.
fn field<'a>(v: &'a JsonValue, parent: &str, key: &str) -> Result<&'a JsonValue, WireError> {
    v.get(key)
        .ok_or_else(|| WireError::Schema(format!("{parent}: missing field \"{key}\"")))
}

/// Rejects object fields outside `allowed` — typos in hand-written
/// requests fail loudly instead of being silently ignored.
fn reject_unknown(v: &JsonValue, parent: &str, allowed: &[&str]) -> Result<(), WireError> {
    for (k, _) in v.obj(parent)? {
        if !allowed.contains(&k.as_str()) {
            return Err(WireError::Schema(format!(
                "{parent}: unknown field \"{k}\" (expected one of {allowed:?})"
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> WireError {
        WireError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, WireError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(self.err(format!("unexpected byte 0x{b:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, WireError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key \"{key}\"")));
            }
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The input is a &str, so slicing between the byte indices of
            // ASCII delimiters always lands on char boundaries.
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("input was valid UTF-8 and delimiters are ASCII"),
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            s.push(c);
                            // hex4 advanced pos past the digits; the
                            // shared `+= 1` below is for the escape
                            // letter, which we already consumed.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.bytes.get(self.pos) {
                Some(&b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(&b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(&b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, WireError> {
        let start = self.pos;
        // Scan the JSON number charset; `f64::from_str` then validates.
        // "NaN"/"inf" never reach this branch (they don't start with a
        // digit or '-' followed by digits), so non-finite spellings are
        // rejected at the grammar level.
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(JsonValue::Num(v)),
            Ok(_) => Err(self.err("number overflows f64")),
            Err(_) => Err(self.err(format!("invalid number \"{text}\""))),
        }
    }
}

// ---------------------------------------------------------------------
// LpEngine tags
// ---------------------------------------------------------------------

/// Parses an [`LpEngine`] from its stable lowercase tag (the same text
/// its `Display` prints: `"revised"`, `"tableau"`, `"decomposed"`).
///
/// # Errors
///
/// [`WireError::Schema`] for unknown tags.
pub fn lp_engine_from_tag(tag: &str) -> Result<LpEngine, WireError> {
    LpEngine::ALL
        .into_iter()
        .find(|e| e.to_string() == tag)
        .ok_or_else(|| WireError::Schema(format!("unknown lp engine \"{tag}\"")))
}

// ---------------------------------------------------------------------
// Architecture codec
// ---------------------------------------------------------------------

/// Serializes an [`Architecture`] as canonical JSON.
///
/// The schema mirrors the builder's inputs — buses, processors,
/// bridges, flows, each referencing earlier components by index in
/// creation order — because that is exactly what
/// [`architecture_from_json`] replays through [`ArchitectureBuilder`],
/// re-running every validation (positive finite rates, routability) on
/// the way back in. Derived data (routes, queues) is *not* serialized:
/// it is recomputed deterministically by `build`, so the wire can never
/// smuggle in an inconsistent architecture.
///
/// Extended-semantics declarations are emitted **only when they differ
/// from the defaults**: a bus carries `"arbitration"` only when
/// non-external, a bridge `"latency"` only when positive, a flow
/// `"shape"` only when non-Poisson. Plain architectures therefore
/// serialize byte-identically to what they produced before those
/// declarations existed, and old documents parse unchanged.
pub fn architecture_to_json(arch: &Architecture) -> String {
    let mut out = String::from("{\"buses\":[");
    for (i, bus) in arch.bus_ids().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let bus = arch.bus(bus);
        out.push_str("{\"name\":");
        push_str(&mut out, bus.name());
        out.push_str(",\"service_rate\":");
        push_f64(&mut out, bus.service_rate());
        match bus.arbitration() {
            BusArbitration::External => {}
            BusArbitration::Priority => {
                out.push_str(",\"arbitration\":\"priority\"");
            }
            BusArbitration::Locked { max_batch } => {
                out.push_str(",\"arbitration\":{\"locked\":");
                push_usize(&mut out, max_batch);
                out.push('}');
            }
        }
        out.push('}');
    }
    out.push_str("],\"processors\":[");
    for (i, p) in arch.proc_ids().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let p = arch.processor(p);
        out.push_str("{\"name\":");
        push_str(&mut out, p.name());
        out.push_str(",\"buses\":[");
        for (j, b) in p.buses().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_usize(&mut out, b.index());
        }
        out.push_str("],\"weight\":");
        push_f64(&mut out, p.weight());
        out.push('}');
    }
    out.push_str("],\"bridges\":[");
    for (i, g) in arch.bridge_ids().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let g = arch.bridge(g);
        out.push_str("{\"name\":");
        push_str(&mut out, g.name());
        out.push_str(",\"from\":");
        push_usize(&mut out, g.from().index());
        out.push_str(",\"to\":");
        push_usize(&mut out, g.to().index());
        if g.latency() > 0.0 {
            out.push_str(",\"latency\":");
            push_f64(&mut out, g.latency());
        }
        out.push('}');
    }
    out.push_str("],\"flows\":[");
    for (i, f) in arch.flow_ids().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let f = arch.flow(f);
        out.push_str("{\"src\":");
        push_usize(&mut out, f.src().index());
        match f.target() {
            FlowTarget::Processor(p) => {
                out.push_str(",\"target\":{\"processor\":");
                push_usize(&mut out, p.index());
            }
            FlowTarget::Bus(b) => {
                out.push_str(",\"target\":{\"bus\":");
                push_usize(&mut out, b.index());
            }
        }
        out.push_str("},\"rate\":");
        push_f64(&mut out, f.rate());
        match f.shape() {
            TrafficShape::Poisson => {}
            TrafficShape::Burst { batch } => {
                out.push_str(",\"shape\":{\"burst\":");
                push_usize(&mut out, batch);
                out.push('}');
            }
            TrafficShape::OnOff { mean_on, mean_off } => {
                out.push_str(",\"shape\":{\"on_off\":{\"mean_on\":");
                push_f64(&mut out, mean_on);
                out.push_str(",\"mean_off\":");
                push_f64(&mut out, mean_off);
                out.push_str("}}");
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Parses a bus's optional `"arbitration"` declaration:
/// `"priority"` or `{"locked": max_batch}`.
fn arbitration_from_json(v: &JsonValue, what: &str) -> Result<BusArbitration, WireError> {
    if let JsonValue::Str(tag) = v {
        return match tag.as_str() {
            "priority" => Ok(BusArbitration::Priority),
            other => Err(WireError::Schema(format!(
                "{what}: unknown arbitration \"{other}\""
            ))),
        };
    }
    reject_unknown(v, what, &["locked"])?;
    let batch = field(v, what, "locked")?.usize("locked")?;
    Ok(BusArbitration::Locked { max_batch: batch })
}

/// Parses a flow's optional `"shape"` declaration:
/// `{"burst": batch}` or `{"on_off": {"mean_on": …, "mean_off": …}}`.
fn shape_from_json(v: &JsonValue, what: &str) -> Result<TrafficShape, WireError> {
    reject_unknown(v, what, &["burst", "on_off"])?;
    match (v.get("burst"), v.get("on_off")) {
        (Some(batch), None) => Ok(TrafficShape::Burst {
            batch: batch.usize("burst")?,
        }),
        (None, Some(onoff)) => {
            let inner = format!("{what}.on_off");
            reject_unknown(onoff, &inner, &["mean_on", "mean_off"])?;
            Ok(TrafficShape::OnOff {
                mean_on: field(onoff, &inner, "mean_on")?.finite_f64("mean_on")?,
                mean_off: field(onoff, &inner, "mean_off")?.finite_f64("mean_off")?,
            })
        }
        _ => Err(WireError::Schema(format!(
            "{what}: expected exactly one of \"burst\" or \"on_off\""
        ))),
    }
}

/// Rebuilds an [`Architecture`] from the JSON [`architecture_to_json`]
/// produces, replaying it through [`ArchitectureBuilder`] so every
/// domain validation (positive finite rates, known handles, routable
/// flows, non-empty architecture) applies to wire input exactly as it
/// does to locally built architectures.
///
/// # Errors
///
/// [`WireError::Schema`] for shape mismatches, out-of-range component
/// indices, or any builder rejection (reported with the builder's own
/// message).
pub fn architecture_from_json(v: &JsonValue) -> Result<Architecture, WireError> {
    reject_unknown(
        v,
        "architecture",
        &["buses", "processors", "bridges", "flows"],
    )?;
    let mut b = ArchitectureBuilder::new();
    let domain = |e: socbuf_soc::SocError| WireError::Schema(format!("architecture: {e}"));

    let mut bus_ids = Vec::new();
    for (i, bus) in field(v, "architecture", "buses")?
        .arr("buses")?
        .iter()
        .enumerate()
    {
        let what = format!("buses[{i}]");
        reject_unknown(bus, &what, &["name", "service_rate", "arbitration"])?;
        let name = field(bus, &what, "name")?.str("name")?;
        let rate = field(bus, &what, "service_rate")?.finite_f64("service_rate")?;
        let arb = match bus.get("arbitration") {
            Some(a) => arbitration_from_json(a, &format!("{what}.arbitration"))?,
            None => BusArbitration::External,
        };
        bus_ids.push(
            b.add_bus_with_arbitration(name, rate, arb)
                .map_err(domain)?,
        );
    }
    let bus = |idx: usize, what: &str| {
        bus_ids
            .get(idx)
            .copied()
            .ok_or_else(|| WireError::Schema(format!("{what}: bus index {idx} out of range")))
    };

    let mut proc_ids = Vec::new();
    for (i, p) in field(v, "architecture", "processors")?
        .arr("processors")?
        .iter()
        .enumerate()
    {
        let what = format!("processors[{i}]");
        reject_unknown(p, &what, &["name", "buses", "weight"])?;
        let name = field(p, &what, "name")?.str("name")?;
        let weight = field(p, &what, "weight")?.finite_f64("weight")?;
        let mut buses = Vec::new();
        for idx in field(p, &what, "buses")?.arr("buses")? {
            buses.push(bus(idx.usize("bus index")?, &what)?);
        }
        proc_ids.push(b.add_processor(name, &buses, weight).map_err(domain)?);
    }

    for (i, g) in field(v, "architecture", "bridges")?
        .arr("bridges")?
        .iter()
        .enumerate()
    {
        let what = format!("bridges[{i}]");
        reject_unknown(g, &what, &["name", "from", "to", "latency"])?;
        let name = field(g, &what, "name")?.str("name")?;
        let from = bus(field(g, &what, "from")?.usize("from")?, &what)?;
        let to = bus(field(g, &what, "to")?.usize("to")?, &what)?;
        let latency = match g.get("latency") {
            Some(l) => l.finite_f64("latency")?,
            None => 0.0,
        };
        b.add_bridge_with_latency(name, from, to, latency)
            .map_err(domain)?;
    }

    for (i, f) in field(v, "architecture", "flows")?
        .arr("flows")?
        .iter()
        .enumerate()
    {
        let what = format!("flows[{i}]");
        reject_unknown(f, &what, &["src", "target", "rate", "shape"])?;
        let src_idx = field(f, &what, "src")?.usize("src")?;
        let src = proc_ids.get(src_idx).copied().ok_or_else(|| {
            WireError::Schema(format!("{what}: processor index {src_idx} out of range"))
        })?;
        let target = field(f, &what, "target")?;
        reject_unknown(target, &format!("{what}.target"), &["processor", "bus"])?;
        let target = match (target.get("processor"), target.get("bus")) {
            (Some(p), None) => {
                let idx = p.usize("target.processor")?;
                FlowTarget::Processor(proc_ids.get(idx).copied().ok_or_else(|| {
                    WireError::Schema(format!("{what}: processor index {idx} out of range"))
                })?)
            }
            (None, Some(bus_v)) => FlowTarget::Bus(bus(bus_v.usize("target.bus")?, &what)?),
            _ => {
                return Err(WireError::Schema(format!(
                    "{what}.target: expected exactly one of \"processor\" or \"bus\""
                )))
            }
        };
        let rate = field(f, &what, "rate")?.finite_f64("rate")?;
        let shape = match f.get("shape") {
            Some(s) => shape_from_json(s, &format!("{what}.shape"))?,
            None => TrafficShape::Poisson,
        };
        b.add_flow_shaped(src, target, rate, shape)
            .map_err(domain)?;
    }

    b.build().map_err(domain)
}

// ---------------------------------------------------------------------
// SizingConfig codec
// ---------------------------------------------------------------------

/// Serializes a [`SizingConfig`] as canonical JSON.
///
/// The `executor` field is deliberately **not** serialized: where block
/// solves run is an execution-site decision (a server attaches its own
/// pool), never part of a request's meaning — executors change wall
/// time, not results. [`sizing_config_from_json`] always returns the
/// serial default.
pub fn sizing_config_to_json(config: &SizingConfig) -> String {
    let mut out = String::from("{\"state_cap\":");
    push_usize(&mut out, config.state_cap);
    out.push_str(",\"effort_levels\":");
    push_usize(&mut out, config.effort_levels);
    out.push_str(",\"alpha\":");
    push_f64(&mut out, config.alpha);
    out.push_str(",\"quantile\":");
    push_f64(&mut out, config.quantile);
    out.push_str(",\"bus_effort_limit\":");
    push_f64(&mut out, config.bus_effort_limit);
    out.push_str(",\"engine\":");
    push_str(&mut out, &config.engine.to_string());
    out.push_str(",\"equilibrate\":");
    out.push_str(if config.equilibrate { "true" } else { "false" });
    out.push('}');
    out
}

/// Parses a [`SizingConfig`]. Missing fields take their defaults (so
/// `{}` is the default configuration); unknown fields are rejected.
/// Range validation (state_cap ≥ 2, α ∈ (0,1], …) stays where it
/// always was — in the sizing pipeline's own `validate` — so wire and
/// local configs fail identically.
///
/// # Errors
///
/// [`WireError::Schema`] for unknown fields or type mismatches.
pub fn sizing_config_from_json(v: &JsonValue) -> Result<SizingConfig, WireError> {
    reject_unknown(
        v,
        "config",
        &[
            "state_cap",
            "effort_levels",
            "alpha",
            "quantile",
            "bus_effort_limit",
            "engine",
            "equilibrate",
        ],
    )?;
    let mut config = SizingConfig::default();
    if let Some(x) = v.get("state_cap") {
        config.state_cap = x.usize("state_cap")?;
    }
    if let Some(x) = v.get("effort_levels") {
        config.effort_levels = x.usize("effort_levels")?;
    }
    if let Some(x) = v.get("alpha") {
        config.alpha = x.finite_f64("alpha")?;
    }
    if let Some(x) = v.get("quantile") {
        config.quantile = x.finite_f64("quantile")?;
    }
    if let Some(x) = v.get("bus_effort_limit") {
        config.bus_effort_limit = x.finite_f64("bus_effort_limit")?;
    }
    if let Some(x) = v.get("engine") {
        config.engine = lp_engine_from_tag(x.str("engine")?)?;
    }
    if let Some(x) = v.get("equilibrate") {
        config.equilibrate = x.bool("equilibrate")?;
    }
    Ok(config)
}

// ---------------------------------------------------------------------
// SizingOutcome codec
// ---------------------------------------------------------------------

fn push_outcome_semantic_fields(out: &mut String, outcome: &SizingOutcome) {
    out.push_str("\"allocation\":[");
    for (i, u) in outcome.allocation.as_slice().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_usize(out, *u);
    }
    out.push_str("],\"requirements\":[");
    for (i, r) in outcome.requirements.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_usize(out, *r);
    }
    out.push_str("],\"efforts\":[");
    for (i, curve) in outcome.efforts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, e) in curve.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_f64(out, *e);
        }
        out.push(']');
    }
    out.push_str("],\"predicted_loss_rate\":");
    push_f64(out, outcome.predicted_loss_rate);
    out.push_str(",\"budget_shadow_price\":");
    push_f64(out, outcome.budget_shadow_price);
    out.push_str(",\"budget_row_relaxed\":");
    out.push_str(if outcome.budget_row_relaxed {
        "true"
    } else {
        "false"
    });
    out.push_str(",\"lp_engine\":");
    push_str(out, &outcome.lp_engine.to_string());
    out.push_str(",\"lp_scaling\":{\"applied\":");
    out.push_str(if outcome.lp_scaling.applied {
        "true"
    } else {
        "false"
    });
    out.push_str(",\"condition_before\":");
    push_f64(out, outcome.lp_scaling.condition_before);
    out.push_str(",\"condition_after\":");
    push_f64(out, outcome.lp_scaling.condition_after);
    out.push('}');
}

/// Serializes the *semantic* content of a [`SizingOutcome`]: every
/// field that is a pure function of (architecture, config, budget) —
/// allocation, requirements, effort curves, predicted loss, shadow
/// price, relaxation flag, engine, scaling stats.
///
/// What it leaves out is `lp_iterations`: the pivot count is a property
/// of the *solve path* (cold start vs warm chain), not of the answer,
/// and the service layer's byte-parity contract — a warm cache hit must
/// answer byte-identically to a cold [`crate::size_buffers`] — is over
/// exactly this rendering. Pivot counts travel in the per-request trace
/// instead.
pub fn sizing_outcome_semantic_json(outcome: &SizingOutcome) -> String {
    let mut out = String::from("{");
    push_outcome_semantic_fields(&mut out, outcome);
    out.push('}');
    out
}

/// Serializes a [`SizingOutcome`] in full, including the
/// path-dependent `lp_iterations` (see
/// [`sizing_outcome_semantic_json`] for why that field is segregated).
pub fn sizing_outcome_to_json(outcome: &SizingOutcome) -> String {
    let mut out = String::from("{");
    push_outcome_semantic_fields(&mut out, outcome);
    out.push_str(",\"lp_iterations\":");
    push_usize(&mut out, outcome.lp_iterations);
    out.push('}');
    out
}

/// Parses a [`SizingOutcome`] (either rendering; `lp_iterations`
/// defaults to 0 when absent, as in the semantic form). Needs the
/// architecture the outcome belongs to, because a
/// [`BufferAllocation`] is only meaningful against its queue list.
///
/// # Errors
///
/// [`WireError::Schema`] for shape mismatches or an allocation whose
/// length disagrees with the architecture's queue count.
pub fn sizing_outcome_from_json(
    v: &JsonValue,
    arch: &Architecture,
) -> Result<SizingOutcome, WireError> {
    reject_unknown(
        v,
        "outcome",
        &[
            "allocation",
            "requirements",
            "efforts",
            "predicted_loss_rate",
            "budget_shadow_price",
            "budget_row_relaxed",
            "lp_engine",
            "lp_scaling",
            "lp_iterations",
        ],
    )?;
    let mut units = Vec::new();
    for u in field(v, "outcome", "allocation")?.arr("allocation")? {
        units.push(u.usize("allocation unit")?);
    }
    let allocation = BufferAllocation::new(arch, units)
        .map_err(|e| WireError::Schema(format!("outcome: {e}")))?;
    let mut requirements = Vec::new();
    for r in field(v, "outcome", "requirements")?.arr("requirements")? {
        requirements.push(r.usize("requirement")?);
    }
    let mut efforts = Vec::new();
    for curve in field(v, "outcome", "efforts")?.arr("efforts")? {
        let mut c = Vec::new();
        for e in curve.arr("effort curve")? {
            c.push(e.f64("effort")?);
        }
        efforts.push(c);
    }
    let scaling = field(v, "outcome", "lp_scaling")?;
    reject_unknown(
        scaling,
        "lp_scaling",
        &["applied", "condition_before", "condition_after"],
    )?;
    Ok(SizingOutcome {
        allocation,
        efforts,
        requirements,
        predicted_loss_rate: field(v, "outcome", "predicted_loss_rate")?
            .f64("predicted_loss_rate")?,
        budget_shadow_price: field(v, "outcome", "budget_shadow_price")?
            .f64("budget_shadow_price")?,
        budget_row_relaxed: field(v, "outcome", "budget_row_relaxed")?
            .bool("budget_row_relaxed")?,
        lp_iterations: match v.get("lp_iterations") {
            Some(x) => x.usize("lp_iterations")?,
            None => 0,
        },
        lp_engine: lp_engine_from_tag(field(v, "outcome", "lp_engine")?.str("lp_engine")?)?,
        lp_scaling: ScalingStats {
            applied: field(scaling, "lp_scaling", "applied")?.bool("applied")?,
            condition_before: field(scaling, "lp_scaling", "condition_before")?
                .f64("condition_before")?,
            condition_after: field(scaling, "lp_scaling", "condition_after")?
                .f64("condition_after")?,
        },
    })
}

// ---------------------------------------------------------------------
// Sharding codecs: campaign manifests, chunk reports, basis snapshots
// ---------------------------------------------------------------------

/// FNV-1a 64-bit hash — the manifest's config-hash function. Chosen for
/// being trivially reimplementable anywhere (a shard written in another
/// language can verify a manifest), not for adversarial strength: the
/// hash detects *drift* (a coordinator and a shard disagreeing about
/// what campaign a chunk belongs to), it is not a signature.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders a config hash the way it travels: 16 lowercase hex digits
/// (as a JSON string — a raw `u64` would not survive the wire's
/// exact-integer-below-2⁵³ number model).
pub fn config_hash_to_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parses a config hash from its 16-hex-digit wire form; `what` names
/// the field in errors.
///
/// # Errors
///
/// [`WireError::Schema`] when `text` is not exactly 16 hex digits.
pub fn config_hash_from_hex(text: &str, what: &str) -> Result<u64, WireError> {
    if text.len() != 16 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(WireError::Schema(format!(
            "{what}: expected 16 hex digits, got \"{text}\""
        )));
    }
    u64::from_str_radix(text, 16)
        .map_err(|e| WireError::Schema(format!("{what}: invalid hash \"{text}\": {e}")))
}

/// One chunk's slice of a campaign's work list: the unit of scheduling,
/// locally (a `WorkPool` worker claims whole chunks) and remotely (a
/// coordinator dispatches whole chunks to shard servers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRange {
    /// Chunk index (position in the manifest's chunk list).
    pub chunk: usize,
    /// First work-item index covered (inclusive).
    pub start: usize,
    /// One past the last work-item index covered.
    pub end: usize,
}

/// The campaign a manifest describes: which sweep shape, over what
/// inputs. Mirrors `socbuf-sweep`'s `BudgetSweep` / `LoadSweep` /
/// `RandomCampaign` minus the simulation option — manifests describe
/// sizing-only campaigns (simulation campaigns remain single-host).
///
/// (No `PartialEq`: `Architecture` deliberately doesn't implement it —
/// manifest equality is rendered-bytes equality, compare `to_json`.)
#[derive(Debug, Clone)]
pub enum ManifestShape {
    /// A budget grid on one architecture.
    Budget {
        /// The architecture every point sizes.
        arch: Architecture,
        /// Budget grid, one work item per entry.
        budgets: Vec<usize>,
        /// Whether chunks run as warm-start chains (chunk-initial point
        /// cold, the rest warm) — must match the serial run a merge is
        /// compared against, since warm chains legitimately change
        /// per-point pivot counts.
        warm_start: bool,
    },
    /// A load-factor grid at one budget.
    Load {
        /// The nominal architecture.
        arch: Architecture,
        /// Buffer budget shared by every point.
        budget: usize,
        /// λ multipliers, one work item per entry.
        factors: Vec<f64>,
        /// See [`ManifestShape::Budget::warm_start`].
        warm_start: bool,
    },
    /// A random-architecture fan-out.
    Random {
        /// Generator knobs shared by every seed.
        params: RandomArchParams,
        /// Architecture seeds, one work item per entry.
        seeds: Vec<u64>,
        /// Budget granted per queue.
        units_per_queue: usize,
    },
}

impl ManifestShape {
    /// The campaign's stable kind tag (`"budget"`, `"load"`,
    /// `"random"`) — the same text `SweepKind::tag()` renders.
    pub fn kind_tag(&self) -> &'static str {
        match self {
            ManifestShape::Budget { .. } => "budget",
            ManifestShape::Load { .. } => "load",
            ManifestShape::Random { .. } => "random",
        }
    }

    /// Number of work items the campaign expands to.
    pub fn items(&self) -> usize {
        match self {
            ManifestShape::Budget { budgets, .. } => budgets.len(),
            ManifestShape::Load { factors, .. } => factors.len(),
            ManifestShape::Random { seeds, .. } => seeds.len(),
        }
    }

    /// Whether chunks execute as warm-start chains. Random campaigns
    /// never chain (every seed is a different architecture).
    pub fn warm_start(&self) -> bool {
        match self {
            ManifestShape::Budget { warm_start, .. } | ManifestShape::Load { warm_start, .. } => {
                *warm_start
            }
            ManifestShape::Random { .. } => false,
        }
    }

    /// The scheduling policy the shape's chunks must follow: warm
    /// chains use [`ChunkPolicy::WARM_CHAIN`], everything else
    /// [`ChunkPolicy::INDEPENDENT`]. Chunk boundaries are part of the
    /// campaign's *meaning* (a warm chain's pivot counts depend on
    /// where chains start), so the policy is derived, never chosen per
    /// execution site.
    pub fn chunk_policy(&self) -> ChunkPolicy {
        if self.warm_start() {
            ChunkPolicy::WARM_CHAIN
        } else {
            ChunkPolicy::INDEPENDENT
        }
    }

    fn validate(&self) -> Result<(), WireError> {
        let bad = |msg: &str| Err(WireError::Schema(format!("manifest: {msg}")));
        match self {
            ManifestShape::Budget { budgets, .. } if budgets.is_empty() => bad("empty budget grid"),
            ManifestShape::Load { factors, .. } if factors.is_empty() => bad("empty factor grid"),
            ManifestShape::Random { seeds, .. } if seeds.is_empty() => bad("empty seed list"),
            ManifestShape::Random {
                units_per_queue: 0, ..
            } => bad("units_per_queue must be ≥ 1"),
            _ => Ok(()),
        }
    }
}

/// A sharded campaign's contract: the campaign itself (shape + sizing
/// config), the chunk partition of its work list, and a config hash
/// that pins chunk reports to exactly this campaign.
///
/// The chunk list is stored explicitly *and* required to be a
/// boundary-aligned partition under the shape's [`ChunkPolicy`] — the
/// policy's own partition by default, or a coarsening of it (each
/// chunk a union of consecutive policy chunks) from adaptive
/// re-chunking. Explicit so a reducer can verify coverage without
/// re-deriving anything, constrained so every shard assignment of
/// these chunks merges byte-identically with the serial single-host
/// run (warm-chain boundaries are part of the bytes).
///
/// (No `PartialEq`, like [`ManifestShape`]: compare `to_json` bytes.)
#[derive(Debug, Clone)]
pub struct CampaignManifest {
    /// The campaign: sweep shape and inputs.
    pub shape: ManifestShape,
    /// Sizing configuration shared by every point.
    pub config: SizingConfig,
    /// Items per chunk (the shape's [`ChunkPolicy`] length).
    pub chunk_len: usize,
    /// The exact partition of `0..items` into chunks.
    pub chunks: Vec<ChunkRange>,
    /// FNV-1a 64 hash of the canonical `"campaign"` JSON text (shape +
    /// config). Chunk reports carry the same hash; the reducer refuses
    /// to merge reports whose hash disagrees with the manifest's.
    pub config_hash: u64,
}

impl CampaignManifest {
    /// Builds the manifest for a campaign: chunks derived from the
    /// shape's [`ChunkPolicy`], hash computed over the canonical
    /// campaign rendering.
    ///
    /// # Errors
    ///
    /// [`WireError::Schema`] for unusable campaigns (empty grids, zero
    /// per-queue budget) — the same refusals the campaign itself makes
    /// at run time.
    pub fn new(shape: ManifestShape, config: SizingConfig) -> Result<CampaignManifest, WireError> {
        shape.validate()?;
        let policy = shape.chunk_policy();
        let chunks = policy
            .ranges(shape.items())
            .into_iter()
            .enumerate()
            .map(|(chunk, r)| ChunkRange {
                chunk,
                start: r.start,
                end: r.end,
            })
            .collect();
        let mut manifest = CampaignManifest {
            shape,
            config,
            chunk_len: policy.chunk_len(),
            chunks,
            config_hash: 0,
        };
        manifest.config_hash = fnv1a_64(manifest.campaign_json().as_bytes());
        Ok(manifest)
    }

    /// Number of work items the campaign expands to.
    pub fn items(&self) -> usize {
        self.shape.items()
    }

    /// The canonical campaign subdocument — exactly the bytes the
    /// config hash covers.
    fn campaign_json(&self) -> String {
        let mut out = String::from("{\"kind\":");
        push_str(&mut out, self.shape.kind_tag());
        match &self.shape {
            ManifestShape::Budget {
                arch,
                budgets,
                warm_start,
            } => {
                out.push_str(",\"arch\":");
                out.push_str(&architecture_to_json(arch));
                out.push_str(",\"config\":");
                out.push_str(&sizing_config_to_json(&self.config));
                out.push_str(",\"budgets\":[");
                for (i, b) in budgets.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_usize(&mut out, *b);
                }
                out.push_str("],\"warm_start\":");
                out.push_str(if *warm_start { "true" } else { "false" });
            }
            ManifestShape::Load {
                arch,
                budget,
                factors,
                warm_start,
            } => {
                out.push_str(",\"arch\":");
                out.push_str(&architecture_to_json(arch));
                out.push_str(",\"config\":");
                out.push_str(&sizing_config_to_json(&self.config));
                out.push_str(",\"budget\":");
                push_usize(&mut out, *budget);
                out.push_str(",\"factors\":[");
                for (i, f) in factors.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_f64(&mut out, *f);
                }
                out.push_str("],\"warm_start\":");
                out.push_str(if *warm_start { "true" } else { "false" });
            }
            ManifestShape::Random {
                params,
                seeds,
                units_per_queue,
            } => {
                out.push_str(",\"config\":");
                out.push_str(&sizing_config_to_json(&self.config));
                out.push_str(",\"params\":");
                out.push_str(&random_params_to_json(params));
                out.push_str(",\"seeds\":[");
                for (i, s) in seeds.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{s}");
                }
                out.push_str("],\"units_per_queue\":");
                push_usize(&mut out, *units_per_queue);
            }
        }
        out.push('}');
        out
    }

    /// Serializes the manifest as canonical JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"campaign\":");
        out.push_str(&self.campaign_json());
        out.push_str(",\"chunk_len\":");
        push_usize(&mut out, self.chunk_len);
        out.push_str(",\"chunks\":[");
        for (i, c) in self.chunks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"chunk\":");
            push_usize(&mut out, c.chunk);
            out.push_str(",\"start\":");
            push_usize(&mut out, c.start);
            out.push_str(",\"end\":");
            push_usize(&mut out, c.end);
            out.push('}');
        }
        out.push_str("],\"config_hash\":");
        push_str(&mut out, &config_hash_to_hex(self.config_hash));
        out.push('}');
        out
    }

    /// Parses and fully re-validates a manifest: the campaign must be
    /// usable, the config hash must match a recomputation over the
    /// canonical campaign rendering (a stale hash — reports pinned to
    /// an edited campaign — is rejected), and the chunk list must be a
    /// boundary-aligned partition under the shape's [`ChunkPolicy`]
    /// (gaps, overlaps, misnumbered or misaligned chunks are each
    /// named in the error).
    ///
    /// # Errors
    ///
    /// [`WireError::Schema`] describing the first violation.
    pub fn from_json(v: &JsonValue) -> Result<CampaignManifest, WireError> {
        reject_unknown(
            v,
            "manifest",
            &["campaign", "chunk_len", "chunks", "config_hash"],
        )?;
        let campaign = field(v, "manifest", "campaign")?;
        let shape = Self::shape_from_json(campaign)?;
        shape.validate()?;
        let config = sizing_config_from_json(field(campaign, "campaign", "config")?)?;

        let declared_hash = config_hash_from_hex(
            field(v, "manifest", "config_hash")?.str("config_hash")?,
            "config_hash",
        )?;
        let chunk_len = field(v, "manifest", "chunk_len")?.usize("chunk_len")?;
        if chunk_len == 0 {
            return Err(WireError::Schema("manifest: chunk_len must be ≥ 1".into()));
        }
        let mut chunks = Vec::new();
        for (i, c) in field(v, "manifest", "chunks")?
            .arr("chunks")?
            .iter()
            .enumerate()
        {
            let what = format!("chunks[{i}]");
            reject_unknown(c, &what, &["chunk", "start", "end"])?;
            chunks.push(ChunkRange {
                chunk: field(c, &what, "chunk")?.usize("chunk")?,
                start: field(c, &what, "start")?.usize("start")?,
                end: field(c, &what, "end")?.usize("end")?,
            });
        }

        let manifest = CampaignManifest {
            shape,
            config,
            chunk_len,
            chunks,
            config_hash: declared_hash,
        };

        // Hash check: recompute over the canonical campaign rendering.
        // (The parsed subtree re-renders to the exact original bytes —
        // objects preserve key order — so a matching hash really does
        // pin the same campaign text.)
        let recomputed = fnv1a_64(manifest.campaign_json().as_bytes());
        if recomputed != declared_hash {
            return Err(WireError::Schema(format!(
                "manifest: stale config hash: declared {} but campaign hashes to {}",
                config_hash_to_hex(declared_hash),
                config_hash_to_hex(recomputed)
            )));
        }
        manifest.validate_chunks()?;
        Ok(manifest)
    }

    fn shape_from_json(campaign: &JsonValue) -> Result<ManifestShape, WireError> {
        let kind = field(campaign, "campaign", "kind")?.str("kind")?;
        match kind {
            "budget" => {
                reject_unknown(
                    campaign,
                    "campaign",
                    &["kind", "arch", "config", "budgets", "warm_start"],
                )?;
                let arch = architecture_from_json(field(campaign, "campaign", "arch")?)?;
                let mut budgets = Vec::new();
                for b in field(campaign, "campaign", "budgets")?.arr("budgets")? {
                    budgets.push(b.usize("budget")?);
                }
                Ok(ManifestShape::Budget {
                    arch,
                    budgets,
                    warm_start: field(campaign, "campaign", "warm_start")?.bool("warm_start")?,
                })
            }
            "load" => {
                reject_unknown(
                    campaign,
                    "campaign",
                    &["kind", "arch", "config", "budget", "factors", "warm_start"],
                )?;
                let arch = architecture_from_json(field(campaign, "campaign", "arch")?)?;
                let mut factors = Vec::new();
                for f in field(campaign, "campaign", "factors")?.arr("factors")? {
                    factors.push(f.finite_f64("factor")?);
                }
                Ok(ManifestShape::Load {
                    arch,
                    budget: field(campaign, "campaign", "budget")?.usize("budget")?,
                    factors,
                    warm_start: field(campaign, "campaign", "warm_start")?.bool("warm_start")?,
                })
            }
            "random" => {
                reject_unknown(
                    campaign,
                    "campaign",
                    &["kind", "config", "params", "seeds", "units_per_queue"],
                )?;
                let mut seeds = Vec::new();
                for s in field(campaign, "campaign", "seeds")?.arr("seeds")? {
                    seeds.push(s.u64("seed")?);
                }
                Ok(ManifestShape::Random {
                    params: random_params_from_json(field(campaign, "campaign", "params")?)?,
                    seeds,
                    units_per_queue: field(campaign, "campaign", "units_per_queue")?
                        .usize("units_per_queue")?,
                })
            }
            other => Err(WireError::Schema(format!(
                "campaign: unknown kind \"{other}\""
            ))),
        }
    }

    /// Rebuilds the manifest with an explicit chunk partition — the
    /// entry point for adaptive re-chunking, which merges consecutive
    /// policy chunks into longer warm chains. The partition must be a
    /// boundary-aligned coarsening of the shape's [`ChunkPolicy`]
    /// partition (`validate_chunks` enforces this on parse too); the
    /// config hash is unchanged by construction, because chunking is
    /// not part of the hashed campaign text.
    ///
    /// # Errors
    ///
    /// [`WireError::Schema`] for unusable campaigns or a partition the
    /// scheduling policy cannot align with.
    pub fn with_chunks(
        shape: ManifestShape,
        config: SizingConfig,
        ranges: Vec<std::ops::Range<usize>>,
    ) -> Result<CampaignManifest, WireError> {
        let mut manifest = CampaignManifest::new(shape, config)?;
        manifest.chunks = ranges
            .into_iter()
            .enumerate()
            .map(|(chunk, r)| ChunkRange {
                chunk,
                start: r.start,
                end: r.end,
            })
            .collect();
        manifest.validate_chunks()?;
        Ok(manifest)
    }

    /// Verifies the chunk list is a valid partition for the shape's
    /// scheduling policy: chunks numbered contiguously from 0, ranges
    /// non-empty and gap-free, and every boundary on a chain boundary
    /// of the policy — i.e. each chunk is a union of consecutive policy
    /// chunks. The policy's own partition is the finest accepted form;
    /// adaptive re-chunking produces coarser ones.
    fn validate_chunks(&self) -> Result<(), WireError> {
        let policy = self.shape.chunk_policy();
        if self.chunk_len != policy.chunk_len() {
            return Err(WireError::Schema(format!(
                "manifest: chunk_len {} does not match the campaign's scheduling policy ({})",
                self.chunk_len,
                policy.chunk_len()
            )));
        }
        let items = self.shape.items();
        let mut next = 0usize;
        for (i, c) in self.chunks.iter().enumerate() {
            if c.chunk != i {
                return Err(WireError::Schema(format!(
                    "manifest: chunks[{i}] is numbered {}, chunk indices must be contiguous from 0",
                    c.chunk
                )));
            }
            if c.start < next {
                return Err(WireError::Schema(format!(
                    "manifest: chunk {i} starts at {} — overlapping chunk ranges (chunk {} ends at {next})",
                    c.start,
                    i.wrapping_sub(1),
                )));
            }
            if c.start > next {
                return Err(WireError::Schema(format!(
                    "manifest: chunk {i} starts at {} — coverage gap before it (expected start {next})",
                    c.start
                )));
            }
            if c.end <= c.start {
                return Err(WireError::Schema(format!(
                    "manifest: chunk {i} is empty ({}..{})",
                    c.start, c.end
                )));
            }
            if !policy.is_chain_boundary(c.end, items) {
                return Err(WireError::Schema(format!(
                    "manifest: chunk {i} ends at {} but the scheduling policy requires a multiple of {} or the tail ({items})",
                    c.end,
                    policy.chunk_len()
                )));
            }
            next = c.end;
        }
        if next != items {
            return Err(WireError::Schema(format!(
                "manifest: chunks cover 0..{next} — coverage gap before the campaign's {items} items"
            )));
        }
        Ok(())
    }
}

/// Serializes [`RandomArchParams`] as canonical JSON.
pub fn random_params_to_json(p: &RandomArchParams) -> String {
    let mut out = String::from("{\"buses\":");
    push_usize(&mut out, p.buses);
    out.push_str(",\"processors\":");
    push_usize(&mut out, p.processors);
    out.push_str(",\"bridges\":");
    push_usize(&mut out, p.bridges);
    out.push_str(",\"flows\":");
    push_usize(&mut out, p.flows);
    out.push_str(",\"bus_rate_range\":[");
    push_f64(&mut out, p.bus_rate_range.0);
    out.push(',');
    push_f64(&mut out, p.bus_rate_range.1);
    out.push_str("],\"flow_rate_range\":[");
    push_f64(&mut out, p.flow_rate_range.0);
    out.push(',');
    push_f64(&mut out, p.flow_rate_range.1);
    out.push_str("],\"multi_home_prob\":");
    push_f64(&mut out, p.multi_home_prob);
    out.push('}');
    out
}

fn range_from_json(v: &JsonValue, what: &str) -> Result<(f64, f64), WireError> {
    let items = v.arr(what)?;
    if items.len() != 2 {
        return Err(WireError::Schema(format!(
            "{what}: expected a two-element range, got {} elements",
            items.len()
        )));
    }
    Ok((items[0].finite_f64(what)?, items[1].finite_f64(what)?))
}

/// Parses [`RandomArchParams`]. All fields are required; the
/// generator's own assertions (positive counts, ordered ranges) still
/// apply when the params are used.
///
/// # Errors
///
/// [`WireError::Schema`] for shape mismatches.
pub fn random_params_from_json(v: &JsonValue) -> Result<RandomArchParams, WireError> {
    reject_unknown(
        v,
        "params",
        &[
            "buses",
            "processors",
            "bridges",
            "flows",
            "bus_rate_range",
            "flow_rate_range",
            "multi_home_prob",
        ],
    )?;
    Ok(RandomArchParams {
        buses: field(v, "params", "buses")?.usize("buses")?,
        processors: field(v, "params", "processors")?.usize("processors")?,
        bridges: field(v, "params", "bridges")?.usize("bridges")?,
        flows: field(v, "params", "flows")?.usize("flows")?,
        bus_rate_range: range_from_json(field(v, "params", "bus_rate_range")?, "bus_rate_range")?,
        flow_rate_range: range_from_json(
            field(v, "params", "flow_rate_range")?,
            "flow_rate_range",
        )?,
        multi_home_prob: field(v, "params", "multi_home_prob")?.finite_f64("multi_home_prob")?,
    })
}

/// One executed chunk's results, as they travel from a shard back to
/// the coordinator: the chunk's identity (campaign hash, kind, range)
/// plus the point records as opaque JSON objects (the sweep layer owns
/// the point schema; this codec only guarantees framing, coverage
/// metadata, and per-point index integrity).
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkReport {
    /// The manifest's config hash — pins the report to its campaign.
    pub config_hash: u64,
    /// The campaign kind tag (`"budget"`, `"load"`, `"random"`).
    pub kind: String,
    /// Chunk index within the manifest.
    pub chunk: usize,
    /// First work-item index covered (inclusive).
    pub start: usize,
    /// One past the last work-item index covered.
    pub end: usize,
    /// One point object per item, in item order. Point objects carry no
    /// `frontier` field — the frontier is a *global* property of the
    /// merged report, recomputed by the reducer.
    pub points: Vec<JsonValue>,
}

impl ChunkReport {
    /// Serializes the report as one canonical JSON object.
    pub fn to_json(&self) -> String {
        let mut out = self.header_json();
        out.pop(); // strip the closing '}' to append the points inline
        out.push_str(",\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            p.push(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// The chunk-tagged JSONL rendering: a header line naming the chunk
    /// (and how many point lines follow), then one self-contained point
    /// object per line — streamable, byte-stable, and safely
    /// concatenable across chunks because every line says which chunk
    /// and campaign it belongs to via the header above it.
    pub fn to_jsonl(&self) -> String {
        let mut out = self.header_json();
        out.push('\n');
        for p in &self.points {
            p.push(&mut out);
            out.push('\n');
        }
        out
    }

    fn header_json(&self) -> String {
        let mut out = String::from("{\"chunk\":");
        push_usize(&mut out, self.chunk);
        out.push_str(",\"kind\":");
        push_str(&mut out, &self.kind);
        out.push_str(",\"config_hash\":");
        push_str(&mut out, &config_hash_to_hex(self.config_hash));
        out.push_str(",\"start\":");
        push_usize(&mut out, self.start);
        out.push_str(",\"end\":");
        push_usize(&mut out, self.end);
        out.push('}');
        out
    }

    /// Parses the single-object rendering.
    ///
    /// # Errors
    ///
    /// [`WireError::Schema`] for shape violations: an empty or reversed
    /// range, a point count that disagrees with the range, a point
    /// whose `index` is not `start + position`, or a point carrying a
    /// `frontier` field (which only the merged report may have).
    pub fn from_json(v: &JsonValue) -> Result<ChunkReport, WireError> {
        reject_unknown(
            v,
            "chunk report",
            &["chunk", "kind", "config_hash", "start", "end", "points"],
        )?;
        let points = field(v, "chunk report", "points")?.arr("points")?.to_vec();
        Self::assemble(v, points)
    }

    /// Parses the chunk-tagged JSONL rendering (header line + one point
    /// per line).
    ///
    /// # Errors
    ///
    /// [`WireError`] for malformed lines, a missing header, or a point
    /// count that disagrees with the header's range.
    pub fn from_jsonl(text: &str) -> Result<ChunkReport, WireError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| WireError::Schema("chunk report: empty document".into()))?;
        let header = JsonValue::parse(header)?;
        reject_unknown(
            &header,
            "chunk report",
            &["chunk", "kind", "config_hash", "start", "end"],
        )?;
        let mut points = Vec::new();
        for line in lines {
            points.push(JsonValue::parse(line)?);
        }
        Self::assemble(&header, points)
    }

    fn assemble(header: &JsonValue, points: Vec<JsonValue>) -> Result<ChunkReport, WireError> {
        let kind = field(header, "chunk report", "kind")?.str("kind")?;
        if !matches!(kind, "budget" | "load" | "random") {
            return Err(WireError::Schema(format!(
                "chunk report: unknown kind \"{kind}\""
            )));
        }
        let report = ChunkReport {
            config_hash: config_hash_from_hex(
                field(header, "chunk report", "config_hash")?.str("config_hash")?,
                "config_hash",
            )?,
            kind: kind.to_string(),
            chunk: field(header, "chunk report", "chunk")?.usize("chunk")?,
            start: field(header, "chunk report", "start")?.usize("start")?,
            end: field(header, "chunk report", "end")?.usize("end")?,
            points,
        };
        if report.end <= report.start {
            return Err(WireError::Schema(format!(
                "chunk report: empty range {}..{}",
                report.start, report.end
            )));
        }
        if report.points.len() != report.end - report.start {
            return Err(WireError::Schema(format!(
                "chunk report: range {}..{} needs {} points, got {}",
                report.start,
                report.end,
                report.end - report.start,
                report.points.len()
            )));
        }
        for (i, p) in report.points.iter().enumerate() {
            let what = format!("points[{i}]");
            let index = field(p, &what, "index")?.usize("index")?;
            if index != report.start + i {
                return Err(WireError::Schema(format!(
                    "chunk report: {what} has index {index}, expected {}",
                    report.start + i
                )));
            }
            if p.get("frontier").is_some() {
                return Err(WireError::Schema(format!(
                    "chunk report: {what} carries a \"frontier\" flag — the frontier is a \
                     global property only the merged report may render"
                )));
            }
        }
        Ok(report)
    }
}

/// Incremental twin of [`ChunkReport::to_jsonl`]: emits the report's
/// lines one at a time — header first, then one point per call — so a
/// shard can stream a chunk onto a socket or into a file as points are
/// produced, without ever materializing the whole report string. The
/// concatenation of the emitted lines is byte-identical to
/// `to_jsonl()` on the assembled report.
///
/// The writer enforces the same invariants [`ChunkReport::from_jsonl`]
/// checks on arrival (kind tag, non-empty range, in-order indices, no
/// `frontier` field, exact point count), so a completed emission is
/// always parseable.
pub struct ChunkJsonlWriter {
    header: ChunkReport,
    written: usize,
}

impl ChunkJsonlWriter {
    /// A writer for one chunk's identity. Validates what can be
    /// validated up front.
    ///
    /// # Errors
    ///
    /// [`WireError::Schema`] for an unknown kind tag or an empty
    /// range.
    pub fn new(
        config_hash: u64,
        kind: &str,
        chunk: usize,
        start: usize,
        end: usize,
    ) -> Result<ChunkJsonlWriter, WireError> {
        if !matches!(kind, "budget" | "load" | "random") {
            return Err(WireError::Schema(format!(
                "chunk report: unknown kind \"{kind}\""
            )));
        }
        if end <= start {
            return Err(WireError::Schema(format!(
                "chunk report: empty range {start}..{end}"
            )));
        }
        Ok(ChunkJsonlWriter {
            header: ChunkReport {
                config_hash,
                kind: kind.to_string(),
                chunk,
                start,
                end,
                points: Vec::new(),
            },
            written: 0,
        })
    }

    /// The header line (newline-terminated). Emit exactly once, before
    /// any point line.
    pub fn header_line(&self) -> String {
        let mut out = self.header.header_json();
        out.push('\n');
        out
    }

    /// Renders the next point's line (newline-terminated). Points must
    /// arrive in item order.
    ///
    /// # Errors
    ///
    /// [`WireError::Schema`] when the chunk is already full, the
    /// point's `index` is not the next item index, or the point
    /// carries a `frontier` field.
    pub fn point_line(&mut self, point: &JsonValue) -> Result<String, WireError> {
        let need = self.header.end - self.header.start;
        if self.written == need {
            return Err(WireError::Schema(format!(
                "chunk report: range {}..{} needs {} points, got {}",
                self.header.start,
                self.header.end,
                need,
                need + 1
            )));
        }
        let what = format!("points[{}]", self.written);
        let index = field(point, &what, "index")?.usize("index")?;
        if index != self.header.start + self.written {
            return Err(WireError::Schema(format!(
                "chunk report: {what} has index {index}, expected {}",
                self.header.start + self.written
            )));
        }
        if point.get("frontier").is_some() {
            return Err(WireError::Schema(format!(
                "chunk report: {what} carries a \"frontier\" flag — the frontier is a \
                 global property only the merged report may render"
            )));
        }
        self.written += 1;
        let mut out = String::new();
        point.push(&mut out);
        out.push('\n');
        Ok(out)
    }

    /// Point lines still owed before the emission is complete.
    pub fn remaining(&self) -> usize {
        (self.header.end - self.header.start) - self.written
    }

    /// Verifies the emission is complete (every point line emitted).
    ///
    /// # Errors
    ///
    /// [`WireError::Schema`] naming the shortfall.
    pub fn finish(self) -> Result<(), WireError> {
        let need = self.header.end - self.header.start;
        if self.written != need {
            return Err(WireError::Schema(format!(
                "chunk report: range {}..{} needs {} points, got {}",
                self.header.start, self.header.end, need, self.written
            )));
        }
        Ok(())
    }
}

/// One parsed line of a chunk's JSONL rendering, as
/// [`ChunkJsonlReader`] hands it back.
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkLine {
    /// The header line: the chunk's identity.
    Header {
        /// The campaign's config hash.
        config_hash: u64,
        /// The campaign kind tag.
        kind: String,
        /// Chunk index within the manifest.
        chunk: usize,
        /// First work-item index covered (inclusive).
        start: usize,
        /// One past the last work-item index covered.
        end: usize,
    },
    /// A point line, already index-checked against its position.
    Point {
        /// The point's work-item index.
        index: usize,
        /// The point object (opaque to this codec, minus the checked
        /// `index` and rejected `frontier` fields).
        point: JsonValue,
    },
}

/// Incremental twin of [`ChunkReport::from_jsonl`]: feed it one line at
/// a time and get back the parsed header or point immediately, with the
/// same validations the batch parser applies — but holding only
/// counters, never the accumulated report. A consumer that forwards
/// each point as it arrives (a streaming reducer, a renderer) runs in
/// constant memory per chunk.
pub struct ChunkJsonlReader {
    range: Option<(usize, usize)>,
    seen: usize,
}

impl Default for ChunkJsonlReader {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkJsonlReader {
    /// A reader expecting a header line first.
    pub fn new() -> ChunkJsonlReader {
        ChunkJsonlReader {
            range: None,
            seen: 0,
        }
    }

    /// Parses and validates the next line.
    ///
    /// # Errors
    ///
    /// [`WireError`] for malformed JSON, a bad header (unknown kind,
    /// empty range), an out-of-order point index, a `frontier` field,
    /// or more point lines than the header's range allows.
    pub fn push_line(&mut self, line: &str) -> Result<ChunkLine, WireError> {
        let v = JsonValue::parse(line)?;
        let Some((start, end)) = self.range else {
            reject_unknown(
                &v,
                "chunk report",
                &["chunk", "kind", "config_hash", "start", "end"],
            )?;
            let kind = field(&v, "chunk report", "kind")?.str("kind")?;
            if !matches!(kind, "budget" | "load" | "random") {
                return Err(WireError::Schema(format!(
                    "chunk report: unknown kind \"{kind}\""
                )));
            }
            let start = field(&v, "chunk report", "start")?.usize("start")?;
            let end = field(&v, "chunk report", "end")?.usize("end")?;
            if end <= start {
                return Err(WireError::Schema(format!(
                    "chunk report: empty range {start}..{end}"
                )));
            }
            self.range = Some((start, end));
            return Ok(ChunkLine::Header {
                config_hash: config_hash_from_hex(
                    field(&v, "chunk report", "config_hash")?.str("config_hash")?,
                    "config_hash",
                )?,
                kind: kind.to_string(),
                chunk: field(&v, "chunk report", "chunk")?.usize("chunk")?,
                start,
                end,
            });
        };
        if self.seen == end - start {
            return Err(WireError::Schema(format!(
                "chunk report: range {start}..{end} needs {} points, got {}",
                end - start,
                end - start + 1
            )));
        }
        let what = format!("points[{}]", self.seen);
        let index = field(&v, &what, "index")?.usize("index")?;
        if index != start + self.seen {
            return Err(WireError::Schema(format!(
                "chunk report: {what} has index {index}, expected {}",
                start + self.seen
            )));
        }
        if v.get("frontier").is_some() {
            return Err(WireError::Schema(format!(
                "chunk report: {what} carries a \"frontier\" flag — the frontier is a \
                 global property only the merged report may render"
            )));
        }
        self.seen += 1;
        Ok(ChunkLine::Point { index, point: v })
    }

    /// Whether the header arrived and every point line with it.
    pub fn is_complete(&self) -> bool {
        matches!(self.range, Some((start, end)) if self.seen == end - start)
    }

    /// Verifies the document was complete.
    ///
    /// # Errors
    ///
    /// [`WireError::Schema`] for a missing header (`"empty document"`)
    /// or a point-count shortfall.
    pub fn finish(self) -> Result<(), WireError> {
        let Some((start, end)) = self.range else {
            return Err(WireError::Schema("chunk report: empty document".into()));
        };
        if self.seen != end - start {
            return Err(WireError::Schema(format!(
                "chunk report: range {start}..{end} needs {} points, got {}",
                end - start,
                self.seen
            )));
        }
        Ok(())
    }
}

/// Serializes a [`BasisSnapshot`] as canonical JSON — how a coordinator
/// ships a warm basis to a shard. Inactive rows (`usize::MAX`) travel
/// as `null`.
pub fn basis_snapshot_to_json(s: &BasisSnapshot) -> String {
    let mut out = String::from("{\"basis\":[");
    for (i, &col) in s.rows().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if col == usize::MAX {
            out.push_str("null");
        } else {
            push_usize(&mut out, col);
        }
    }
    out.push_str("],\"cols\":");
    push_usize(&mut out, s.num_cols());
    out.push_str(",\"engine\":");
    push_str(&mut out, &s.engine().to_string());
    out.push('}');
    out
}

/// Parses a [`BasisSnapshot`]. Every basic column must lie below
/// `cols`; `null` entries mark inactive rows. A *shape-plausible but
/// stale* snapshot still parses — staleness against a concrete LP is
/// detected at import by the solver, which falls back cold, so a bad
/// snapshot can cost time but never change an answer.
///
/// # Errors
///
/// [`WireError::Schema`] for non-objects, unknown engines, or basis
/// entries at or beyond `cols`.
pub fn basis_snapshot_from_json(v: &JsonValue) -> Result<BasisSnapshot, WireError> {
    reject_unknown(v, "snapshot", &["basis", "cols", "engine"])?;
    let cols = field(v, "snapshot", "cols")?.usize("cols")?;
    let mut basis = Vec::new();
    for (i, entry) in field(v, "snapshot", "basis")?
        .arr("basis")?
        .iter()
        .enumerate()
    {
        let col = match entry {
            JsonValue::Null => usize::MAX,
            other => {
                let col = other.usize("basis entry")?;
                if col >= cols {
                    return Err(WireError::Schema(format!(
                        "snapshot: basis[{i}] = {col} is out of range for {cols} columns"
                    )));
                }
                col
            }
        };
        basis.push(col);
    }
    let engine = lp_engine_from_tag(field(v, "snapshot", "engine")?.str("engine")?)?;
    Ok(BasisSnapshot::new(basis, cols, engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{size_buffers, SizingConfig};
    use socbuf_soc::templates;

    #[test]
    fn f64_writer_handles_non_finite_and_roundtrips_finite() {
        for (v, expect) in [
            (1.5, "1.5"),
            (0.0, "0"),
            (-0.0, "-0"),
            (f64::NAN, "null"),
            (f64::INFINITY, "null"),
            (f64::NEG_INFINITY, "null"),
        ] {
            let mut out = String::new();
            push_f64(&mut out, v);
            assert_eq!(out, expect, "{v}");
        }
        // Shortest-round-trip Display: parse(render(x)) is bitwise x.
        for v in [0.1, 2.0 / 3.0, 1.2345678901234567e18, 5e-324] {
            let mut out = String::new();
            push_f64(&mut out, v);
            let back = out.parse::<f64>().unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn string_escaping_roundtrips() {
        let nasty = "quote\" backslash\\ newline\n tab\t nul\u{0} bell\u{7} \
                     unicode λµ😀 del\u{7f} \u{08}\u{0c}\r";
        let mut out = String::new();
        push_str(&mut out, nasty);
        assert!(!out.contains('\n'), "control chars must be escaped");
        let parsed = JsonValue::parse(&out).unwrap();
        assert_eq!(parsed, JsonValue::Str(nasty.to_string()));
    }

    #[test]
    fn parser_accepts_standard_json() {
        let v = JsonValue::parse(
            r#" { "a" : [ 1 , -2.5e3 , null , true ] , "b" : { "c" : "\u0041\ud83d\ude00" } } "#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().arr("a").unwrap().len(), 4);
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().str("c").unwrap(),
            "A😀"
        );
        // Canonical re-render is stable: render(parse(render(x))) == render(x).
        let canon = v.render();
        assert_eq!(JsonValue::parse(&canon).unwrap().render(), canon);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,\"a\":2}",
            "nul",
            "\"unterminated",
            "\"bad escape \\x\"",
            "\"\\ud800 unpaired\"",
            "1e999",
            "NaN",
            "inf",
            "01x",
            "[1] trailing",
            "{\"a\" 1}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted: {bad:?}");
        }
        // Depth bomb exhausts the counter, not the stack.
        let bomb = "[".repeat(100_000);
        assert!(JsonValue::parse(&bomb).is_err());
    }

    #[test]
    fn architecture_roundtrips_through_json() {
        for arch in [
            templates::figure1(),
            templates::amba(),
            templates::coreconnect(),
            templates::network_processor(),
        ] {
            let json = architecture_to_json(&arch);
            let parsed = JsonValue::parse(&json).unwrap();
            let back = architecture_from_json(&parsed).unwrap();
            // Canonical serialization is the equality witness: the
            // decoded architecture re-serializes byte-identically…
            assert_eq!(architecture_to_json(&back), json);
            // …and behaves identically end to end.
            let cfg = SizingConfig::small();
            let a = size_buffers(&arch, 16, &cfg).unwrap();
            let b = size_buffers(&back, 16, &cfg).unwrap();
            assert_eq!(a.allocation.as_slice(), b.allocation.as_slice());
            assert_eq!(a.lp_iterations, b.lp_iterations);
            assert_eq!(
                a.predicted_loss_rate.to_bits(),
                b.predicted_loss_rate.to_bits()
            );
        }
    }

    #[test]
    fn architecture_with_hostile_names_roundtrips() {
        let mut b = socbuf_soc::ArchitectureBuilder::new();
        let x = b.add_bus("bus \"zero\"\\\n", 1.0).unwrap();
        let y = b.add_bus("μ-bus\t", 2.0).unwrap();
        let p = b.add_processor("p\u{1}🚌", &[x], 1.5).unwrap();
        b.add_bridge("br\ridge", x, y).unwrap();
        b.add_flow(p, FlowTarget::Bus(y), 0.25).unwrap();
        let arch = b.build().unwrap();
        let json = architecture_to_json(&arch);
        let back = architecture_from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(architecture_to_json(&back), json);
        assert_eq!(
            back.bus(back.bus_ids().next().unwrap()).name(),
            "bus \"zero\"\\\n"
        );
    }

    #[test]
    fn architecture_schema_violations_are_rejected() {
        let good = architecture_to_json(&templates::amba());
        for (mutate, why) in [
            (good.replace("\"flows\"", "\"streams\""), "unknown field"),
            (
                good.replace("\"service_rate\":2", "\"service_rate\":null"),
                "null rate",
            ),
            (good.replace("\"from\":0", "\"from\":99"), "bus index range"),
            (good.replace("\"src\":0", "\"src\":99"), "proc index range"),
            (
                good.replace("\"rate\":0.8", "\"rate\":-0.8"),
                "negative rate",
            ),
            (
                good.replace("\"rate\":0.8", "\"rate\":\"fast\""),
                "rate type",
            ),
        ] {
            assert_ne!(mutate, good, "mutation was a no-op ({why})");
            let parsed = match JsonValue::parse(&mutate) {
                Ok(p) => p,
                Err(_) => continue, // mutation broke the JSON itself — fine
            };
            assert!(
                architecture_from_json(&parsed).is_err(),
                "accepted mutation ({why})"
            );
        }
    }

    #[test]
    fn plain_architectures_never_emit_extended_keys() {
        // Default semantics stay off the wire, so documents produced
        // before the extended declarations existed parse unchanged and
        // plain architectures keep their historical canonical bytes.
        for arch in [
            templates::figure1(),
            templates::amba(),
            templates::coreconnect(),
            templates::network_processor(),
        ] {
            let json = architecture_to_json(&arch);
            for key in ["arbitration", "latency", "shape"] {
                assert!(
                    !json.contains(&format!("\"{key}\"")),
                    "plain architecture emitted \"{key}\": {json}"
                );
            }
        }
    }

    #[test]
    fn extended_architecture_roundtrips_through_json() {
        use socbuf_soc::{BusArbitration, TrafficShape};
        let mut b = socbuf_soc::ArchitectureBuilder::new();
        let x = b
            .add_bus_with_arbitration("x", 2.0, BusArbitration::Priority)
            .unwrap();
        let y = b
            .add_bus_with_arbitration("y", 3.0, BusArbitration::Locked { max_batch: 4 })
            .unwrap();
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        let q = b.add_processor("q", &[y], 1.0).unwrap();
        b.add_bridge_with_latency("g", x, y, 0.125).unwrap();
        b.add_flow_shaped(
            p,
            FlowTarget::Processor(q),
            0.5,
            TrafficShape::Burst { batch: 6 },
        )
        .unwrap();
        b.add_flow_shaped(
            q,
            FlowTarget::Bus(y),
            0.25,
            TrafficShape::OnOff {
                mean_on: 2.0,
                mean_off: 8.0,
            },
        )
        .unwrap();
        let arch = b.build().unwrap();
        assert!(arch.uses_extended_semantics());

        let json = architecture_to_json(&arch);
        let back = architecture_from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(architecture_to_json(&back), json);

        // The declarations survive the trip semantically too.
        let buses: Vec<_> = back.bus_ids().map(|b| back.bus(b).arbitration()).collect();
        assert_eq!(
            buses,
            [
                BusArbitration::Priority,
                BusArbitration::Locked { max_batch: 4 }
            ]
        );
        let g = back.bridge_ids().next().unwrap();
        assert_eq!(back.bridge(g).latency(), 0.125);
        let shapes: Vec<_> = back.flow_ids().map(|f| back.flow(f).shape()).collect();
        assert_eq!(
            shapes,
            [
                TrafficShape::Burst { batch: 6 },
                TrafficShape::OnOff {
                    mean_on: 2.0,
                    mean_off: 8.0
                }
            ]
        );
    }

    #[test]
    fn malformed_extended_declarations_are_rejected() {
        use socbuf_soc::{BusArbitration, TrafficShape};
        let mut b = socbuf_soc::ArchitectureBuilder::new();
        let x = b
            .add_bus_with_arbitration("x", 2.0, BusArbitration::Locked { max_batch: 4 })
            .unwrap();
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        b.add_flow_shaped(p, FlowTarget::Bus(x), 0.5, TrafficShape::Burst { batch: 6 })
            .unwrap();
        let good = architecture_to_json(&b.build().unwrap());
        for (mutate, why) in [
            (
                good.replace("{\"locked\":4}", "\"round_robin\""),
                "unknown arbitration tag",
            ),
            (
                good.replace("{\"locked\":4}", "{\"locked\":4,\"x\":1}"),
                "unknown arbitration field",
            ),
            (
                good.replace("{\"locked\":4}", "{\"locked\":-1}"),
                "negative batch",
            ),
            (
                good.replace("{\"burst\":6}", "{\"burst\":6,\"on_off\":{}}"),
                "ambiguous shape",
            ),
            (good.replace("{\"burst\":6}", "{}"), "empty shape"),
            (
                good.replace("{\"burst\":6}", "{\"on_off\":{\"mean_on\":1.0}}"),
                "missing mean_off",
            ),
        ] {
            assert_ne!(mutate, good, "mutation was a no-op ({why})");
            let parsed = JsonValue::parse(&mutate).unwrap();
            assert!(
                architecture_from_json(&parsed).is_err(),
                "accepted mutation ({why})"
            );
        }
    }

    #[test]
    fn sizing_config_roundtrips_and_defaults() {
        for engine in LpEngine::ALL {
            let config = SizingConfig {
                state_cap: 12,
                effort_levels: 5,
                alpha: 0.75,
                quantile: 0.9,
                bus_effort_limit: 0.8,
                engine,
                equilibrate: false,
                ..SizingConfig::default()
            };
            let json = sizing_config_to_json(&config);
            let back = sizing_config_from_json(&JsonValue::parse(&json).unwrap()).unwrap();
            assert_eq!(sizing_config_to_json(&back), json);
        }
        // Empty object = the default config.
        let d = sizing_config_from_json(&JsonValue::parse("{}").unwrap()).unwrap();
        assert_eq!(
            sizing_config_to_json(&d),
            sizing_config_to_json(&SizingConfig::default())
        );
        // Unknown fields fail loudly.
        assert!(sizing_config_from_json(&JsonValue::parse("{\"state_cup\":8}").unwrap()).is_err());
        // Unknown engines fail loudly.
        assert!(
            sizing_config_from_json(&JsonValue::parse("{\"engine\":\"quantum\"}").unwrap())
                .is_err()
        );
    }

    #[test]
    fn sizing_outcome_roundtrips_both_renderings() {
        let arch = templates::figure1();
        let outcome = size_buffers(&arch, 22, &SizingConfig::small()).unwrap();

        let full = sizing_outcome_to_json(&outcome);
        let back = sizing_outcome_from_json(&JsonValue::parse(&full).unwrap(), &arch).unwrap();
        assert_eq!(sizing_outcome_to_json(&back), full);
        assert_eq!(back.lp_iterations, outcome.lp_iterations);
        assert_eq!(back.lp_engine, outcome.lp_engine);

        let semantic = sizing_outcome_semantic_json(&outcome);
        assert!(!semantic.contains("lp_iterations"));
        let back = sizing_outcome_from_json(&JsonValue::parse(&semantic).unwrap(), &arch).unwrap();
        assert_eq!(sizing_outcome_semantic_json(&back), semantic);
        assert_eq!(back.allocation.as_slice(), outcome.allocation.as_slice());
    }

    #[test]
    fn non_finite_outcome_fields_render_as_null_and_parse_back_as_nan() {
        let arch = templates::figure1();
        let mut outcome = size_buffers(&arch, 22, &SizingConfig::small()).unwrap();
        outcome.predicted_loss_rate = f64::NAN;
        outcome.budget_shadow_price = f64::NEG_INFINITY;
        let json = sizing_outcome_to_json(&outcome);
        assert!(json.contains("\"predicted_loss_rate\":null"));
        let parsed = JsonValue::parse(&json).expect("non-finite fields must not break the JSON");
        let back = sizing_outcome_from_json(&parsed, &arch).unwrap();
        assert!(back.predicted_loss_rate.is_nan());
        assert!(back.budget_shadow_price.is_nan());
    }
}
