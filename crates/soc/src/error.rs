use std::error::Error;
use std::fmt;

/// Errors produced while building an architecture.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SocError {
    /// A component handle referenced something outside this architecture.
    UnknownComponent(String),
    /// A rate or weight that must be positive (or non-negative) was not.
    BadRate {
        /// What the rate belongs to.
        what: String,
        /// The offending value.
        value: f64,
    },
    /// A processor was attached to no bus.
    UnattachedProcessor(String),
    /// No bridge path exists from the flow's source to its destination.
    Unroutable {
        /// Human-readable flow description.
        flow: String,
    },
    /// The architecture is structurally empty (no buses or no flows).
    Empty(String),
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::UnknownComponent(what) => write!(f, "unknown component: {what}"),
            SocError::BadRate { what, value } => {
                write!(f, "rate of {what} must be positive, got {value}")
            }
            SocError::UnattachedProcessor(name) => {
                write!(f, "processor '{name}' is attached to no bus")
            }
            SocError::Unroutable { flow } => {
                write!(f, "no bridge route exists for flow {flow}")
            }
            SocError::Empty(what) => write!(f, "architecture has no {what}"),
        }
    }
}

impl Error for SocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(SocError::UnknownComponent("BusId7".into())
            .to_string()
            .contains("BusId7"));
        assert!(SocError::BadRate {
            what: "bus 'ahb'".into(),
            value: -1.0
        }
        .to_string()
        .contains("-1"));
        assert!(!SocError::Empty("buses".into()).to_string().is_empty());
    }
}
