use std::collections::HashMap;

use crate::ids::{BridgeId, BusId, FlowId, ProcId, QueueId};
use crate::SocError;

/// How a bus grants service among its queues.
///
/// The default, [`BusArbitration::External`], leaves the choice to the
/// simulator's runtime arbiter (the legacy engine's only mode). The
/// other variants are *declared on the architecture* and executed by the
/// actor-based simulator; the legacy event-loop engine cannot express
/// them and refuses architectures that use them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusArbitration {
    /// Arbitration is chosen at simulation time (`socbuf-sim`'s
    /// `Arbiter`). The default — every pre-existing architecture uses it.
    External,
    /// Strict fixed-priority arbitration: every queue on the bus has a
    /// unique priority given by its declaration order (first declared =
    /// highest), and the bus always serves the highest-priority
    /// non-empty queue.
    Priority,
    /// Locked transfers: once a queue is granted (by the runtime
    /// arbiter), it holds the bus for up to `max_batch` consecutive
    /// services — or until it drains — before arbitration reopens.
    Locked {
        /// Maximum consecutive services per grant (≥ 1).
        max_batch: usize,
    },
}

/// A shared bus: one request served at a time at an exponential rate.
#[derive(Debug, Clone, PartialEq)]
pub struct Bus {
    name: String,
    service_rate: f64,
    arbitration: BusArbitration,
}

impl Bus {
    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Exponential service rate μ (requests per unit time).
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// The declared arbitration mode.
    pub fn arbitration(&self) -> BusArbitration {
        self.arbitration
    }
}

/// A processor (IP core) attached to one or more buses.
#[derive(Debug, Clone, PartialEq)]
pub struct Processor {
    name: String,
    buses: Vec<BusId>,
    weight: f64,
}

impl Processor {
    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Buses this processor can transmit on.
    pub fn buses(&self) -> &[BusId] {
        &self.buses
    }

    /// Loss weight `w_p`: how much a lost request of this processor
    /// contributes to the objective (the paper suggests weighing losses;
    /// `1.0` treats all processors equally).
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

/// A unidirectional bridge with a buffer on the downstream bus.
///
/// Requests crossing `from → to` are deposited by bus `from` into the
/// bridge buffer and drained by bus `to`. The buffer is exactly the
/// paper's "buffer inserted for the bridge": it decouples the two buses'
/// steady-state equations.
#[derive(Debug, Clone, PartialEq)]
pub struct Bridge {
    name: String,
    from: BusId,
    to: BusId,
    latency: f64,
}

impl Bridge {
    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Upstream bus (the depositor).
    pub fn from(&self) -> BusId {
        self.from
    }

    /// Downstream bus (the drainer; the bridge buffer is its client).
    pub fn to(&self) -> BusId {
        self.to
    }

    /// Deterministic forwarding latency: the delay between a request
    /// finishing service on the upstream bus and being offered to the
    /// bridge buffer. `0` (the default) is the paper's instantaneous
    /// crossing; positive latencies are an actor-engine extension.
    pub fn latency(&self) -> f64 {
        self.latency
    }
}

/// Destination of a traffic flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowTarget {
    /// Another processor (delivered once the request is served on a bus
    /// that processor is attached to).
    Processor(ProcId),
    /// A resource that lives on a specific bus (e.g. a shared memory
    /// port): delivered once served on that bus.
    Bus(BusId),
}

/// The arrival process of a flow.
///
/// Every shape preserves the flow's declared *average* rate λ, so
/// LP-sized buffers can be cross-validated under burstiness at the same
/// offered load. Only [`TrafficShape::Poisson`] (the default, and the
/// paper's model) is expressible by the legacy event-loop engine; the
/// other shapes require the actor-based simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficShape {
    /// Memoryless Poisson arrivals at rate λ (the default).
    Poisson,
    /// Batched arrivals: bursts of `batch` back-to-back requests at
    /// Poisson epochs of rate `λ / batch` (average rate still λ).
    /// `batch = 1` is exactly Poisson.
    Burst {
        /// Requests per burst (≥ 1).
        batch: usize,
    },
    /// A two-state on-off MMPP: exponential ON sojourns of mean
    /// `mean_on` alternating with silent OFF sojourns of mean
    /// `mean_off`; while ON, arrivals are Poisson at rate
    /// `λ · (mean_on + mean_off) / mean_on` (average rate still λ).
    OnOff {
        /// Mean ON-phase duration (> 0, finite).
        mean_on: f64,
        /// Mean OFF-phase duration (> 0, finite).
        mean_off: f64,
    },
}

impl TrafficShape {
    /// `true` for the default memoryless shape.
    pub fn is_poisson(&self) -> bool {
        matches!(self, TrafficShape::Poisson) || matches!(self, TrafficShape::Burst { batch: 1 })
    }
}

/// A traffic flow from a source processor to a target.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    src: ProcId,
    target: FlowTarget,
    rate: f64,
    shape: TrafficShape,
}

impl Flow {
    /// Source processor.
    pub fn src(&self) -> ProcId {
        self.src
    }

    /// Destination.
    pub fn target(&self) -> FlowTarget {
        self.target
    }

    /// Average arrival rate λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The declared arrival process shape.
    pub fn shape(&self) -> TrafficShape {
        self.shape
    }
}

/// The entity whose requests wait in a queue: a processor transmitting on
/// a bus, or a bridge buffer drained by its downstream bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Client {
    /// A processor's transmit queue.
    Processor(ProcId),
    /// A bridge's buffer.
    Bridge(BridgeId),
}

/// A buffer-insertion point: one (client, bus) contention queue.
///
/// Fields are public: this is passive, derived data.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueSpec {
    /// This queue's identifier.
    pub id: QueueId,
    /// Who owns the waiting requests.
    pub client: Client,
    /// The bus that serves this queue.
    pub bus: BusId,
    /// Flows passing through this queue.
    pub flows: Vec<FlowId>,
    /// Total nominal offered rate (Σ of flow rates; ignores upstream
    /// thinning by losses, which only the simulator resolves exactly).
    pub offered_rate: f64,
}

/// The bus-level route of a flow: the buses it is served on, in order,
/// and the bridges crossed between consecutive buses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Buses traversed (at least one).
    pub buses: Vec<BusId>,
    /// Bridges crossed; `bridges.len() == buses.len() - 1`.
    pub bridges: Vec<BridgeId>,
}

/// An immutable, validated SoC communication architecture with routed
/// traffic and enumerated buffer-insertion points.
///
/// Create one with [`ArchitectureBuilder`] or a
/// [`crate::templates`] function.
#[derive(Debug, Clone)]
pub struct Architecture {
    buses: Vec<Bus>,
    processors: Vec<Processor>,
    bridges: Vec<Bridge>,
    flows: Vec<Flow>,
    routes: Vec<Route>,
    queues: Vec<QueueSpec>,
    flow_paths: Vec<Vec<QueueId>>,
    bus_queues: Vec<Vec<QueueId>>,
}

impl Architecture {
    /// Number of buses.
    pub fn num_buses(&self) -> usize {
        self.buses.len()
    }

    /// Number of processors.
    pub fn num_processors(&self) -> usize {
        self.processors.len()
    }

    /// Number of bridges.
    pub fn num_bridges(&self) -> usize {
        self.bridges.len()
    }

    /// Number of flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Number of queues (buffer-insertion points).
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// A bus by handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this architecture.
    pub fn bus(&self, id: BusId) -> &Bus {
        &self.buses[id.0]
    }

    /// A processor by handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this architecture.
    pub fn processor(&self, id: ProcId) -> &Processor {
        &self.processors[id.0]
    }

    /// A bridge by handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this architecture.
    pub fn bridge(&self, id: BridgeId) -> &Bridge {
        &self.bridges[id.0]
    }

    /// A flow by handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this architecture.
    pub fn flow(&self, id: FlowId) -> &Flow {
        &self.flows[id.0]
    }

    /// The route of a flow.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this architecture.
    pub fn route(&self, id: FlowId) -> &Route {
        &self.routes[id.0]
    }

    /// A queue by handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this architecture.
    pub fn queue(&self, id: QueueId) -> &QueueSpec {
        &self.queues[id.0]
    }

    /// All queues.
    pub fn queues(&self) -> &[QueueSpec] {
        &self.queues
    }

    /// Queue handles served by `bus`.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this architecture.
    pub fn bus_queue_ids(&self, bus: BusId) -> &[QueueId] {
        &self.bus_queues[bus.0]
    }

    /// The queue sequence a flow traverses: its processor queue first,
    /// then one bridge buffer per crossing.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this architecture.
    pub fn flow_path(&self, id: FlowId) -> &[QueueId] {
        &self.flow_paths[id.0]
    }

    /// Iterates over bus handles.
    pub fn bus_ids(&self) -> impl Iterator<Item = BusId> + '_ {
        (0..self.buses.len()).map(BusId)
    }

    /// Iterates over processor handles.
    pub fn proc_ids(&self) -> impl Iterator<Item = ProcId> + '_ {
        (0..self.processors.len()).map(ProcId)
    }

    /// Iterates over bridge handles.
    pub fn bridge_ids(&self) -> impl Iterator<Item = BridgeId> + '_ {
        (0..self.bridges.len()).map(BridgeId)
    }

    /// Iterates over flow handles.
    pub fn flow_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        (0..self.flows.len()).map(FlowId)
    }

    /// Iterates over queue handles.
    pub fn queue_ids(&self) -> impl Iterator<Item = QueueId> + '_ {
        (0..self.queues.len()).map(QueueId)
    }

    /// Human-readable name of a queue's client.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this architecture.
    pub fn queue_name(&self, id: QueueId) -> String {
        let q = &self.queues[id.0];
        match q.client {
            Client::Processor(p) => {
                format!("{}@{}", self.processors[p.0].name, self.buses[q.bus.0].name)
            }
            Client::Bridge(b) => format!("{}@{}", self.bridges[b.0].name, self.buses[q.bus.0].name),
        }
    }

    /// Nominal utilization of a bus: Σ offered rates of its queues over
    /// its service rate. Values near (or above) 1 mean the bus is
    /// saturated and losses are inevitable somewhere.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this architecture.
    pub fn bus_utilization_estimate(&self, bus: BusId) -> f64 {
        let offered: f64 = self.bus_queues[bus.0]
            .iter()
            .map(|q| self.queues[q.0].offered_rate)
            .sum();
        offered / self.buses[bus.0].service_rate
    }

    /// Total offered traffic over all flows.
    pub fn total_offered_rate(&self) -> f64 {
        self.flows.iter().map(|f| f.rate).sum()
    }

    /// `true` when the architecture declares behavior only the
    /// actor-based simulator can execute: a non-Poisson traffic shape
    /// (`Burst { batch: 1 }` counts as Poisson — it is the same
    /// process), a non-[`BusArbitration::External`] bus, or a bridge
    /// with positive forwarding latency. The legacy event-loop engine
    /// refuses such architectures instead of silently ignoring the
    /// declarations.
    pub fn uses_extended_semantics(&self) -> bool {
        self.flows.iter().any(|f| !f.shape.is_poisson())
            || self
                .buses
                .iter()
                .any(|b| b.arbitration != BusArbitration::External)
            || self.bridges.iter().any(|g| g.latency > 0.0)
    }

    /// A copy of this architecture with every flow rate multiplied by
    /// `lambda_factor` and every bus service rate by `mu_factor`.
    ///
    /// Structure (processors, bridges, routes, queue enumeration) is
    /// unchanged — only the rates move, which is exactly what load
    /// sweeps and the time-rescaling metamorphic property need. Scaling
    /// both factors by the same value is a pure change of time unit: the
    /// steady-state occupancy laws, and therefore the optimal buffer
    /// allocation, are invariant under it.
    ///
    /// # Errors
    ///
    /// [`SocError::BadRate`] if either factor is not positive and finite.
    pub fn scale_rates(&self, lambda_factor: f64, mu_factor: f64) -> Result<Self, SocError> {
        for (what, factor) in [("lambda_factor", lambda_factor), ("mu_factor", mu_factor)] {
            if factor <= 0.0 || !factor.is_finite() {
                return Err(SocError::BadRate {
                    what: what.into(),
                    value: factor,
                });
            }
        }
        let mut scaled = self.clone();
        for bus in &mut scaled.buses {
            bus.service_rate *= mu_factor;
        }
        for flow in &mut scaled.flows {
            flow.rate *= lambda_factor;
            // On-off sojourns are arrival-side durations: scaling λ by a
            // factor shrinks the arrival time unit by the same factor, so
            // the mean phase lengths divide by it. Burst batch counts are
            // dimensionless and stay put.
            if let TrafficShape::OnOff { mean_on, mean_off } = &mut flow.shape {
                *mean_on /= lambda_factor;
                *mean_off /= lambda_factor;
            }
        }
        // Bridge latency is a service-side duration, so it divides by the
        // service-rate factor: scaling both factors together remains a
        // pure change of time unit even on extended architectures.
        for bridge in &mut scaled.bridges {
            bridge.latency /= mu_factor;
        }
        // `offered_rate` is Σ of flow rates, so it scales with λ.
        for queue in &mut scaled.queues {
            queue.offered_rate *= lambda_factor;
        }
        Ok(scaled)
    }
}

/// Incremental builder for [`Architecture`].
///
/// # Examples
///
/// ```
/// use socbuf_soc::{ArchitectureBuilder, FlowTarget};
///
/// # fn main() -> Result<(), socbuf_soc::SocError> {
/// let mut b = ArchitectureBuilder::new();
/// let ahb = b.add_bus("ahb", 2.0)?;
/// let apb = b.add_bus("apb", 0.5)?;
/// let cpu = b.add_processor("cpu", &[ahb], 1.0)?;
/// let _bridge = b.add_bridge("ahb2apb", ahb, apb)?;
/// b.add_flow(cpu, FlowTarget::Bus(apb), 0.2)?;
/// let arch = b.build()?;
/// assert_eq!(arch.num_queues(), 2); // cpu@ahb and the bridge buffer@apb
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ArchitectureBuilder {
    buses: Vec<Bus>,
    processors: Vec<Processor>,
    bridges: Vec<Bridge>,
    flows: Vec<Flow>,
}

impl ArchitectureBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bus indices a processor is attached to (used by the random
    /// template generator for routability checks before `build`).
    pub(crate) fn processor_buses(&self, proc_index: usize) -> Vec<usize> {
        self.processors[proc_index]
            .buses
            .iter()
            .map(|b| b.0)
            .collect()
    }

    /// Adds a bus with exponential service rate `service_rate`.
    ///
    /// # Errors
    ///
    /// [`SocError::BadRate`] if the rate is not positive and finite.
    pub fn add_bus(
        &mut self,
        name: impl Into<String>,
        service_rate: f64,
    ) -> Result<BusId, SocError> {
        let name = name.into();
        if service_rate <= 0.0 || !service_rate.is_finite() {
            return Err(SocError::BadRate {
                what: format!("bus '{name}'"),
                value: service_rate,
            });
        }
        self.buses.push(Bus {
            name,
            service_rate,
            arbitration: BusArbitration::External,
        });
        Ok(BusId(self.buses.len() - 1))
    }

    /// Adds a bus with an explicit [`BusArbitration`] mode. Non-default
    /// modes require the actor-based simulator.
    ///
    /// # Errors
    ///
    /// [`SocError::BadRate`] if the rate is not positive and finite, or
    /// if the mode is `Locked { max_batch: 0 }`.
    pub fn add_bus_with_arbitration(
        &mut self,
        name: impl Into<String>,
        service_rate: f64,
        arbitration: BusArbitration,
    ) -> Result<BusId, SocError> {
        let name = name.into();
        if let BusArbitration::Locked { max_batch: 0 } = arbitration {
            return Err(SocError::BadRate {
                what: format!("bus '{name}' locked max_batch"),
                value: 0.0,
            });
        }
        let id = self.add_bus(name, service_rate)?;
        self.buses[id.0].arbitration = arbitration;
        Ok(id)
    }

    /// Adds a processor attached to `buses` with loss weight `weight`.
    ///
    /// # Errors
    ///
    /// * [`SocError::UnattachedProcessor`] if `buses` is empty.
    /// * [`SocError::UnknownComponent`] for a foreign bus handle.
    /// * [`SocError::BadRate`] if the weight is negative or not finite.
    pub fn add_processor(
        &mut self,
        name: impl Into<String>,
        buses: &[BusId],
        weight: f64,
    ) -> Result<ProcId, SocError> {
        let name = name.into();
        if buses.is_empty() {
            return Err(SocError::UnattachedProcessor(name));
        }
        for b in buses {
            if b.0 >= self.buses.len() {
                return Err(SocError::UnknownComponent(b.to_string()));
            }
        }
        if weight < 0.0 || !weight.is_finite() {
            return Err(SocError::BadRate {
                what: format!("weight of processor '{name}'"),
                value: weight,
            });
        }
        self.processors.push(Processor {
            name,
            buses: buses.to_vec(),
            weight,
        });
        Ok(ProcId(self.processors.len() - 1))
    }

    /// Adds a unidirectional bridge from `from` to `to`.
    ///
    /// # Errors
    ///
    /// [`SocError::UnknownComponent`] for foreign handles, or
    /// [`SocError::BadRate`] for a self-bridge (`from == to`).
    pub fn add_bridge(
        &mut self,
        name: impl Into<String>,
        from: BusId,
        to: BusId,
    ) -> Result<BridgeId, SocError> {
        let name = name.into();
        if from.0 >= self.buses.len() {
            return Err(SocError::UnknownComponent(from.to_string()));
        }
        if to.0 >= self.buses.len() {
            return Err(SocError::UnknownComponent(to.to_string()));
        }
        if from == to {
            return Err(SocError::BadRate {
                what: format!("bridge '{name}' endpoints (from == to)"),
                value: from.0 as f64,
            });
        }
        self.bridges.push(Bridge {
            name,
            from,
            to,
            latency: 0.0,
        });
        Ok(BridgeId(self.bridges.len() - 1))
    }

    /// Adds a unidirectional bridge with a deterministic forwarding
    /// latency. A positive latency requires the actor-based simulator.
    ///
    /// # Errors
    ///
    /// Same as [`ArchitectureBuilder::add_bridge`], plus
    /// [`SocError::BadRate`] for a negative or non-finite latency.
    pub fn add_bridge_with_latency(
        &mut self,
        name: impl Into<String>,
        from: BusId,
        to: BusId,
        latency: f64,
    ) -> Result<BridgeId, SocError> {
        let name = name.into();
        if latency < 0.0 || !latency.is_finite() {
            return Err(SocError::BadRate {
                what: format!("bridge '{name}' latency"),
                value: latency,
            });
        }
        let id = self.add_bridge(name, from, to)?;
        self.bridges[id.0].latency = latency;
        Ok(id)
    }

    /// Adds both directions of a bridge pair (`a → b` and `b → a`),
    /// suffixing the names with `_fw`/`_bw`.
    ///
    /// # Errors
    ///
    /// Same as [`ArchitectureBuilder::add_bridge`].
    pub fn add_bidirectional_bridge(
        &mut self,
        name: impl Into<String>,
        a: BusId,
        b: BusId,
    ) -> Result<(BridgeId, BridgeId), SocError> {
        let name = name.into();
        let fw = self.add_bridge(format!("{name}_fw"), a, b)?;
        let bw = self.add_bridge(format!("{name}_bw"), b, a)?;
        Ok((fw, bw))
    }

    /// Adds a Poisson flow from `src` to `target` at rate `rate`.
    ///
    /// # Errors
    ///
    /// [`SocError::UnknownComponent`] for foreign handles or
    /// [`SocError::BadRate`] for a non-positive rate. Routability is
    /// checked at [`ArchitectureBuilder::build`] time.
    pub fn add_flow(
        &mut self,
        src: ProcId,
        target: FlowTarget,
        rate: f64,
    ) -> Result<FlowId, SocError> {
        if src.0 >= self.processors.len() {
            return Err(SocError::UnknownComponent(src.to_string()));
        }
        match target {
            FlowTarget::Processor(p) if p.0 >= self.processors.len() => {
                return Err(SocError::UnknownComponent(p.to_string()));
            }
            FlowTarget::Bus(b) if b.0 >= self.buses.len() => {
                return Err(SocError::UnknownComponent(b.to_string()));
            }
            _ => {}
        }
        if rate <= 0.0 || !rate.is_finite() {
            return Err(SocError::BadRate {
                what: format!("flow from {src}"),
                value: rate,
            });
        }
        self.flows.push(Flow {
            src,
            target,
            rate,
            shape: TrafficShape::Poisson,
        });
        Ok(FlowId(self.flows.len() - 1))
    }

    /// Adds a flow with an explicit [`TrafficShape`]. Non-Poisson shapes
    /// require the actor-based simulator.
    ///
    /// # Errors
    ///
    /// Same as [`ArchitectureBuilder::add_flow`], plus
    /// [`SocError::BadRate`] for `Burst { batch: 0 }` or for on-off mean
    /// sojourns that are not positive and finite.
    pub fn add_flow_shaped(
        &mut self,
        src: ProcId,
        target: FlowTarget,
        rate: f64,
        shape: TrafficShape,
    ) -> Result<FlowId, SocError> {
        match shape {
            TrafficShape::Poisson => {}
            TrafficShape::Burst { batch } => {
                if batch == 0 {
                    return Err(SocError::BadRate {
                        what: format!("flow from {src} burst batch"),
                        value: 0.0,
                    });
                }
            }
            TrafficShape::OnOff { mean_on, mean_off } => {
                for (what, v) in [("mean_on", mean_on), ("mean_off", mean_off)] {
                    if v <= 0.0 || !v.is_finite() {
                        return Err(SocError::BadRate {
                            what: format!("flow from {src} on-off {what}"),
                            value: v,
                        });
                    }
                }
            }
        }
        let id = self.add_flow(src, target, rate)?;
        self.flows[id.0].shape = shape;
        Ok(id)
    }

    /// Routes every flow (shortest bridge path), enumerates the queues
    /// and freezes the architecture.
    ///
    /// # Errors
    ///
    /// * [`SocError::Empty`] if there are no buses, processors or flows.
    /// * [`SocError::Unroutable`] if some flow has no bridge path.
    pub fn build(self) -> Result<Architecture, SocError> {
        if self.buses.is_empty() {
            return Err(SocError::Empty("buses".into()));
        }
        if self.processors.is_empty() {
            return Err(SocError::Empty("processors".into()));
        }
        if self.flows.is_empty() {
            return Err(SocError::Empty("flows".into()));
        }

        // Directed bus adjacency through bridges.
        let nb = self.buses.len();
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nb]; // (to_bus, bridge)
        for (gi, g) in self.bridges.iter().enumerate() {
            adj[g.from.0].push((g.to.0, gi));
        }

        // Route every flow: BFS from each source bus, stop at any target bus.
        let mut routes = Vec::with_capacity(self.flows.len());
        for (fi, f) in self.flows.iter().enumerate() {
            let src_buses: Vec<usize> =
                self.processors[f.src.0].buses.iter().map(|b| b.0).collect();
            let target_buses: Vec<usize> = match f.target {
                FlowTarget::Processor(p) => {
                    self.processors[p.0].buses.iter().map(|b| b.0).collect()
                }
                FlowTarget::Bus(b) => vec![b.0],
            };
            let route = shortest_route(nb, &adj, &src_buses, &target_buses);
            match route {
                Some((buses, bridges)) => routes.push(Route {
                    buses: buses.into_iter().map(BusId).collect(),
                    bridges: bridges.into_iter().map(BridgeId).collect(),
                }),
                None => {
                    return Err(SocError::Unroutable {
                        flow: format!(
                            "FlowId{fi} ({} -> {:?})",
                            self.processors[f.src.0].name, f.target
                        ),
                    });
                }
            }
        }

        // Enumerate queues and flow paths.
        let mut queue_index: HashMap<(Client, BusId), usize> = HashMap::new();
        let mut queues: Vec<QueueSpec> = Vec::new();
        let mut flow_paths: Vec<Vec<QueueId>> = Vec::with_capacity(self.flows.len());
        for (fi, f) in self.flows.iter().enumerate() {
            let route = &routes[fi];
            let mut path = Vec::with_capacity(route.buses.len());
            // First hop: the processor's queue on the first bus.
            let mut hop_clients: Vec<(Client, BusId)> =
                vec![(Client::Processor(f.src), route.buses[0])];
            for (leg, &bridge) in route.bridges.iter().enumerate() {
                hop_clients.push((Client::Bridge(bridge), route.buses[leg + 1]));
            }
            for (client, bus) in hop_clients {
                let next = queues.len();
                let qi = *queue_index.entry((client, bus)).or_insert_with(|| {
                    queues.push(QueueSpec {
                        id: QueueId(next),
                        client,
                        bus,
                        flows: Vec::new(),
                        offered_rate: 0.0,
                    });
                    next
                });
                queues[qi].flows.push(FlowId(fi));
                queues[qi].offered_rate += f.rate;
                path.push(QueueId(qi));
            }
            flow_paths.push(path);
        }

        let mut bus_queues: Vec<Vec<QueueId>> = vec![Vec::new(); nb];
        for q in &queues {
            bus_queues[q.bus.0].push(q.id);
        }

        Ok(Architecture {
            buses: self.buses,
            processors: self.processors,
            bridges: self.bridges,
            flows: self.flows,
            routes,
            queues,
            flow_paths,
            bus_queues,
        })
    }
}

/// BFS over the bridge graph from any of `srcs` to any of `dsts`.
/// Returns the bus sequence and crossed bridges of a shortest path.
fn shortest_route(
    nb: usize,
    adj: &[Vec<(usize, usize)>],
    srcs: &[usize],
    dsts: &[usize],
) -> Option<(Vec<usize>, Vec<usize>)> {
    // Zero-hop: a source bus that is already a destination bus.
    for &s in srcs {
        if dsts.contains(&s) {
            return Some((vec![s], vec![]));
        }
    }
    let mut prev: Vec<Option<(usize, usize)>> = vec![None; nb]; // (prev bus, bridge)
    let mut seen = vec![false; nb];
    let mut frontier: Vec<usize> = Vec::new();
    for &s in srcs {
        if !seen[s] {
            seen[s] = true;
            frontier.push(s);
        }
    }
    while !frontier.is_empty() {
        let mut next_frontier = Vec::new();
        for &u in &frontier {
            for &(v, g) in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    prev[v] = Some((u, g));
                    if dsts.contains(&v) {
                        // Reconstruct.
                        let mut buses = vec![v];
                        let mut bridges = Vec::new();
                        let mut cur = v;
                        while let Some((p, g)) = prev[cur] {
                            bridges.push(g);
                            buses.push(p);
                            cur = p;
                        }
                        buses.reverse();
                        bridges.reverse();
                        return Some((buses, bridges));
                    }
                    next_frontier.push(v);
                }
            }
        }
        frontier = next_frontier;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_bus() -> ArchitectureBuilder {
        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let y = b.add_bus("y", 2.0).unwrap();
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        b.add_bridge("g", x, y).unwrap();
        b.add_flow(p, FlowTarget::Bus(y), 0.3).unwrap();
        b
    }

    #[test]
    fn builds_and_routes_across_bridge() {
        let a = two_bus().build().unwrap();
        assert_eq!(a.num_queues(), 2);
        let f = FlowId(0);
        let r = a.route(f);
        assert_eq!(r.buses.len(), 2);
        assert_eq!(r.bridges.len(), 1);
        let path = a.flow_path(f);
        assert_eq!(path.len(), 2);
        assert!(matches!(a.queue(path[0]).client, Client::Processor(_)));
        assert!(matches!(a.queue(path[1]).client, Client::Bridge(_)));
        // Bridge queue is served by the downstream bus.
        assert_eq!(a.queue(path[1]).bus, BusId(1));
    }

    #[test]
    fn local_flow_has_single_hop() {
        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        let q = b.add_processor("q", &[x], 1.0).unwrap();
        b.add_flow(p, FlowTarget::Processor(q), 0.5).unwrap();
        let a = b.build().unwrap();
        assert_eq!(a.num_queues(), 1);
        assert_eq!(a.route(FlowId(0)).buses.len(), 1);
    }

    #[test]
    fn queues_are_shared_between_flows() {
        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let y = b.add_bus("y", 1.0).unwrap();
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        b.add_bridge("g", x, y).unwrap();
        b.add_flow(p, FlowTarget::Bus(y), 0.1).unwrap();
        b.add_flow(p, FlowTarget::Bus(y), 0.2).unwrap();
        let a = b.build().unwrap();
        // Same processor queue and same bridge buffer for both flows.
        assert_eq!(a.num_queues(), 2);
        let q0 = a.queue(QueueId(0));
        assert_eq!(q0.flows.len(), 2);
        assert!((q0.offered_rate - 0.3).abs() < 1e-12);
    }

    #[test]
    fn unroutable_flow_is_rejected() {
        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let y = b.add_bus("y", 1.0).unwrap();
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        // Bridge goes the wrong way.
        b.add_bridge("g", y, x).unwrap();
        b.add_flow(p, FlowTarget::Bus(y), 0.1).unwrap();
        assert!(matches!(b.build(), Err(SocError::Unroutable { .. })));
    }

    #[test]
    fn multi_homed_source_picks_reachable_bus() {
        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let y = b.add_bus("y", 1.0).unwrap();
        let z = b.add_bus("z", 1.0).unwrap();
        let p = b.add_processor("p", &[x, y], 1.0).unwrap();
        b.add_bridge("g", y, z).unwrap();
        b.add_flow(p, FlowTarget::Bus(z), 0.1).unwrap();
        let a = b.build().unwrap();
        // Route must start on y (x has no path to z).
        assert_eq!(a.route(FlowId(0)).buses[0], y);
        assert_eq!(a.route(FlowId(0)).buses.len(), 2);
    }

    #[test]
    fn shortest_path_is_chosen() {
        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let m1 = b.add_bus("m1", 1.0).unwrap();
        let m2 = b.add_bus("m2", 1.0).unwrap();
        let y = b.add_bus("y", 1.0).unwrap();
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        // Long way: x → m1 → m2 → y. Short way: x → y.
        b.add_bridge("a", x, m1).unwrap();
        b.add_bridge("b", m1, m2).unwrap();
        b.add_bridge("c", m2, y).unwrap();
        b.add_bridge("d", x, y).unwrap();
        b.add_flow(p, FlowTarget::Bus(y), 0.1).unwrap();
        let a = b.build().unwrap();
        assert_eq!(a.route(FlowId(0)).buses.len(), 2);
        assert_eq!(a.route(FlowId(0)).bridges.len(), 1);
    }

    #[test]
    fn validation_errors() {
        let mut b = ArchitectureBuilder::new();
        assert!(b.add_bus("x", 0.0).is_err());
        assert!(b.add_bus("x", f64::NAN).is_err());
        let x = b.add_bus("x", 1.0).unwrap();
        assert!(b.add_processor("p", &[], 1.0).is_err());
        assert!(b.add_processor("p", &[BusId(9)], 1.0).is_err());
        assert!(b.add_processor("p", &[x], -1.0).is_err());
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        assert!(b.add_bridge("g", x, x).is_err());
        assert!(b.add_bridge("g", x, BusId(9)).is_err());
        assert!(b.add_flow(p, FlowTarget::Bus(BusId(9)), 1.0).is_err());
        assert!(b.add_flow(p, FlowTarget::Bus(x), 0.0).is_err());
        assert!(b.add_flow(ProcId(9), FlowTarget::Bus(x), 1.0).is_err());
    }

    #[test]
    fn empty_architectures_are_rejected() {
        assert!(matches!(
            ArchitectureBuilder::new().build(),
            Err(SocError::Empty(_))
        ));
        let mut b = ArchitectureBuilder::new();
        b.add_bus("x", 1.0).unwrap();
        assert!(matches!(b.clone().build(), Err(SocError::Empty(_))));
        b.add_processor("p", &[BusId(0)], 1.0).unwrap();
        assert!(matches!(b.build(), Err(SocError::Empty(_))));
    }

    #[test]
    fn utilization_estimate() {
        let a = two_bus().build().unwrap();
        assert!((a.bus_utilization_estimate(BusId(0)) - 0.3).abs() < 1e-12);
        assert!((a.bus_utilization_estimate(BusId(1)) - 0.15).abs() < 1e-12);
        assert!((a.total_offered_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn queue_names_are_descriptive() {
        let a = two_bus().build().unwrap();
        assert_eq!(a.queue_name(QueueId(0)), "p@x");
        assert_eq!(a.queue_name(QueueId(1)), "g@y");
    }

    #[test]
    fn scale_rates_scales_flows_buses_and_queue_sums() {
        let a = two_bus().build().unwrap();
        let s = a.scale_rates(2.0, 0.5).unwrap();
        assert_eq!(s.num_queues(), a.num_queues());
        assert_eq!(s.num_bridges(), a.num_bridges());
        for f in a.flow_ids() {
            assert_eq!(s.flow(f).rate(), 2.0 * a.flow(f).rate());
            assert_eq!(s.route(f), a.route(f), "routes must not move");
        }
        for b in a.bus_ids() {
            assert_eq!(s.bus(b).service_rate(), 0.5 * a.bus(b).service_rate());
        }
        for q in a.queue_ids() {
            assert_eq!(s.queue(q).offered_rate, 2.0 * a.queue(q).offered_rate);
        }
        // Utilization estimate scales by λ/μ factor ratio.
        let u0 = a.bus_utilization_estimate(BusId(0));
        let u1 = s.bus_utilization_estimate(BusId(0));
        assert!((u1 - 4.0 * u0).abs() < 1e-12);
    }

    #[test]
    fn scale_rates_rejects_bad_factors() {
        let a = two_bus().build().unwrap();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(a.scale_rates(bad, 1.0).is_err());
            assert!(a.scale_rates(1.0, bad).is_err());
        }
    }

    #[test]
    fn extended_semantics_detection_and_validation() {
        // Defaults: nothing extended.
        let a = two_bus().build().unwrap();
        assert!(!a.uses_extended_semantics());
        assert_eq!(a.bus(BusId(0)).arbitration(), BusArbitration::External);
        assert_eq!(a.bridge(BridgeId(0)).latency(), 0.0);
        assert_eq!(a.flow(FlowId(0)).shape(), TrafficShape::Poisson);

        // Burst { batch: 1 } is Poisson, so still not extended.
        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        let q = b.add_processor("q", &[x], 1.0).unwrap();
        b.add_flow_shaped(
            p,
            FlowTarget::Processor(q),
            0.5,
            TrafficShape::Burst { batch: 1 },
        )
        .unwrap();
        assert!(!b.build().unwrap().uses_extended_semantics());

        // Each extension flips the flag on its own.
        let mut b = ArchitectureBuilder::new();
        let x = b
            .add_bus_with_arbitration("x", 1.0, BusArbitration::Priority)
            .unwrap();
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        let q = b.add_processor("q", &[x], 1.0).unwrap();
        b.add_flow(p, FlowTarget::Processor(q), 0.5).unwrap();
        assert!(b.build().unwrap().uses_extended_semantics());

        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let y = b.add_bus("y", 1.0).unwrap();
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        b.add_bridge_with_latency("g", x, y, 0.25).unwrap();
        b.add_flow(p, FlowTarget::Bus(y), 0.1).unwrap();
        assert!(b.build().unwrap().uses_extended_semantics());

        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        let q = b.add_processor("q", &[x], 1.0).unwrap();
        b.add_flow_shaped(
            p,
            FlowTarget::Processor(q),
            0.5,
            TrafficShape::OnOff {
                mean_on: 1.0,
                mean_off: 3.0,
            },
        )
        .unwrap();
        assert!(b.build().unwrap().uses_extended_semantics());

        // Validation of the extended declarations.
        let mut b = ArchitectureBuilder::new();
        assert!(b
            .add_bus_with_arbitration("x", 1.0, BusArbitration::Locked { max_batch: 0 })
            .is_err());
        let x = b
            .add_bus_with_arbitration("x", 1.0, BusArbitration::Locked { max_batch: 4 })
            .unwrap();
        let y = b.add_bus("y", 1.0).unwrap();
        assert!(b.add_bridge_with_latency("g", x, y, -1.0).is_err());
        assert!(b.add_bridge_with_latency("g", x, y, f64::NAN).is_err());
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        let tgt = FlowTarget::Bus(x);
        assert!(b
            .add_flow_shaped(p, tgt, 0.5, TrafficShape::Burst { batch: 0 })
            .is_err());
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(b
                .add_flow_shaped(
                    p,
                    tgt,
                    0.5,
                    TrafficShape::OnOff {
                        mean_on: bad,
                        mean_off: 1.0
                    }
                )
                .is_err());
            assert!(b
                .add_flow_shaped(
                    p,
                    tgt,
                    0.5,
                    TrafficShape::OnOff {
                        mean_on: 1.0,
                        mean_off: bad
                    }
                )
                .is_err());
        }
    }

    #[test]
    fn scale_rates_rescales_extended_durations() {
        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let y = b.add_bus("y", 2.0).unwrap();
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        b.add_bridge_with_latency("g", x, y, 0.5).unwrap();
        b.add_flow_shaped(
            p,
            FlowTarget::Bus(y),
            0.3,
            TrafficShape::OnOff {
                mean_on: 2.0,
                mean_off: 6.0,
            },
        )
        .unwrap();
        let a = b.build().unwrap();
        let s = a.scale_rates(4.0, 2.0).unwrap();
        assert_eq!(s.bridge(BridgeId(0)).latency(), 0.25);
        match s.flow(FlowId(0)).shape() {
            TrafficShape::OnOff { mean_on, mean_off } => {
                assert_eq!(mean_on, 0.5);
                assert_eq!(mean_off, 1.5);
            }
            other => panic!("shape changed: {other:?}"),
        }
    }

    #[test]
    fn bidirectional_bridge_creates_two() {
        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let y = b.add_bus("y", 1.0).unwrap();
        let (fw, bw) = b.add_bidirectional_bridge("g", x, y).unwrap();
        assert_ne!(fw, bw);
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        let q = b.add_processor("q", &[y], 1.0).unwrap();
        b.add_flow(p, FlowTarget::Processor(q), 0.1).unwrap();
        b.add_flow(q, FlowTarget::Processor(p), 0.1).unwrap();
        let a = b.build().unwrap();
        assert_eq!(a.num_bridges(), 2);
        assert_eq!(a.num_queues(), 4);
    }
}
