//! Graphviz (DOT) export of architectures and split results.
//!
//! Handy for eyeballing the templates and for documenting reconstructed
//! topologies; the `fig2_split` experiment binary prints these.

use std::fmt::Write as _;

use crate::split::SplitResult;
use crate::{Architecture, Client};

/// Renders the architecture as a DOT digraph: boxes for buses, ellipses
/// for processors, diamonds for bridges, dashed edges for attachments
/// and solid edges for bridge directions.
pub fn to_dot(arch: &Architecture) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph socbuf {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for b in arch.bus_ids() {
        let bus = arch.bus(b);
        let _ = writeln!(
            out,
            "  bus{} [shape=box,label=\"{} (mu={})\"];",
            b.index(),
            bus.name(),
            bus.service_rate()
        );
    }
    for p in arch.proc_ids() {
        let proc = arch.processor(p);
        let _ = writeln!(
            out,
            "  proc{} [shape=ellipse,label=\"{}\"];",
            p.index(),
            proc.name()
        );
        for bus in proc.buses() {
            let _ = writeln!(
                out,
                "  proc{} -> bus{} [style=dashed,dir=none];",
                p.index(),
                bus.index()
            );
        }
    }
    for g in arch.bridge_ids() {
        let bridge = arch.bridge(g);
        let _ = writeln!(
            out,
            "  bridge{} [shape=diamond,label=\"{}\"];",
            g.index(),
            bridge.name()
        );
        let _ = writeln!(
            out,
            "  bus{} -> bridge{};",
            bridge.from().index(),
            g.index()
        );
        let _ = writeln!(out, "  bridge{} -> bus{};", g.index(), bridge.to().index());
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders the split as a DOT digraph with one cluster per subsystem —
/// the visual analogue of the paper's Figure 2.
pub fn split_to_dot(arch: &Architecture, split: &SplitResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph socbuf_split {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for sub in &split.subsystems {
        let _ = writeln!(out, "  subgraph cluster_{} {{", sub.index);
        let _ = writeln!(out, "    label=\"subsystem {}\";", sub.index + 1);
        for &b in &sub.buses {
            let _ = writeln!(
                out,
                "    bus{} [shape=box,label=\"{}\"];",
                b.index(),
                arch.bus(b).name()
            );
        }
        for &p in &sub.processors {
            let _ = writeln!(
                out,
                "    proc{} [shape=ellipse,label=\"{}\"];",
                p.index(),
                arch.processor(p).name()
            );
        }
        // Bridge buffers drawn inside the subsystem that drains them.
        for &q in &sub.queues {
            if let Client::Bridge(g) = arch.queue(q).client {
                let _ = writeln!(
                    out,
                    "    buf{} [shape=cylinder,label=\"{} buffer\"];",
                    g.index(),
                    arch.bridge(g).name()
                );
            }
        }
        let _ = writeln!(out, "  }}");
    }
    for p in arch.proc_ids() {
        for bus in arch.processor(p).buses() {
            let _ = writeln!(
                out,
                "  proc{} -> bus{} [style=dashed,dir=none];",
                p.index(),
                bus.index()
            );
        }
    }
    for g in arch.bridge_ids() {
        let bridge = arch.bridge(g);
        let _ = writeln!(
            out,
            "  bus{} -> buf{} [style=bold];",
            bridge.from().index(),
            g.index()
        );
        let _ = writeln!(
            out,
            "  buf{} -> bus{} [style=bold];",
            g.index(),
            bridge.to().index()
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::split;
    use crate::templates;

    #[test]
    fn dot_mentions_every_component() {
        let a = templates::figure1();
        let dot = to_dot(&a);
        for b in a.bus_ids() {
            assert!(dot.contains(&format!("bus{}", b.index())));
        }
        for p in a.proc_ids() {
            assert!(dot.contains(a.processor(p).name()));
        }
        for g in a.bridge_ids() {
            assert!(dot.contains(a.bridge(g).name()));
        }
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn split_dot_has_one_cluster_per_subsystem() {
        let a = templates::figure1();
        let s = split(&a);
        let dot = split_to_dot(&a, &s);
        for sub in &s.subsystems {
            assert!(dot.contains(&format!("cluster_{}", sub.index)));
        }
        // Every bridge appears as a buffer cylinder exactly once.
        assert_eq!(dot.matches("shape=cylinder").count(), a.num_bridges());
    }
}
