//! Buffer-space allocations: how many units each queue gets.
//!
//! The paper's decision variable is exactly this object — a division of a
//! finite pool of buffer units among the architecture's queues. Baseline
//! policies ("constant sizing", traffic-proportional) live here; the
//! CTMDP-optimal allocation is computed by `socbuf-core`.

use crate::ids::QueueId;
use crate::{Architecture, SocError};

/// An assignment of integer buffer units to every queue of an
/// architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferAllocation {
    units: Vec<usize>,
}

impl BufferAllocation {
    /// Wraps an explicit per-queue unit vector.
    ///
    /// # Errors
    ///
    /// [`SocError::UnknownComponent`] if `units.len()` differs from the
    /// architecture's queue count.
    pub fn new(arch: &Architecture, units: Vec<usize>) -> Result<Self, SocError> {
        if units.len() != arch.num_queues() {
            return Err(SocError::UnknownComponent(format!(
                "allocation covers {} queues, architecture has {}",
                units.len(),
                arch.num_queues()
            )));
        }
        Ok(BufferAllocation { units })
    }

    /// The paper's "constant buffer sizing" baseline: split `total`
    /// units as evenly as integer arithmetic allows (largest-remainder
    /// apportionment of equal shares).
    pub fn uniform(arch: &Architecture, total: usize) -> Self {
        let shares = vec![1.0; arch.num_queues()];
        BufferAllocation {
            units: apportion(total, &shares),
        }
    }

    /// The "simple division depending on traffic ratios" the paper
    /// compares against: units proportional to each queue's nominal
    /// offered rate.
    pub fn traffic_proportional(arch: &Architecture, total: usize) -> Self {
        let shares: Vec<f64> = arch.queues().iter().map(|q| q.offered_rate).collect();
        BufferAllocation {
            units: apportion(total, &shares),
        }
    }

    /// Units granted to `queue`.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to the allocated architecture.
    pub fn units(&self, queue: QueueId) -> usize {
        self.units[queue.index()]
    }

    /// Total units across all queues.
    pub fn total(&self) -> usize {
        self.units.iter().sum()
    }

    /// The raw per-queue vector, indexed by queue position.
    pub fn as_slice(&self) -> &[usize] {
        &self.units
    }
}

/// Largest-remainder apportionment: splits `total` integer units in
/// proportion to non-negative `shares`. Zero/negative-sum share vectors
/// fall back to an even split. The result always sums to `total`.
/// Remainder ties are broken by position (lowest index wins).
pub fn apportion(total: usize, shares: &[f64]) -> Vec<usize> {
    apportion_with_keys(total, shares, &vec![(); shares.len()])
}

/// [`apportion`] with explicit tie-breaking keys: when two entries have
/// exactly equal fractional remainders, the smaller `keys` entry wins
/// the extra unit (falling back to position only for equal keys).
///
/// With keys intrinsic to the entries (e.g. unique queue names) the
/// apportionment becomes **permutation-equivariant**: reordering the
/// entries reorders the result accordingly, which is what lets the
/// sizing pipeline promise declaration-order independence. The plain
/// [`apportion`] uses unit keys, i.e. positional tie-breaking.
///
/// # Panics
///
/// Panics if `keys` and `shares` lengths differ.
pub fn apportion_with_keys<K: Ord>(total: usize, shares: &[f64], keys: &[K]) -> Vec<usize> {
    assert_eq!(keys.len(), shares.len(), "one key per share");
    let n = shares.len();
    if n == 0 {
        return Vec::new();
    }
    let sum: f64 = shares.iter().filter(|s| s.is_finite() && **s > 0.0).sum();
    let effective: Vec<f64> = if sum <= 0.0 {
        vec![1.0; n]
    } else {
        shares
            .iter()
            .map(|&s| if s.is_finite() && s > 0.0 { s } else { 0.0 })
            .collect()
    };
    let esum: f64 = effective.iter().sum();
    let quota: Vec<f64> = effective.iter().map(|s| total as f64 * s / esum).collect();
    let mut units: Vec<usize> = quota.iter().map(|q| q.floor() as usize).collect();
    let assigned: usize = units.iter().sum();
    let mut remainders: Vec<(usize, f64)> = quota
        .iter()
        .enumerate()
        .map(|(i, q)| (i, q - q.floor()))
        .collect();
    remainders.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite remainders")
            .then_with(|| keys[a.0].cmp(&keys[b.0]))
            .then(a.0.cmp(&b.0))
    });
    let mut left = total - assigned;
    for (i, _) in remainders {
        if left == 0 {
            break;
        }
        units[i] += 1;
        left -= 1;
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates;

    #[test]
    fn apportion_sums_exactly() {
        for total in [0usize, 1, 7, 160, 641] {
            let u = apportion(total, &[1.0, 2.0, 3.0]);
            assert_eq!(u.iter().sum::<usize>(), total);
        }
        assert!(apportion(5, &[]).is_empty());
    }

    #[test]
    fn apportion_respects_proportions() {
        let u = apportion(60, &[1.0, 2.0, 3.0]);
        assert_eq!(u, vec![10, 20, 30]);
    }

    #[test]
    fn apportion_handles_zero_shares() {
        let u = apportion(10, &[0.0, 0.0]);
        assert_eq!(u.iter().sum::<usize>(), 10);
        let u = apportion(9, &[0.0, 1.0, f64::NAN]);
        assert_eq!(u[1], 9);
    }

    #[test]
    fn uniform_is_even() {
        let a = templates::figure1();
        let alloc = BufferAllocation::uniform(&a, 2 * a.num_queues() + 1);
        assert_eq!(alloc.total(), 2 * a.num_queues() + 1);
        let min = alloc.as_slice().iter().min().unwrap();
        let max = alloc.as_slice().iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn traffic_proportional_favors_hot_queues() {
        let a = templates::network_processor();
        let alloc = BufferAllocation::traffic_proportional(&a, 320);
        assert_eq!(alloc.total(), 320);
        // The DMA queue (offered 0.85) must get more than a cold port
        // processor (offered 0.08).
        let mut dma_units = 0;
        let mut cold_units = usize::MAX;
        for q in a.queues() {
            let name = a.queue_name(q.id);
            if name.starts_with("P18@mem") {
                dma_units = alloc.units(q.id);
            }
            if name.starts_with("P9@") {
                cold_units = alloc.units(q.id);
            }
        }
        assert!(dma_units > cold_units, "{dma_units} <= {cold_units}");
    }

    #[test]
    fn new_validates_length() {
        let a = templates::figure1();
        assert!(BufferAllocation::new(&a, vec![1; 3]).is_err());
        let ok = BufferAllocation::new(&a, vec![2; a.num_queues()]).unwrap();
        assert_eq!(ok.total(), 2 * a.num_queues());
    }
}
