//! The paper's subsystem-splitting algorithm (Figure 2).
//!
//! Bridges couple the steady-state equations of their two buses: an
//! un-buffered transfer needs both buses at once, which puts *products*
//! of the two buses' decision variables into the balance equations
//! (see `socbuf-core::coupled` for the explicit quadratic system). The
//! paper's fix is structural: insert a buffer at every bridge, which
//! makes the hand-off asynchronous, then *cut the architecture at the
//! buffers*. What remains are independent linear subsystems — buses that
//! stay connected only through shared (multi-homed) processors — whose
//! CTMDP equations can all be solved jointly in one LP.

use crate::ids::{BridgeId, BusId, ProcId, QueueId};
use crate::Architecture;

/// One linear subsystem: a maximal set of buses not separated by a
/// bridge buffer, with everything attached to them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subsystem {
    /// Position in [`SplitResult::subsystems`].
    pub index: usize,
    /// Buses of this subsystem.
    pub buses: Vec<BusId>,
    /// Processors attached to at least one bus of the subsystem.
    pub processors: Vec<ProcId>,
    /// Queues served by this subsystem's buses (processor queues and
    /// incoming bridge buffers).
    pub queues: Vec<QueueId>,
    /// Bridges whose *downstream* bus lies here (their buffers are
    /// clients of this subsystem).
    pub incoming_bridges: Vec<BridgeId>,
    /// Bridges whose *upstream* bus lies here (this subsystem deposits
    /// into buffers owned by a neighbour).
    pub outgoing_bridges: Vec<BridgeId>,
}

/// Result of [`split`]: the subsystems plus lookup tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitResult {
    /// The linear subsystems, in discovery order.
    pub subsystems: Vec<Subsystem>,
    /// Subsystem index of every bus.
    pub bus_subsystem: Vec<usize>,
    /// Subsystem index of every queue (a bridge buffer belongs to its
    /// downstream bus's subsystem).
    pub queue_subsystem: Vec<usize>,
}

impl SplitResult {
    /// Subsystem containing `bus`.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to the split architecture.
    pub fn subsystem_of_bus(&self, bus: BusId) -> &Subsystem {
        &self.subsystems[self.bus_subsystem[bus.index()]]
    }

    /// Subsystem containing `queue`.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to the split architecture.
    pub fn subsystem_of_queue(&self, queue: QueueId) -> &Subsystem {
        &self.subsystems[self.queue_subsystem[queue.index()]]
    }
}

/// Splits `arch` into linear subsystems by cutting every bridge.
///
/// Two buses end up in the same subsystem iff they are connected by a
/// chain of *shared processors* (a multi-homed processor couples the
/// buses it sits on); bridge edges are exactly the cut set.
///
/// # Examples
///
/// ```
/// use socbuf_soc::templates;
/// use socbuf_soc::split::split;
///
/// let arch = templates::figure1();
/// let parts = split(&arch);
/// assert_eq!(parts.subsystems.len(), 4);
/// // Every queue lands in exactly one subsystem.
/// let total: usize = parts.subsystems.iter().map(|s| s.queues.len()).sum();
/// assert_eq!(total, arch.num_queues());
/// ```
pub fn split(arch: &Architecture) -> SplitResult {
    let nb = arch.num_buses();

    // Union-find over buses; union buses sharing a processor.
    let mut parent: Vec<usize> = (0..nb).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = i;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for p in arch.proc_ids() {
        let buses = arch.processor(p).buses();
        for w in buses.windows(2) {
            let (a, b) = (
                find(&mut parent, w[0].index()),
                find(&mut parent, w[1].index()),
            );
            if a != b {
                parent[a] = b;
            }
        }
    }

    // Number the components in first-appearance order.
    let mut comp_of_root: Vec<Option<usize>> = vec![None; nb];
    let mut bus_subsystem = vec![0usize; nb];
    let mut n_comp = 0;
    for b in 0..nb {
        let r = find(&mut parent, b);
        let c = *comp_of_root[r].get_or_insert_with(|| {
            let c = n_comp;
            n_comp += 1;
            c
        });
        bus_subsystem[b] = c;
    }

    let mut subsystems: Vec<Subsystem> = (0..n_comp)
        .map(|index| Subsystem {
            index,
            buses: Vec::new(),
            processors: Vec::new(),
            queues: Vec::new(),
            incoming_bridges: Vec::new(),
            outgoing_bridges: Vec::new(),
        })
        .collect();

    for b in arch.bus_ids() {
        subsystems[bus_subsystem[b.index()]].buses.push(b);
    }
    for p in arch.proc_ids() {
        // A processor's buses are all in one component by construction;
        // attach it to that component.
        let c = bus_subsystem[arch.processor(p).buses()[0].index()];
        subsystems[c].processors.push(p);
    }
    let mut queue_subsystem = vec![0usize; arch.num_queues()];
    for q in arch.queues() {
        let c = bus_subsystem[q.bus.index()];
        queue_subsystem[q.id.index()] = c;
        subsystems[c].queues.push(q.id);
    }
    for g in arch.bridge_ids() {
        let bridge = arch.bridge(g);
        let up = bus_subsystem[bridge.from().index()];
        let down = bus_subsystem[bridge.to().index()];
        subsystems[up].outgoing_bridges.push(g);
        subsystems[down].incoming_bridges.push(g);
    }

    SplitResult {
        subsystems,
        bus_subsystem,
        queue_subsystem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchitectureBuilder, FlowTarget};

    #[test]
    fn single_bus_is_one_subsystem() {
        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        let q = b.add_processor("q", &[x], 1.0).unwrap();
        b.add_flow(p, FlowTarget::Processor(q), 0.1).unwrap();
        let a = b.build().unwrap();
        let s = split(&a);
        assert_eq!(s.subsystems.len(), 1);
        assert_eq!(s.subsystems[0].processors.len(), 2);
        assert!(s.subsystems[0].incoming_bridges.is_empty());
    }

    #[test]
    fn bridge_separates_buses() {
        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let y = b.add_bus("y", 1.0).unwrap();
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        let g = b.add_bridge("g", x, y).unwrap();
        b.add_flow(p, FlowTarget::Bus(y), 0.1).unwrap();
        let a = b.build().unwrap();
        let s = split(&a);
        assert_eq!(s.subsystems.len(), 2);
        // The bridge buffer queue lives with the downstream bus.
        let down = s.subsystem_of_bus(y);
        assert_eq!(down.queues.len(), 1);
        assert_eq!(down.incoming_bridges, vec![g]);
        let up = s.subsystem_of_bus(x);
        assert_eq!(up.outgoing_bridges, vec![g]);
    }

    #[test]
    fn shared_processor_fuses_buses() {
        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let y = b.add_bus("y", 1.0).unwrap();
        let p = b.add_processor("p", &[x, y], 1.0).unwrap();
        let q = b.add_processor("q", &[y], 1.0).unwrap();
        b.add_flow(p, FlowTarget::Processor(q), 0.1).unwrap();
        let a = b.build().unwrap();
        let s = split(&a);
        assert_eq!(s.subsystems.len(), 1);
        assert_eq!(s.subsystems[0].buses.len(), 2);
    }

    #[test]
    fn intra_subsystem_bridge_is_both_incoming_and_outgoing() {
        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let y = b.add_bus("y", 1.0).unwrap();
        // p fuses x and y; the bridge is then internal to the subsystem.
        let p = b.add_processor("p", &[x, y], 1.0).unwrap();
        let g = b.add_bridge("g", x, y).unwrap();
        b.add_flow(p, FlowTarget::Bus(y), 0.1).unwrap();
        let a = b.build().unwrap();
        let s = split(&a);
        assert_eq!(s.subsystems.len(), 1);
        assert_eq!(s.subsystems[0].incoming_bridges, vec![g]);
        assert_eq!(s.subsystems[0].outgoing_bridges, vec![g]);
    }

    #[test]
    fn partition_invariants_on_a_chain() {
        // x -g1-> y -g2-> z: three singleton subsystems.
        let mut b = ArchitectureBuilder::new();
        let x = b.add_bus("x", 1.0).unwrap();
        let y = b.add_bus("y", 1.0).unwrap();
        let z = b.add_bus("z", 1.0).unwrap();
        let p = b.add_processor("p", &[x], 1.0).unwrap();
        b.add_bridge("g1", x, y).unwrap();
        b.add_bridge("g2", y, z).unwrap();
        b.add_flow(p, FlowTarget::Bus(z), 0.1).unwrap();
        let a = b.build().unwrap();
        let s = split(&a);
        assert_eq!(s.subsystems.len(), 3);
        // Buses partition.
        let nbuses: usize = s.subsystems.iter().map(|c| c.buses.len()).sum();
        assert_eq!(nbuses, a.num_buses());
        // Queues partition.
        let nqueues: usize = s.subsystems.iter().map(|c| c.queues.len()).sum();
        assert_eq!(nqueues, a.num_queues());
        // Flow path visits subsystems x, y, z in order.
        let path = a.flow_path(crate::FlowId(0));
        let subs: Vec<usize> = path.iter().map(|&q| s.queue_subsystem[q.index()]).collect();
        assert_eq!(subs.len(), 3);
        assert_ne!(subs[0], subs[1]);
        assert_ne!(subs[1], subs[2]);
    }
}
