//! Canonical architectures: the paper's examples plus reusable test beds.
//!
//! * [`figure1`] — the bridge example of the paper's Figure 1,
//!   reconstructed from the text (the published figure is partly
//!   illegible; see `DESIGN.md` §7 for the reconstruction notes). Its
//!   defining property: cutting at the four bridges yields exactly the
//!   four subsystems of Figure 2, with processors 1–3 in the first.
//! * [`network_processor`] — the 18-processor network-processor-style
//!   evaluation platform used for Figure 3 and Table 1: four port buses
//!   of four port processors each, a control processor, and a DMA engine
//!   on a shared memory bus, all joined by bridges. Processors 1, 4, 15
//!   and 16 (1-indexed, as in the paper's Table 1) carry hot traffic.
//! * [`amba`] / [`coreconnect`] — the bus standards the paper cites as
//!   typical bridge-based systems.
//! * [`random_architecture`] — seeded random architectures for property
//!   tests.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Architecture, ArchitectureBuilder, BusId, FlowTarget, ProcId};

/// The paper's Figure 1 example: buses `a..g`, processors `1..5`, four
/// bridges (`b1: b→f`, `b2: f→g`, `b3: g→b`, `b4: c→d`).
///
/// Splitting yields four subsystems: `{a,b,c}` (processors 1–3),
/// `{d,e}` (processor 4), `{f}` and `{g}` (processor 5).
///
/// # Panics
///
/// Never panics: the template is statically valid (covered by tests).
pub fn figure1() -> Architecture {
    let mut b = ArchitectureBuilder::new();
    let a = b.add_bus("a", 1.0).expect("valid bus");
    let bus_b = b.add_bus("b", 1.0).expect("valid bus");
    let c = b.add_bus("c", 0.8).expect("valid bus");
    let d = b.add_bus("d", 0.8).expect("valid bus");
    let e = b.add_bus("e", 0.8).expect("valid bus");
    let f = b.add_bus("f", 0.6).expect("valid bus");
    let g = b.add_bus("g", 0.6).expect("valid bus");

    let p1 = b.add_processor("p1", &[a], 1.0).expect("valid processor");
    let p2 = b
        .add_processor("p2", &[a, bus_b], 1.0)
        .expect("valid processor");
    let p3 = b
        .add_processor("p3", &[bus_b, c], 1.0)
        .expect("valid processor");
    let p4 = b
        .add_processor("p4", &[d, e], 1.0)
        .expect("valid processor");
    let p5 = b.add_processor("p5", &[g], 1.0).expect("valid processor");

    b.add_bridge("b1", bus_b, f).expect("valid bridge");
    b.add_bridge("b2", f, g).expect("valid bridge");
    b.add_bridge("b3", g, bus_b).expect("valid bridge");
    b.add_bridge("b4", c, d).expect("valid bridge");

    b.add_flow(p1, FlowTarget::Processor(p2), 0.15)
        .expect("routable");
    b.add_flow(p2, FlowTarget::Processor(p3), 0.20)
        .expect("routable");
    b.add_flow(p2, FlowTarget::Processor(p5), 0.12)
        .expect("routable");
    b.add_flow(p5, FlowTarget::Processor(p2), 0.10)
        .expect("routable");
    b.add_flow(p3, FlowTarget::Processor(p4), 0.08)
        .expect("routable");
    b.add_flow(p3, FlowTarget::Processor(p2), 0.10)
        .expect("routable");
    b.add_flow(p4, FlowTarget::Bus(e), 0.20).expect("routable");

    b.build().expect("figure1 template is valid")
}

/// Rate profile of the network-processor template (ingress λ per port
/// processor, row = port bus, column = port within the bus). Processors
/// 1, 4, 15, 16 — the ones the paper's Table 1 highlights — are hot.
pub const NP_INGRESS_RATES: [[f64; 4]; 4] = [
    [0.36, 0.10, 0.12, 0.33],
    [0.12, 0.15, 0.10, 0.13],
    [0.08, 0.10, 0.12, 0.09],
    [0.10, 0.08, 0.36, 0.38],
];

/// Per-port egress rate (DMA engine → each port processor).
pub const NP_EGRESS_RATE: f64 = 0.05;

/// The evaluation platform: a network-processor-style SoC with 18
/// processors (16 port processors on 4 port buses, one control
/// processor, one DMA engine), a shared memory bus, and 10 bridges.
///
/// Traffic: every port processor streams ingress packets to the memory
/// bus; the DMA engine streams egress packets back to every port
/// processor; four cross-port flows traverse two bridges; the control
/// processor exchanges light traffic with the memory subsystem.
///
/// # Panics
///
/// Never panics: the template is statically valid (covered by tests).
pub fn network_processor() -> Architecture {
    let mut b = ArchitectureBuilder::new();
    let pb: Vec<BusId> = (0..4)
        .map(|k| b.add_bus(format!("port{k}"), 1.3).expect("valid bus"))
        .collect();
    let mem = b.add_bus("mem", 6.0).expect("valid bus");
    let ctrl = b.add_bus("ctrl", 0.6).expect("valid bus");

    // Port processors P1..P16 (creation order defines the paper's
    // 1-indexed processor numbering).
    let mut ports: Vec<ProcId> = Vec::with_capacity(16);
    for k in 0..4 {
        for j in 0..4 {
            let p = b
                .add_processor(format!("P{}", k * 4 + j + 1), &[pb[k]], 1.0)
                .expect("valid processor");
            ports.push(p);
        }
    }
    let cp = b
        .add_processor("P17", &[ctrl], 1.0)
        .expect("valid processor");
    let dma = b
        .add_processor("P18", &[mem], 1.0)
        .expect("valid processor");

    for (k, &bus) in pb.iter().enumerate() {
        b.add_bridge(format!("up{k}"), bus, mem)
            .expect("valid bridge");
        b.add_bridge(format!("down{k}"), mem, bus)
            .expect("valid bridge");
    }
    b.add_bridge("cup", ctrl, mem).expect("valid bridge");
    b.add_bridge("cdown", mem, ctrl).expect("valid bridge");

    // Ingress: port → memory.
    for k in 0..4 {
        for j in 0..4 {
            b.add_flow(
                ports[k * 4 + j],
                FlowTarget::Bus(mem),
                NP_INGRESS_RATES[k][j],
            )
            .expect("routable");
        }
    }
    // Egress: DMA → every port processor.
    for &p in &ports {
        b.add_flow(dma, FlowTarget::Processor(p), NP_EGRESS_RATE)
            .expect("routable");
    }
    // Cross-port flows (two bridge crossings each).
    b.add_flow(ports[1], FlowTarget::Processor(ports[9]), 0.04)
        .expect("routable");
    b.add_flow(ports[5], FlowTarget::Processor(ports[13]), 0.04)
        .expect("routable");
    b.add_flow(ports[10], FlowTarget::Processor(ports[2]), 0.03)
        .expect("routable");
    b.add_flow(ports[15], FlowTarget::Processor(ports[7]), 0.03)
        .expect("routable");
    // Control traffic.
    b.add_flow(cp, FlowTarget::Bus(mem), 0.08)
        .expect("routable");
    b.add_flow(dma, FlowTarget::Processor(cp), 0.05)
        .expect("routable");

    b.build().expect("network_processor template is valid")
}

/// An AMBA-style system: a fast AHB with CPU and DMA masters, a slow APB
/// behind an AHB→APB bridge, and peripheral processors on the APB.
///
/// # Panics
///
/// Never panics: the template is statically valid (covered by tests).
pub fn amba() -> Architecture {
    let mut b = ArchitectureBuilder::new();
    let ahb = b.add_bus("ahb", 2.0).expect("valid bus");
    let apb = b.add_bus("apb", 0.4).expect("valid bus");
    let cpu = b
        .add_processor("cpu", &[ahb], 1.0)
        .expect("valid processor");
    let dma = b
        .add_processor("dma", &[ahb], 1.0)
        .expect("valid processor");
    let uart = b
        .add_processor("uart", &[apb], 1.0)
        .expect("valid processor");
    let timer = b
        .add_processor("timer", &[apb], 1.0)
        .expect("valid processor");
    b.add_bridge("ahb2apb", ahb, apb).expect("valid bridge");

    b.add_flow(cpu, FlowTarget::Bus(ahb), 0.80)
        .expect("routable");
    b.add_flow(dma, FlowTarget::Bus(ahb), 0.50)
        .expect("routable");
    b.add_flow(cpu, FlowTarget::Processor(uart), 0.15)
        .expect("routable");
    b.add_flow(dma, FlowTarget::Processor(timer), 0.06)
        .expect("routable");
    b.add_flow(uart, FlowTarget::Bus(apb), 0.05)
        .expect("routable");
    b.add_flow(timer, FlowTarget::Bus(apb), 0.04)
        .expect("routable");
    b.build().expect("amba template is valid")
}

/// A CoreConnect-style system: a PLB with three masters, an OPB with two
/// peripherals, and bridges in both directions.
///
/// # Panics
///
/// Never panics: the template is statically valid (covered by tests).
pub fn coreconnect() -> Architecture {
    let mut b = ArchitectureBuilder::new();
    let plb = b.add_bus("plb", 3.0).expect("valid bus");
    let opb = b.add_bus("opb", 0.5).expect("valid bus");
    let cpu0 = b
        .add_processor("cpu0", &[plb], 1.0)
        .expect("valid processor");
    let cpu1 = b
        .add_processor("cpu1", &[plb], 1.0)
        .expect("valid processor");
    let eth = b
        .add_processor("eth", &[plb], 1.0)
        .expect("valid processor");
    let uart = b
        .add_processor("uart", &[opb], 1.0)
        .expect("valid processor");
    let gpio = b
        .add_processor("gpio", &[opb], 1.0)
        .expect("valid processor");
    b.add_bidirectional_bridge("plb2opb", plb, opb)
        .expect("valid bridge");

    b.add_flow(cpu0, FlowTarget::Bus(plb), 0.9)
        .expect("routable");
    b.add_flow(cpu1, FlowTarget::Bus(plb), 0.7)
        .expect("routable");
    b.add_flow(eth, FlowTarget::Bus(plb), 0.5)
        .expect("routable");
    b.add_flow(cpu0, FlowTarget::Processor(uart), 0.10)
        .expect("routable");
    b.add_flow(cpu1, FlowTarget::Processor(gpio), 0.08)
        .expect("routable");
    b.add_flow(uart, FlowTarget::Processor(cpu0), 0.05)
        .expect("routable");
    b.add_flow(gpio, FlowTarget::Processor(cpu1), 0.04)
        .expect("routable");
    b.build().expect("coreconnect template is valid")
}

/// Tunable knobs for [`random_architecture`].
///
/// The structural counts shape the topology; the rate ranges and the
/// multi-homing probability are the campaign-level knobs `socbuf-sweep`
/// fans out over (e.g. hotter traffic mixes, slower buses). Defaults
/// reproduce the historical generator bit for bit: a given `(seed,
/// params)` pair pins one architecture forever, which is what lets
/// random campaigns cite architectures by seed.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomArchParams {
    /// Number of buses (≥ 1).
    pub buses: usize,
    /// Number of processors (≥ 1).
    pub processors: usize,
    /// Number of bridges to attempt.
    pub bridges: usize,
    /// Number of flows to attempt (only routable candidates are kept, so
    /// the built architecture may carry fewer).
    pub flows: usize,
    /// Half-open range bus service rates μ are drawn from.
    pub bus_rate_range: (f64, f64),
    /// Half-open range flow rates λ are drawn from.
    pub flow_rate_range: (f64, f64),
    /// Probability that a processor attaches to a second bus.
    pub multi_home_prob: f64,
}

impl Default for RandomArchParams {
    fn default() -> Self {
        RandomArchParams {
            buses: 4,
            processors: 6,
            bridges: 4,
            flows: 10,
            bus_rate_range: (0.5, 4.0),
            flow_rate_range: (0.02, 0.4),
            multi_home_prob: 0.25,
        }
    }
}

impl RandomArchParams {
    /// Returns a copy with the *flow*-rate range multiplied by `factor`
    /// (bus service rates untouched, so utilization scales with the
    /// factor) — the hook load campaigns use to heat up or cool down
    /// whole populations of random architectures without touching their
    /// topology knobs.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    #[must_use]
    pub fn with_load_factor(&self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "load factor must be positive and finite"
        );
        RandomArchParams {
            flow_rate_range: (
                self.flow_rate_range.0 * factor,
                self.flow_rate_range.1 * factor,
            ),
            ..self.clone()
        }
    }
}

/// Builds a seeded random architecture (for property tests and fuzzing).
/// At least one flow is always present.
///
/// # Panics
///
/// Panics if `params` has zero buses or processors.
pub fn random_architecture(seed: u64, params: &RandomArchParams) -> Architecture {
    assert!(
        params.buses > 0 && params.processors > 0,
        "need buses and processors"
    );
    assert!(
        params.bus_rate_range.0 < params.bus_rate_range.1
            && params.flow_rate_range.0 < params.flow_rate_range.1
            && params.bus_rate_range.0 > 0.0
            && params.flow_rate_range.0 > 0.0,
        "rate ranges must be non-empty and positive"
    );
    assert!(
        (0.0..=1.0).contains(&params.multi_home_prob),
        "multi_home_prob must be a probability"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = ArchitectureBuilder::new();
    let buses: Vec<BusId> = (0..params.buses)
        .map(|i| {
            b.add_bus(
                format!("bus{i}"),
                rng.gen_range(params.bus_rate_range.0..params.bus_rate_range.1),
            )
            .expect("valid bus")
        })
        .collect();
    let procs: Vec<ProcId> = (0..params.processors)
        .map(|i| {
            let home = buses[rng.gen_range(0..buses.len())];
            let mut attach = vec![home];
            if params.buses > 1 && rng.gen_bool(params.multi_home_prob) {
                let other = buses[rng.gen_range(0..buses.len())];
                if other != home {
                    attach.push(other);
                }
            }
            b.add_processor(format!("proc{i}"), &attach, 1.0)
                .expect("valid processor")
        })
        .collect();

    // Directed adjacency for local routability checks.
    let mut adj = vec![Vec::new(); params.buses];
    for i in 0..params.bridges {
        if params.buses < 2 {
            break;
        }
        let from = rng.gen_range(0..buses.len());
        let mut to = rng.gen_range(0..buses.len());
        if to == from {
            to = (to + 1) % buses.len();
        }
        b.add_bridge(format!("br{i}"), buses[from], buses[to])
            .expect("valid bridge");
        adj[from].push(to);
    }

    let reachable = |from: &[usize], to: &[usize]| -> bool {
        let mut seen = vec![false; params.buses];
        let mut stack: Vec<usize> = from.to_vec();
        for &s in from {
            seen[s] = true;
        }
        while let Some(u) = stack.pop() {
            if to.contains(&u) {
                return true;
            }
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        false
    };

    // Attempt flows and keep only routable candidates.
    let mut added = 0;
    let mut tries = 0;
    while added < params.flows && tries < params.flows * 20 {
        tries += 1;
        let src = rng.gen_range(0..procs.len());
        let dst_bus = rng.gen_range(0..buses.len());
        let src_attach = attachment_of(&b, src);
        if reachable(&src_attach, &[dst_bus]) {
            b.add_flow(
                procs[src],
                FlowTarget::Bus(buses[dst_bus]),
                rng.gen_range(params.flow_rate_range.0..params.flow_rate_range.1),
            )
            .expect("valid flow");
            added += 1;
        }
    }
    if added == 0 {
        // Guarantee at least one trivially-routable local flow.
        let src = 0;
        let bus = attachment_of(&b, src)[0];
        b.add_flow(procs[src], FlowTarget::Bus(buses[bus]), 0.1)
            .expect("valid flow");
    }
    b.build()
        .expect("random architecture construction is routable by design")
}

/// Crate-private peek at a builder's processor attachment (index form).
fn attachment_of(b: &ArchitectureBuilder, proc_index: usize) -> Vec<usize> {
    b.processor_buses(proc_index)
}

/// A deliberately ill-conditioned architecture: two bridged buses with
/// three processors whose service and arrival rates are drawn
/// **log-uniformly over `1e-3..1e3`** from a deterministic hash of
/// `seed` — the "rates stated in arbitrary units" regime the LP layer's
/// equilibration pass exists for. The topology is fixed (so every seed
/// exercises bridge blocks, a shared bus row and a cross-bus flow); only
/// the rate magnitudes vary, spanning up to six orders within one
/// instance.
pub fn ill_conditioned(seed: u64) -> Architecture {
    // SplitMix64 of (seed, k) → uniform in [0, 1) → 10^(−3 + 6u).
    let log_uniform = |k: u64| -> f64 {
        let mut z = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(k.wrapping_add(1).wrapping_mul(0xD1B54A32D192ED03));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        10f64.powf(-3.0 + 6.0 * u)
    };
    let mut b = ArchitectureBuilder::new();
    let bus0 = b.add_bus("bus0", log_uniform(0)).expect("valid bus");
    let bus1 = b.add_bus("bus1", log_uniform(1)).expect("valid bus");
    let p0 = b.add_processor("p0", &[bus0], 1.0).expect("valid proc");
    let p1 = b.add_processor("p1", &[bus0], 1.0).expect("valid proc");
    let p2 = b.add_processor("p2", &[bus1], 1.0).expect("valid proc");
    b.add_bridge("br", bus0, bus1).expect("valid bridge");
    b.add_flow(p0, FlowTarget::Bus(bus0), log_uniform(2))
        .expect("routable");
    b.add_flow(p1, FlowTarget::Bus(bus1), log_uniform(3))
        .expect("routable");
    b.add_flow(p2, FlowTarget::Bus(bus1), log_uniform(4))
        .expect("routable");
    b.build().expect("ill-conditioned template is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::split;
    use crate::Client;

    #[test]
    fn ill_conditioned_is_deterministic_per_seed() {
        let rates =
            |x: &Architecture| -> Vec<f64> { x.queues().iter().map(|q| q.offered_rate).collect() };
        let a = ill_conditioned(42);
        assert_eq!(rates(&a), rates(&ill_conditioned(42)));
        assert_ne!(rates(&a), rates(&ill_conditioned(43)));
        for q in a.queues() {
            assert!(
                (1e-3..=1e3).contains(&q.offered_rate),
                "rate {} outside the documented range",
                q.offered_rate
            );
        }
    }

    #[test]
    fn figure1_splits_into_four_subsystems() {
        let a = figure1();
        assert_eq!(a.num_buses(), 7);
        assert_eq!(a.num_processors(), 5);
        assert_eq!(a.num_bridges(), 4);
        let s = split(&a);
        assert_eq!(s.subsystems.len(), 4);
        // Processors 1..3 share the first subsystem (buses a, b, c).
        let s0 = s.subsystem_of_bus(crate::BusId(0));
        let names: Vec<&str> = s0
            .processors
            .iter()
            .map(|&p| a.processor(p).name())
            .collect();
        assert_eq!(names, vec!["p1", "p2", "p3"]);
        assert_eq!(s0.buses.len(), 3);
    }

    #[test]
    fn figure1_bridge_buffers_sit_downstream() {
        let a = figure1();
        for g in a.bridge_ids() {
            let bridge = a.bridge(g);
            for q in a.queues() {
                if let Client::Bridge(qb) = q.client {
                    if qb == g {
                        assert_eq!(
                            q.bus,
                            bridge.to(),
                            "bridge {} buffer on wrong bus",
                            bridge.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn network_processor_shape() {
        let a = network_processor();
        assert_eq!(a.num_processors(), 18);
        assert_eq!(a.num_buses(), 6);
        assert_eq!(a.num_bridges(), 10);
        // All port buses + ctrl are separate subsystems; mem is its own.
        let s = split(&a);
        assert_eq!(s.subsystems.len(), 6);
        // Every bus is under its capacity in the nominal estimate
        // (feasible traffic: resizing can reach zero loss, Table 1's 640
        // column).
        for bus in a.bus_ids() {
            let u = a.bus_utilization_estimate(bus);
            assert!(u < 1.0, "bus {} overloaded: {u}", a.bus(bus).name());
        }
    }

    #[test]
    fn network_processor_hot_processors_match_table1() {
        // Paper's Table 1 highlights processors 1, 4, 15, 16 (1-indexed):
        // they carry the largest ingress rates in the template.
        let hot = [1usize, 4, 15, 16];
        let a = network_processor();
        let ingress_of = |idx1: usize| -> f64 {
            let p = crate::ProcId(idx1 - 1);
            a.flow_ids()
                .filter(|&f| a.flow(f).src() == p)
                .map(|f| a.flow(f).rate())
                .sum()
        };
        let hot_min = hot.iter().map(|&i| ingress_of(i)).fold(f64::MAX, f64::min);
        for i in 1..=16 {
            if !hot.contains(&i) {
                assert!(
                    ingress_of(i) < hot_min,
                    "processor {i} hotter than a Table-1 processor"
                );
            }
        }
    }

    #[test]
    fn network_processor_cross_flows_cross_two_bridges() {
        let a = network_processor();
        let mut two_bridge_flows = 0;
        for f in a.flow_ids() {
            if a.route(f).bridges.len() == 2 {
                two_bridge_flows += 1;
            }
        }
        assert_eq!(two_bridge_flows, 4);
    }

    #[test]
    fn amba_and_coreconnect_build() {
        let a = amba();
        assert_eq!(a.num_buses(), 2);
        assert_eq!(split(&a).subsystems.len(), 2);
        let c = coreconnect();
        assert_eq!(c.num_bridges(), 2);
        assert_eq!(split(&c).subsystems.len(), 2);
        for bus in c.bus_ids() {
            assert!(c.bus_utilization_estimate(bus) < 1.0);
        }
    }

    #[test]
    fn random_architectures_always_build() {
        for seed in 0..50 {
            let a = random_architecture(seed, &RandomArchParams::default());
            assert!(a.num_flows() >= 1);
            let s = split(&a);
            let buses: usize = s.subsystems.iter().map(|c| c.buses.len()).sum();
            assert_eq!(buses, a.num_buses());
        }
    }

    #[test]
    fn random_architecture_is_deterministic_per_seed() {
        let p = RandomArchParams::default();
        let a = random_architecture(7, &p);
        let b = random_architecture(7, &p);
        assert_eq!(a.num_flows(), b.num_flows());
        assert_eq!(a.num_queues(), b.num_queues());
    }

    #[test]
    fn random_architecture_honors_rate_ranges() {
        let p = RandomArchParams {
            bus_rate_range: (2.0, 2.5),
            flow_rate_range: (0.05, 0.06),
            ..RandomArchParams::default()
        };
        for seed in 0..10 {
            let a = random_architecture(seed, &p);
            for bus in a.bus_ids() {
                let mu = a.bus(bus).service_rate();
                assert!((2.0..2.5).contains(&mu), "μ {mu} outside range");
            }
            for f in a.flow_ids() {
                let rate = a.flow(f).rate();
                // The guaranteed-routable fallback flow uses a fixed 0.1,
                // but it only fires when no sampled flow was routable.
                assert!(
                    (0.05..0.06).contains(&rate) || (a.num_flows() == 1 && rate == 0.1),
                    "λ {rate} outside range"
                );
            }
        }
    }

    #[test]
    fn with_load_factor_scales_only_flow_rates() {
        let p = RandomArchParams::default().with_load_factor(2.0);
        assert_eq!(p.flow_rate_range, (0.04, 0.8));
        assert_eq!(p.bus_rate_range, RandomArchParams::default().bus_rate_range);
        assert_eq!(p.buses, RandomArchParams::default().buses);
    }

    #[test]
    fn zero_multi_home_prob_keeps_processors_single_homed() {
        let p = RandomArchParams {
            multi_home_prob: 0.0,
            ..RandomArchParams::default()
        };
        for seed in 0..10 {
            let a = random_architecture(seed, &p);
            for proc in a.proc_ids() {
                assert_eq!(a.processor(proc).buses().len(), 1);
            }
        }
    }
}
