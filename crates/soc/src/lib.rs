//! SoC communication-architecture modelling for `socbuf`.
//!
//! This crate describes the *structure* the DATE 2005 paper optimizes:
//! processors attached to shared buses, buses connected by bridges, and
//! traffic flows routed across them. It is purely structural — the
//! stochastic semantics live in `socbuf-sim` (discrete-event simulation)
//! and `socbuf-core` (CTMDP formulation).
//!
//! The key concepts:
//!
//! * [`Architecture`] / [`ArchitectureBuilder`] — processors, buses,
//!   unidirectional bridges and rated traffic [`Flow`]s, with routing
//!   computed at build time (shortest bridge path between buses).
//! * **Queues** ([`QueueSpec`]) — every contention point is a
//!   (client, bus) pair: a processor's transmit queue on its bus, or a
//!   bridge's buffer drained by the downstream bus. These queues are
//!   exactly the places the paper inserts and sizes buffers.
//! * [`split::split`] — the paper's subsystem-splitting algorithm:
//!   cutting the bus graph at every bridge yields *linear* subsystems
//!   (bridge buffers decouple adjacent buses); the CTMDP equations of an
//!   un-split bridge are quadratic.
//! * [`templates`] — canonical architectures: the paper's Figure 1
//!   example, a 17-processor network processor (the evaluation
//!   platform), AMBA- and CoreConnect-style systems, and random
//!   architectures for property tests.
//!
//! # Examples
//!
//! ```
//! use socbuf_soc::templates;
//! use socbuf_soc::split::split;
//!
//! let arch = templates::figure1();
//! let parts = split(&arch);
//! // The paper's Figure 2: the example splits into four subsystems.
//! assert_eq!(parts.subsystems.len(), 4);
//! ```

pub mod alloc;
mod arch;
pub mod dot;
mod error;
mod ids;
pub mod split;
pub mod templates;

pub use alloc::BufferAllocation;
pub use arch::{
    Architecture, ArchitectureBuilder, Bridge, Bus, BusArbitration, Client, Flow, FlowTarget,
    Processor, QueueSpec, Route, TrafficShape,
};
pub use error::SocError;
pub use ids::{BridgeId, BusId, FlowId, ProcId, QueueId};
