//! Typed handles for architecture components.
//!
//! Newtype indices keep processors, buses, bridges, flows and queues
//! statically distinct (passing a bus where a bridge is expected is a
//! compile error, not a silent off-by-one).

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub(crate) usize);

        impl $name {
            /// Position of this component in its creation order.
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }
    };
}

id_type!(
    /// Handle to a processor.
    ProcId
);
id_type!(
    /// Handle to a bus.
    BusId
);
id_type!(
    /// Handle to a bridge.
    BridgeId
);
id_type!(
    /// Handle to a traffic flow.
    FlowId
);
id_type!(
    /// Handle to a (client, bus) queue — a buffer-insertion point.
    QueueId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        let a = BusId(0);
        let b = BusId(3);
        assert!(a < b);
        assert_eq!(b.index(), 3);
        assert_eq!(b.to_string(), "BusId3");
        assert_ne!(ProcId(1).to_string(), QueueId(1).to_string());
    }
}
