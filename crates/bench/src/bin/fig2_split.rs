//! Experiment E2 — the paper's **Figure 2**: splitting the Figure 1
//! architecture at its bridges into four linear subsystems.
//!
//! Run with: `cargo run --release -p socbuf-bench --bin fig2_split`

use socbuf_soc::dot::split_to_dot;
use socbuf_soc::split::split;
use socbuf_soc::templates;

fn main() {
    let arch = templates::figure1();
    let parts = split(&arch);

    println!("=== Figure 2: split subsystems of the Figure 1 architecture ===\n");
    println!("(reconstruction notes: DESIGN.md §7)\n");
    for sub in &parts.subsystems {
        println!("subsystem ({})", sub.index + 1);
        println!(
            "  buses:      {:?}",
            sub.buses
                .iter()
                .map(|&b| arch.bus(b).name())
                .collect::<Vec<_>>()
        );
        println!(
            "  processors: {:?}",
            sub.processors
                .iter()
                .map(|&p| arch.processor(p).name())
                .collect::<Vec<_>>()
        );
        println!(
            "  queues:     {:?}",
            sub.queues
                .iter()
                .map(|&q| arch.queue_name(q))
                .collect::<Vec<_>>()
        );
        println!(
            "  boundary:   in {:?} / out {:?}\n",
            sub.incoming_bridges
                .iter()
                .map(|&g| arch.bridge(g).name())
                .collect::<Vec<_>>(),
            sub.outgoing_bridges
                .iter()
                .map(|&g| arch.bridge(g).name())
                .collect::<Vec<_>>()
        );
    }
    assert_eq!(
        parts.subsystems.len(),
        4,
        "the paper's example splits into 4"
    );

    println!("--- Graphviz ---\n{}", split_to_dot(&arch, &parts));
}
