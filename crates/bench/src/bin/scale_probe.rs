//! Scale probe for the streaming result pipeline: campaigns two to
//! three orders of magnitude larger than the paper's tables, executed
//! without ever materialising the result set.
//!
//! The collect-then-render path holds every [`socbuf_sweep::SweepPoint`]
//! until the campaign ends, so its footprint grows linearly with the
//! campaign. The sink path streams each chunk's points out as the
//! ordered consumption frontier passes it, so the resident set is the
//! scheduling window — a constant. This probe pins that constant at
//! ≥ 10⁵ points and measures the shard-streamed throughput behind it.
//!
//! `--worker` turns this binary into a shard server (ephemeral port on
//! stdout, lifetime tied to stdin), exactly like `shard_probe`.
//!
//! `--smoke` runs the CI gate, in-process (no sockets):
//!
//! * **byte-identity at scale** — one streamed pass over a
//!   100 000-point manifest, teeing into CSV *and* JSONL renderers
//!   through the sink abstraction, must reproduce the batch
//!   `to_csv`/`to_jsonl` bytes exactly;
//! * **bounded residency** — the ordered-consumption window
//!   (`peak_parked_chunks`) must stay within the pool's scheduling
//!   window at 10⁴ and 10⁵ points alike: the ceiling is a constant of
//!   the (workers, chunk) configuration, not of the campaign.
//!
//! Without flags, the full probe drives the same 10⁵-point manifest
//! through 1/2/4 self-exec'd shard workers with `sweep_stream` frames
//! merged through the bounded-memory reducer, and writes
//! `BENCH_scale.json` (wall time, points/sec, and the reducer's
//! peak-resident-points per shard count).

use std::io::{self, BufRead};
use std::net::SocketAddr;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::time::Instant;

use socbuf_core::wire::CampaignManifest;
use socbuf_core::SizingConfig;
use socbuf_serve::{Client, RetryPolicy, ShardFleet};
use socbuf_soc::templates;
use socbuf_sweep::{
    run_manifest, run_manifest_sink, BudgetSweep, FileSpool, PointSink, ReportStream, SweepPoint,
    WorkPool,
};

/// Declared chunk length: a coarse multiple of the base warm-chain
/// length (4), so a 10⁵-point campaign pays ~400 cold solves instead
/// of 25 000 while every boundary stays on the base chain grid.
const CHUNK_ITEMS: usize = 256;

/// Workers for the in-process smoke passes.
const SMOKE_WORKERS: usize = 2;

fn sizing() -> SizingConfig {
    SizingConfig::small()
}

/// A `points`-item budget campaign on the smallest template, with the
/// declared partition coarsened to [`CHUNK_ITEMS`]-item chunks. The
/// budget walks a sawtooth so consecutive warm solves stay near the
/// carried basis.
fn manifest_of(points: usize) -> CampaignManifest {
    let arch = templates::figure1();
    let budgets: Vec<usize> = (0..points).map(|i| 12 + (i % 8)).collect();
    let mut sweep = BudgetSweep::new(&arch, budgets);
    sweep.sizing = sizing();
    let base = sweep.manifest().expect("sizing-only campaign");
    let items = base.items();
    let mut ranges = Vec::new();
    let mut at = 0;
    while at < items {
        let end = (at + CHUNK_ITEMS).min(items);
        ranges.push(at..end);
        at = end;
    }
    CampaignManifest::with_chunks(base.shape.clone(), base.config.clone(), ranges)
        .expect("coarsened chunks stay on the base chain grid")
}

/// Streams one campaign into two renderers at once — the sink
/// abstraction makes "render both forms in one pass" a two-line sink.
struct Tee<'a> {
    csv: &'a mut ReportStream<Vec<u8>>,
    jsonl: &'a mut ReportStream<Vec<u8>>,
}

impl PointSink for Tee<'_> {
    fn accept(&mut self, point: SweepPoint) -> io::Result<()> {
        self.csv.accept(point.clone())?;
        self.jsonl.accept(point)
    }
}

/// One self-exec'd shard-server process (same protocol as
/// `shard_probe`: port announced on stdout, stdin EOF is shutdown).
struct ShardProcess {
    child: Child,
    _stdin: ChildStdin,
    addr: SocketAddr,
}

impl ShardProcess {
    fn spawn() -> ShardProcess {
        let exe = std::env::current_exe().expect("own executable path");
        let mut child = Command::new(exe)
            .arg("--worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| {
                eprintln!("cannot spawn shard worker: {e}");
                std::process::exit(2);
            });
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("worker announces its port");
        let port: u16 = line
            .trim()
            .strip_prefix("PORT ")
            .unwrap_or_else(|| {
                eprintln!("worker printed {line:?}, expected \"PORT <n>\"");
                std::process::exit(2);
            })
            .parse()
            .expect("valid port");
        let stdin = child.stdin.take().expect("piped stdin");
        ShardProcess {
            child,
            _stdin: stdin,
            addr: SocketAddr::from(([127, 0, 0, 1], port)),
        }
    }

    fn client(&self) -> Client {
        Client::connect_tcp(self.addr).expect("connect to shard")
    }
}

impl Drop for ShardProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Streamed pass returning the parked-chunk high-water mark.
fn streamed_peak(manifest: &CampaignManifest, pool: &WorkPool) -> usize {
    let spool = FileSpool::in_temp_dir().expect("temp spool");
    let mut stream =
        ReportStream::csv_spooled(socbuf_sweep::SweepKind::Budget, io::sink(), Box::new(spool));
    let run = run_manifest_sink(manifest, pool, &mut stream).expect("streamed run");
    stream.finish().expect("stream finish");
    run.peak_parked_chunks
}

/// CI gate; exits nonzero on regression.
fn smoke() -> i32 {
    let mut failures = 0;
    let pool = WorkPool::new(SMOKE_WORKERS);
    let big = manifest_of(100_000);
    println!(
        "{} points in {} declared chunks of {CHUNK_ITEMS}",
        big.items(),
        big.chunks.len()
    );

    // --- Reference bytes from the batch path. --------------------------
    let t = Instant::now();
    let batch = run_manifest(&big, &pool).expect("batch run");
    let batch_time = t.elapsed();

    // --- One streamed pass, teeing both renderings. --------------------
    let mut csv = ReportStream::csv(batch.kind, Vec::new());
    let mut jsonl = ReportStream::jsonl(batch.kind, Vec::new());
    let t = Instant::now();
    let run = {
        let mut tee = Tee {
            csv: &mut csv,
            jsonl: &mut jsonl,
        };
        run_manifest_sink(&big, &pool, &mut tee).expect("streamed run")
    };
    let stream_time = t.elapsed();
    let (csv_bytes, summary) = csv.finish().expect("csv finish");
    let (jsonl_bytes, _) = jsonl.finish().expect("jsonl finish");
    if csv_bytes != batch.to_csv().into_bytes() {
        eprintln!("SMOKE FAIL: streamed CSV differs from the batch rendering");
        failures += 1;
    }
    if jsonl_bytes != batch.to_jsonl().into_bytes() {
        eprintln!("SMOKE FAIL: streamed JSONL differs from the batch rendering");
        failures += 1;
    }
    println!(
        "batch {batch_time:?} vs streamed (csv+jsonl teed) {stream_time:?}, \
         {} frontier classes peak",
        summary.peak_frontier_classes
    );

    // --- Residency: a constant of the configuration, not the size. -----
    // The ordered consumer parks at most the scheduling window
    // (2 × workers) of finished chunks; with the in-flight chunk that
    // bounds resident points by (window + 1) × chunk items.
    let window = 2 * SMOKE_WORKERS;
    let ceiling_points = (window + 1) * CHUNK_ITEMS;
    let small_peak = streamed_peak(&manifest_of(10_000), &pool);
    let big_peak = run.peak_parked_chunks;
    for (scale, peak) in [("10^4", small_peak), ("10^5", big_peak)] {
        if peak > window {
            eprintln!(
                "SMOKE FAIL: {scale}-point run parked {peak} chunks, \
                 scheduling window is {window}"
            );
            failures += 1;
        }
    }
    println!(
        "peak parked chunks: 10^4-point run {small_peak}, 10^5-point run {big_peak} \
         (window {window}); resident ceiling {ceiling_points} points regardless of size"
    );

    if failures == 0 {
        println!("smoke OK");
    }
    failures
}

/// Full probe: the 10⁵-point manifest streamed off 1/2/4 shard
/// processes, merged through the bounded reducer, written to
/// `BENCH_scale.json`.
fn full_probe() {
    let manifest = manifest_of(100_000);
    let points = manifest.items();
    println!(
        "{points} points in {} chunks of {CHUNK_ITEMS}; spawning 4 shard workers",
        manifest.chunks.len()
    );
    let shards: Vec<ShardProcess> = (0..4).map(|_| ShardProcess::spawn()).collect();

    let mut rows = Vec::new();
    for n in [1usize, 2, 4] {
        let mut fleet = ShardFleet::new(
            shards[..n].iter().map(|s| s.client()).collect(),
            RetryPolicy::default(),
        );
        let spool = FileSpool::in_temp_dir().expect("temp spool");
        let stream =
            ReportStream::csv_spooled(socbuf_sweep::SweepKind::Budget, io::sink(), Box::new(spool));
        let t = Instant::now();
        let (stream, stats) = fleet
            .run_manifest_to_sink(&manifest, stream)
            .unwrap_or_else(|e| {
                eprintln!("streamed fan-out failed: {e}");
                std::process::exit(2);
            });
        let wall = t.elapsed();
        stream.finish().expect("stream finish");
        assert_eq!(stats.points, points, "{n}-shard stream lost points");
        let rate = points as f64 / wall.as_secs_f64().max(1e-12);
        println!(
            "{n} shard(s): {wall:?}, {rate:.0} points/sec, \
             {} peak resident points in the reducer",
            stats.peak_resident_points
        );
        rows.push((n, wall, rate, stats.peak_resident_points));
    }

    let shard_rows: Vec<String> = rows
        .iter()
        .map(|(n, wall, rate, peak)| {
            format!(
                "    {{\"shards\": {n}, \"wall_ms\": {:.3}, \"points_per_sec\": {rate:.1}, \
                 \"peak_resident_points\": {peak}}}",
                wall.as_secs_f64() * 1e3
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"points\": {points},\n  \"chunk_items\": {CHUNK_ITEMS},\n  \"runs\": [\n{}\n  ]\n}}\n",
        shard_rows.join(",\n")
    );
    match std::fs::write("BENCH_scale.json", &json) {
        Ok(()) => println!("wrote BENCH_scale.json"),
        Err(e) => {
            eprintln!("failed to write BENCH_scale.json: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--worker") {
        if let Err(e) = socbuf_serve::shard_worker_main(socbuf_serve::ServerConfig::default()) {
            eprintln!("shard worker failed: {e}");
            std::process::exit(2);
        }
        return;
    }
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    full_probe();
}
