//! Developer probe for the warm-start layer: wall-time of the
//! warm-chained `network_processor` budget grid against the cold-started
//! grid, plus the warm report's byte-identity across worker counts.
//!
//! `--smoke` runs the CI gate:
//!
//! * **determinism (always enforced)** — the warm-chained 1-, 2- and
//!   8-worker runs of the grid must render byte-identical JSON-lines
//!   reports (chunk boundaries are index-fixed, so warm chains must not
//!   depend on scheduling);
//! * **agreement (always enforced)** — every warm point must carry the
//!   same status flags as its cold twin and an objective within 1e-6
//!   relative (the perturbation-ladder scale; on this well-conditioned
//!   grid the observed difference is ~1e-15);
//! * **speedup (enforced when the host has ≥ 2 cores)** — the
//!   warm-chained serial sweep must be ≥ 1.5× faster than the
//!   cold-started serial sweep (best of `SMOKE_REPEATS`). Warm chains
//!   skip phase 1 entirely and re-enter from the neighboring optimum,
//!   so three of every four points solve in a handful of pivots. The
//!   gate is serial-vs-serial: it measures the algorithmic win, not
//!   scheduling. Single-core hosts skip it only because they are the
//!   noisy shared-runner case the repeats cannot fully de-noise.

use socbuf_core::SizingConfig;
use socbuf_soc::templates;
use socbuf_sweep::{BudgetSweep, SweepReport, WorkPool};
use std::time::{Duration, Instant};

/// Same CI grid as `sweep_probe`: the paper's Table 1 budget range on
/// the evaluation platform.
fn smoke_grid() -> Vec<usize> {
    (0..16).map(|i| 160 + 32 * i).collect()
}

fn smoke_sizing() -> SizingConfig {
    SizingConfig {
        state_cap: 16,
        effort_levels: 4,
        ..SizingConfig::default()
    }
}

fn timed_run(
    arch: &socbuf_soc::Architecture,
    budgets: &[usize],
    sizing: &SizingConfig,
    workers: usize,
    warm: bool,
) -> (SweepReport, Duration) {
    let mut sweep = BudgetSweep::new(arch, budgets.to_vec());
    sweep.sizing = sizing.clone();
    sweep.warm_start = warm;
    let pool = WorkPool::new(workers);
    let t = Instant::now();
    let report = sweep.run(&pool).unwrap_or_else(|e| {
        eprintln!("sweep failed ({} workers, warm={warm}): {e}", workers);
        std::process::exit(2);
    });
    (report, t.elapsed())
}

/// CI-sized gate; exits nonzero on regression.
fn smoke() -> i32 {
    const SMOKE_REPEATS: usize = 2;

    let np = templates::network_processor();
    let grid = smoke_grid();
    let sizing = smoke_sizing();
    let mut failures = 0;

    // --- Warm determinism: byte-identity across worker counts. -------
    let mut warm_baseline: Option<SweepReport> = None;
    for workers in [1usize, 2, 8] {
        let (report, time) = timed_run(&np, &grid, &sizing, workers, true);
        match &warm_baseline {
            None => warm_baseline = Some(report),
            Some(expected) => {
                if expected.to_jsonl() != report.to_jsonl() {
                    eprintln!(
                        "SMOKE FAIL: warm {workers}-worker report bytes differ from the \
                         1-worker baseline"
                    );
                    failures += 1;
                }
            }
        }
        println!(
            "warm np budget grid ({} points, cap=16): {workers} workers -> {time:?}",
            grid.len()
        );
    }
    let warm_report = warm_baseline.expect("at least one warm run");

    // --- Warm/cold agreement per point. -------------------------------
    let (cold_report, _) = timed_run(&np, &grid, &sizing, 8, false);
    for (w, c) in warm_report.points.iter().zip(&cold_report.points) {
        if w.budget_row_relaxed != c.budget_row_relaxed {
            eprintln!(
                "SMOKE FAIL: budget {}: relaxed flag warm={} cold={}",
                w.budget, w.budget_row_relaxed, c.budget_row_relaxed
            );
            failures += 1;
        }
        let diff = (w.predicted_loss - c.predicted_loss).abs() / (1.0 + c.predicted_loss.abs());
        if diff > 1e-6 {
            eprintln!(
                "SMOKE FAIL: budget {}: warm loss {} vs cold {} (rel {diff:.3e})",
                w.budget, w.predicted_loss, c.predicted_loss
            );
            failures += 1;
        }
    }

    // --- Serial speedup: warm chains vs cold starts. -------------------
    let mut best_cold: Option<Duration> = None;
    let mut best_warm: Option<Duration> = None;
    for _ in 0..SMOKE_REPEATS {
        let (_, tc) = timed_run(&np, &grid, &sizing, 1, false);
        let (_, tw) = timed_run(&np, &grid, &sizing, 1, true);
        if best_cold.is_none_or(|b| tc < b) {
            best_cold = Some(tc);
        }
        if best_warm.is_none_or(|b| tw < b) {
            best_warm = Some(tw);
        }
    }
    let (tc, tw) = (best_cold.unwrap(), best_warm.unwrap());
    let speedup = tc.as_secs_f64() / tw.as_secs_f64().max(1e-12);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("serial grid: cold {tc:?} vs warm {tw:?} -> {speedup:.2}x");
    if cores >= 2 {
        if speedup < 1.5 {
            eprintln!(
                "SMOKE FAIL: warm-chained sweep only {speedup:.2}x faster than cold \
                 (need >= 1.5x) on a {cores}-core host"
            );
            failures += 1;
        }
    } else {
        println!("speedup gate SKIPPED: single-core host (determinism + agreement still enforced)");
    }

    if failures == 0 {
        println!("smoke OK");
    }
    failures
}

/// Full table: warm vs cold per worker count, plus per-point pivots.
fn full_probe() {
    let np = templates::network_processor();
    let grid = smoke_grid();
    let sizing = smoke_sizing();
    for workers in [1usize, 2, 4, 8] {
        let (_, cold) = timed_run(&np, &grid, &sizing, workers, false);
        let (warm_report, warm) = timed_run(&np, &grid, &sizing, workers, true);
        println!(
            "{workers:>2} workers: cold {cold:?}  warm {warm:?}  ({:.2}x)",
            cold.as_secs_f64() / warm.as_secs_f64().max(1e-12)
        );
        if workers == 1 {
            println!("\n  per-point pivots along the warm chains (chunks of 4):");
            for p in &warm_report.points {
                println!("    budget {:>4}: {:>4} pivots", p.budget, p.lp_iterations);
            }
            println!();
        }
    }
}

fn main() {
    let smoke_mode = std::env::args().any(|a| a == "--smoke");
    if smoke_mode {
        std::process::exit(smoke());
    }
    full_probe();
}
