//! Experiment E4 — the paper's **Table 1**: loss before/after resizing
//! while the total buffer budget sweeps 160 → 320 → 640 units, reported
//! for the highlighted processors 1, 4, 15, 16 (and in full).
//!
//! Expected shape: at 160 the redistribution barely helps (and can hurt
//! individual processors); at 320 it clearly helps; at 640 post-sizing
//! loss collapses to zero.
//!
//! Run with: `cargo run --release -p socbuf-bench --bin table1_budget_sweep`

use socbuf_bench::paper_pipeline_config;
use socbuf_core::evaluate_policies;
use socbuf_soc::templates;

const HIGHLIGHT: [usize; 4] = [1, 4, 15, 16];
const BUDGETS: [usize; 3] = [160, 320, 640];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = templates::network_processor();
    let config = paper_pipeline_config();

    println!("=== Table 1: loss under varying total buffer size ===");
    println!(
        "(network processor, {} replications per cell)\n",
        config.replications
    );
    println!(
        "{:<10} {:>9} {:>9}   {:>9} {:>9}   {:>9} {:>9}",
        "PROCESSOR", "160 pre", "160 post", "320 pre", "320 post", "640 pre", "640 post"
    );

    let mut results = Vec::new();
    for budget in BUDGETS {
        eprintln!("budget {budget} …");
        results.push(evaluate_policies(&arch, budget, &config)?);
    }

    for p in 0..arch.num_processors() {
        let marker = if HIGHLIGHT.contains(&(p + 1)) {
            "*"
        } else {
            " "
        };
        print!("{marker}P{:<8}", p + 1);
        for cmp in &results {
            print!(
                " {:>9.0} {:>9.0}  ",
                cmp.pre.per_proc[p].lost, cmp.post.per_proc[p].lost
            );
        }
        println!();
    }
    print!("{:<10}", "TOTAL");
    for cmp in &results {
        print!(
            " {:>9.0} {:>9.0}  ",
            cmp.pre.total_lost, cmp.post.total_lost
        );
    }
    println!("\n\n(* = processors highlighted in the paper's Table 1)");
    println!("paper shape: post-sizing loss shrinks with budget and reaches 0 at 640 units");
    for (budget, cmp) in BUDGETS.iter().zip(&results) {
        println!(
            "budget {budget:>3}: post-sizing total loss {:.1} ({}+{:.0}% vs pre)",
            cmp.post.total_lost,
            if cmp.improvement_vs_pre() >= 0.0 {
                "-"
            } else {
                ""
            },
            100.0 * cmp.improvement_vs_pre().abs()
        );
    }
    Ok(())
}
