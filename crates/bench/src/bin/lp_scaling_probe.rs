//! Developer probe: joint-LP size/pivot scaling across templates and
//! CTMDP granularities (not a paper artifact; kept for regression
//! hunting on solver performance).

use socbuf_core::{SizingConfig, SizingLp};
use socbuf_soc::templates;
use std::time::Instant;

fn main() {
    for (name, arch, budget) in [
        ("figure1", templates::figure1(), 22usize),
        ("amba", templates::amba(), 16),
        ("coreconnect", templates::coreconnect(), 20),
        ("np", templates::network_processor(), 320),
    ] {
        for (cap, lev) in [(8usize, 3usize), (12, 3), (16, 4), (20, 4), (24, 5)] {
            let cfg = SizingConfig {
                state_cap: cap,
                effort_levels: lev,
                ..SizingConfig::default()
            };
            let lp = SizingLp::build(&arch, budget, &cfg).unwrap();
            let t = Instant::now();
            match lp.solve() {
                Ok(sol) => println!(
                    "{name} cap={cap} lev={lev}: vars={} rows={} pivots={} time={:?} loss={:.6}",
                    lp.num_vars(),
                    lp.num_rows(),
                    sol.lp_iterations,
                    t.elapsed(),
                    sol.loss_rate
                ),
                Err(e) => println!(
                    "{name} cap={cap} lev={lev}: vars={} rows={} FAILED after {:?}: {e}",
                    lp.num_vars(),
                    lp.num_rows(),
                    t.elapsed()
                ),
            }
        }
    }
}
