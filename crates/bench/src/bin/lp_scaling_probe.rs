//! Developer probe: joint-LP size/pivot scaling across templates and
//! CTMDP granularities, now engine-vs-engine (not a paper artifact;
//! kept for regression hunting on solver performance).
//!
//! Every configuration is solved with both LP engines and the probe
//! prints pivots and wall time side by side, so a performance
//! regression in either engine — or a lost crossover — is visible in
//! one run.
//!
//! `--smoke` runs a CI-sized subset and **fails** (exit 1) unless the
//! revised engine beats the tableau on the `network_processor` template
//! at `state_cap = 16`, which is the acceptance bar for making the
//! revised engine the default. Results must also agree to 1e-9
//! relative, so the smoke doubles as a cross-engine oracle on the
//! biggest template.
//!
//! The smoke additionally gates the **equilibration layer** on the
//! ill-conditioned corpus (`templates::ill_conditioned`, rates
//! log-uniform over 1e-3..1e3): with equilibration on, the engines must
//! agree to 1e-9, the solve with equilibration off must return the same
//! objective (scaling is a pure numerics change), the condition
//! estimate must drop on every instance the trigger fires for, and the
//! trigger must actually fire on a healthy fraction of the corpus.

use socbuf_core::{SizingConfig, SizingLp};
use socbuf_lp::{LpEngine, SimplexOptions};
use socbuf_soc::templates;
use std::time::{Duration, Instant};

struct EngineRun {
    pivots: usize,
    /// Best wall time over `repeats` solves (noise-robust: the CI smoke
    /// gate compares these).
    time: Duration,
    loss: f64,
    vars: usize,
    rows: usize,
}

fn run_engine(
    arch: &socbuf_soc::Architecture,
    budget: usize,
    cap: usize,
    lev: usize,
    engine: LpEngine,
    repeats: usize,
) -> Result<EngineRun, String> {
    let cfg = SizingConfig {
        state_cap: cap,
        effort_levels: lev,
        engine,
        ..SizingConfig::default()
    };
    let lp = SizingLp::build(arch, budget, &cfg).map_err(|e| e.to_string())?;
    let mut best: Option<EngineRun> = None;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        match lp.solve() {
            Ok(sol) => {
                let run = EngineRun {
                    pivots: sol.lp_iterations,
                    time: t.elapsed(),
                    loss: sol.loss_rate,
                    vars: lp.num_vars(),
                    rows: lp.num_rows(),
                };
                if best.as_ref().is_none_or(|b| run.time < b.time) {
                    best = Some(run);
                }
            }
            Err(e) => return Err(format!("failed after {:?}: {e}", t.elapsed())),
        }
    }
    Ok(best.expect("repeats >= 1"))
}

/// Probes one (template, cap, lev) cell with both engines and prints
/// the comparison. Returns `(revised, tableau)` when both solved.
fn probe(
    name: &str,
    arch: &socbuf_soc::Architecture,
    budget: usize,
    cap: usize,
    lev: usize,
    repeats: usize,
) -> Option<(EngineRun, EngineRun)> {
    let revised = run_engine(arch, budget, cap, lev, LpEngine::Revised, repeats);
    let tableau = run_engine(arch, budget, cap, lev, LpEngine::Tableau, repeats);
    let (vars, rows) = match (&revised, &tableau) {
        (Ok(r), _) => (r.vars, r.rows),
        (_, Ok(t)) => (t.vars, t.rows),
        _ => (0, 0),
    };
    print!("{name} cap={cap} lev={lev}: vars={vars} rows={rows}");
    match (&revised, &tableau) {
        (Ok(r), Ok(t)) => {
            println!(
                "  revised: pivots={} time={:?}  tableau: pivots={} time={:?}  speedup={:.2}x  loss={:.6}",
                r.pivots,
                r.time,
                t.pivots,
                t.time,
                t.time.as_secs_f64() / r.time.as_secs_f64().max(1e-12),
                r.loss
            );
        }
        (r, t) => {
            if let Err(e) = r {
                print!("  revised FAILED: {e}");
            }
            if let Err(e) = t {
                print!("  tableau FAILED: {e}");
            }
            println!();
        }
    }
    match (revised, tableau) {
        (Ok(r), Ok(t)) => Some((r, t)),
        _ => None,
    }
}

fn full_sweep() {
    for (name, arch, budget) in [
        ("figure1", templates::figure1(), 22usize),
        ("amba", templates::amba(), 16),
        ("coreconnect", templates::coreconnect(), 20),
        ("np", templates::network_processor(), 320),
    ] {
        for (cap, lev) in [(8usize, 3usize), (12, 3), (16, 4), (20, 4), (24, 5)] {
            probe(name, &arch, budget, cap, lev, 1);
        }
    }
}

/// Equilibration gate over the ill-conditioned corpus. Returns the
/// number of failed checks (0 = healthy).
fn ill_conditioned_gate() -> usize {
    let mut failures = 0usize;
    let mut applied = 0usize;
    let mut solved = 0usize;
    let corpus_size = 12u64;
    let lp_opts = |engine: LpEngine, equilibrate: bool| SimplexOptions {
        engine,
        equilibrate,
        perturbation: 1e-6,
        max_iterations: 200_000,
        ..SimplexOptions::default()
    };
    for seed in 0..corpus_size {
        let arch = templates::ill_conditioned(seed);
        let cfg = SizingConfig {
            state_cap: 8,
            effort_levels: 3,
            ..SizingConfig::default()
        };
        let lp = match SizingLp::build(&arch, 4000, &cfg) {
            Ok(lp) => lp,
            Err(e) => {
                eprintln!("SMOKE FAIL: ill seed {seed} failed to build: {e}");
                failures += 1;
                continue;
            }
        };
        let p = lp.problem();
        let revised = p.solve_with(&lp_opts(LpEngine::Revised, true));
        let tableau = p.solve_with(&lp_opts(LpEngine::Tableau, true));
        let unscaled = p.solve_with(&lp_opts(LpEngine::Revised, false));
        let (Ok(r), Ok(t)) = (&revised, &tableau) else {
            eprintln!("SMOKE FAIL: ill seed {seed} did not solve with equilibration on");
            failures += 1;
            continue;
        };
        solved += 1;
        if (r.objective() - t.objective()).abs() > 1e-9 * (1.0 + r.objective().abs()) {
            eprintln!(
                "SMOKE FAIL: ill seed {seed} engines disagree: {} vs {}",
                r.objective(),
                t.objective()
            );
            failures += 1;
        }
        // Scaling must be a pure numerics change: the unequilibrated
        // solve of the same instance (when it survives at all — it is
        // allowed to break down, that is what the layer is for) must
        // land on the same objective.
        if let Ok(u) = &unscaled {
            if (r.objective() - u.objective()).abs() > 1e-9 * (1.0 + r.objective().abs()) {
                eprintln!(
                    "SMOKE FAIL: ill seed {seed} equilibration changed the objective: \
                     {} (on) vs {} (off)",
                    r.objective(),
                    u.objective()
                );
                failures += 1;
            }
        }
        let stats = r.scaling_stats();
        if stats.applied {
            applied += 1;
            if stats.condition_after >= stats.condition_before {
                eprintln!(
                    "SMOKE FAIL: ill seed {seed} condition estimate did not drop: \
                     {:.3e} -> {:.3e}",
                    stats.condition_before, stats.condition_after
                );
                failures += 1;
            }
        }
    }
    if applied * 3 < solved {
        eprintln!(
            "SMOKE FAIL: equilibration trigger fired on only {applied}/{solved} \
             ill-conditioned instances"
        );
        failures += 1;
    }
    if failures == 0 {
        println!(
            "ill-conditioned gate OK: {solved}/{corpus_size} solved, \
             equilibration applied on {applied}, condition dropped on all applied"
        );
    }
    failures
}

/// CI-sized subset with hard gates; exits nonzero on regression.
fn smoke() -> i32 {
    let mut failures = 0;

    // Best-of-N timing keeps the required CI job robust to shared-
    // runner noise; the revised engine's ~2x headroom does the rest.
    const SMOKE_REPEATS: usize = 3;

    // Cross-engine agreement and basic health on a small template.
    let fig1 = templates::figure1();
    match probe("figure1", &fig1, 22, 12, 3, SMOKE_REPEATS) {
        Some((r, t)) => {
            if (r.loss - t.loss).abs() > 1e-9 * (1.0 + r.loss.abs()) {
                eprintln!(
                    "SMOKE FAIL: figure1 engines disagree: {} vs {}",
                    r.loss, t.loss
                );
                failures += 1;
            }
        }
        None => {
            eprintln!("SMOKE FAIL: figure1 probe did not solve");
            failures += 1;
        }
    }

    // The acceptance gate: revised beats tableau on network_processor
    // at state_cap 16 (wall time), and the engines agree.
    let np = templates::network_processor();
    match probe("np", &np, 320, 16, 4, SMOKE_REPEATS) {
        Some((r, t)) => {
            if (r.loss - t.loss).abs() > 1e-9 * (1.0 + r.loss.abs()) {
                eprintln!("SMOKE FAIL: np engines disagree: {} vs {}", r.loss, t.loss);
                failures += 1;
            }
            // Locally the revised engine wins ~2x here; failing only
            // past a 1.15x loss margin keeps the required CI job from
            // tripping on shared-runner noise while still catching any
            // real loss of the crossover.
            if r.time.as_secs_f64() >= 1.15 * t.time.as_secs_f64() {
                eprintln!(
                    "SMOKE FAIL: revised ({:?}) clearly slower than tableau ({:?}) on np cap=16",
                    r.time, t.time
                );
                failures += 1;
            } else if r.time >= t.time {
                eprintln!(
                    "SMOKE WARN: revised ({:?}) did not beat tableau ({:?}) on np cap=16 \
                     (within noise margin; investigate if persistent)",
                    r.time, t.time
                );
            }
        }
        None => {
            eprintln!("SMOKE FAIL: np probe did not solve");
            failures += 1;
        }
    }

    failures += ill_conditioned_gate() as i32;

    if failures == 0 {
        println!("smoke OK");
    }
    failures
}

fn main() {
    let smoke_mode = std::env::args().any(|a| a == "--smoke");
    if smoke_mode {
        std::process::exit(smoke());
    }
    full_sweep();
}
