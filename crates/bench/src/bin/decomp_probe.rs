//! Developer probe for the block-angular decomposition engine: the
//! 32-queue / `state_cap = 64` sizing LP solved monolithically, with
//! the serial decomposed engine, and with the decomposed engine fanning
//! its block solves over a machine-sized [`WorkPool`].
//!
//! `--smoke` runs the CI gate:
//!
//! * **agreement (always enforced)** — the decomposed solve must match
//!   the monolithic revised objective to 1e-9 relative, must actually
//!   exploit the structure (no monolithic fallback; one block per
//!   queue) and must price the coupling row with a genuinely bound
//!   multiplier search on this tight budget;
//! * **speedup (enforced when the host has ≥ 2 cores)** — the pooled
//!   decomposed solve must be ≥ 1.5× faster than the monolithic revised
//!   solve (best of `SMOKE_REPEATS`). The blocks are 32 independent
//!   LPs of ~1/32 the joint size and simplex cost grows superlinearly
//!   in the basis dimension, so the bar is conservative even before
//!   parallelism. Single-core hosts skip this gate only because they
//!   are the noisy shared-runner case repeats cannot de-noise — the
//!   agreement gate still runs there.
//!
//! `--json` additionally writes the machine-readable trajectory to
//! `BENCH_decomp.json` (schema documented in `socbuf_bench`'s crate
//! docs) so perf can be tracked across commits.

use socbuf_core::{ExecutorHandle, SizingConfig, SizingLp};
use socbuf_lp::{solve_decomposed, DecompReport, LpEngine, LpProblem, SimplexOptions};
use socbuf_soc::{Architecture, ArchitectureBuilder, FlowTarget};
use socbuf_sweep::WorkPool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// CTMDP granularity of the probe instance. 64 occupancy states per
/// queue makes each block LP big enough that block-level parallelism
/// has real work to hide.
const STATE_CAP: usize = 64;

/// Eight shared buses with four processors each: the per-bus effort
/// rows are contested (which is what makes buffer mass trade against
/// loss), stay inside their block, and leave the budget row as the only
/// coupling — the decomposition splits the joint LP into exactly
/// `BUSES` blocks over `QUEUES` queues.
const BUSES: usize = 8;
const QUEUES: usize = 4 * BUSES;

/// Tight enough that `Φ(0)` overshoots the budget row and the
/// multiplier search does real bracketing/bisection work (the
/// loss-optimal occupancy mass of this instance sits well above
/// `48·α`), while staying clear of the infeasibility edge near 36.
const BUDGET: usize = 48;

/// The probe architecture: 32 queues over 8 contested buses, with
/// deterministic per-queue loads spread over 0.19..0.29 (bus
/// utilizations ≈ 0.95) so no two blocks are identical.
fn probe_arch() -> Architecture {
    let mut b = ArchitectureBuilder::new();
    for i in 0..BUSES {
        let bus = b.add_bus(format!("bus{i}"), 1.0).expect("fresh bus name");
        for j in 0..QUEUES / BUSES {
            let q = i * (QUEUES / BUSES) + j;
            let p = b
                .add_processor(format!("p{q}"), &[bus], 1.0)
                .expect("fresh processor name");
            let load = 0.19 + 0.10 * ((q * 7) % 13) as f64 / 12.0;
            b.add_flow(p, FlowTarget::Bus(bus), load)
                .expect("valid flow");
        }
    }
    b.build().expect("probe architecture is well-formed")
}

fn probe_options() -> SimplexOptions {
    SimplexOptions {
        perturbation: 1e-6,
        max_iterations: 400_000,
        ..SimplexOptions::default()
    }
}

/// Best-of-`repeats` monolithic revised wall time and objective.
fn time_monolithic(p: &LpProblem, repeats: usize) -> (f64, Duration) {
    let opts = probe_options();
    let mut best: Option<(f64, Duration)> = None;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        let sol = p.solve_with(&opts).unwrap_or_else(|e| {
            eprintln!("monolithic revised solve failed: {e}");
            std::process::exit(2);
        });
        let run = (sol.objective(), t.elapsed());
        if best.is_none_or(|(_, b)| run.1 < b) {
            best = Some(run);
        }
    }
    best.expect("repeats >= 1")
}

/// Best-of-`repeats` decomposed wall time under `executor`, plus the
/// objective and the (deterministic, repeat-invariant) report.
fn time_decomposed(
    p: &LpProblem,
    executor: ExecutorHandle,
    repeats: usize,
) -> (f64, Duration, DecompReport) {
    let opts = SimplexOptions {
        engine: LpEngine::Decomposed,
        executor,
        ..probe_options()
    };
    let mut best: Option<(f64, Duration, DecompReport)> = None;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        let (sol, report) = solve_decomposed(p, &opts).unwrap_or_else(|e| {
            eprintln!("decomposed solve failed: {e}");
            std::process::exit(2);
        });
        let run = (sol.objective(), t.elapsed(), report);
        if best.as_ref().is_none_or(|(_, b, _)| run.1 < *b) {
            best = Some(run);
        }
    }
    best.expect("repeats >= 1")
}

struct ProbeRun {
    blocks: usize,
    multiplier_iterations: usize,
    mono_obj: f64,
    mono: Duration,
    serial: Duration,
    pooled: Duration,
    /// Pooled decomposed vs monolithic revised — the headline number.
    speedup: f64,
    /// Decomposed objectives, for the agreement gate.
    serial_obj: f64,
    pooled_obj: f64,
    fell_back: bool,
}

fn run_probe(repeats: usize) -> ProbeRun {
    let arch = probe_arch();
    let cfg = SizingConfig {
        state_cap: STATE_CAP,
        effort_levels: 3,
        engine: LpEngine::Decomposed,
        ..SizingConfig::default()
    };
    let lp = SizingLp::build(&arch, BUDGET, &cfg).unwrap_or_else(|e| {
        eprintln!("failed to build the probe sizing LP: {e}");
        std::process::exit(2);
    });
    let p = lp.problem();
    let (mono_obj, mono) = time_monolithic(p, repeats);
    let (serial_obj, serial, report) = time_decomposed(p, ExecutorHandle::serial(), repeats);
    let pool = WorkPool::available();
    let (pooled_obj, pooled, pooled_report) =
        time_decomposed(p, ExecutorHandle::new(Arc::new(pool)), repeats);
    assert_eq!(
        report.blocks, pooled_report.blocks,
        "executors must not change the detected structure"
    );
    ProbeRun {
        blocks: report.blocks,
        multiplier_iterations: report.multiplier_iterations,
        mono_obj,
        mono,
        serial,
        pooled,
        speedup: mono.as_secs_f64() / pooled.as_secs_f64().max(1e-12),
        serial_obj,
        pooled_obj,
        fell_back: report.fell_back || pooled_report.fell_back,
    }
}

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / (1.0 + b.abs())
}

fn print_table(run: &ProbeRun) {
    println!(
        "decomposition probe: {QUEUES} queues, state_cap {STATE_CAP}, budget {BUDGET} \
         ({} blocks, {} multiplier iterations)",
        run.blocks, run.multiplier_iterations
    );
    println!("  monolithic revised : {:?}", run.mono);
    println!(
        "  decomposed (serial): {:?}  ({:.2}x)",
        run.serial,
        run.mono.as_secs_f64() / run.serial.as_secs_f64().max(1e-12)
    );
    println!(
        "  decomposed (pooled): {:?}  ({:.2}x)",
        run.pooled, run.speedup
    );
}

/// CI-sized gate; exits nonzero on regression.
fn smoke(write_json: bool) -> i32 {
    const SMOKE_REPEATS: usize = 2;

    let run = run_probe(SMOKE_REPEATS);
    print_table(&run);
    let mut failures = 0;

    // --- Agreement: exactness is unconditional. -----------------------
    if run.fell_back {
        eprintln!("SMOKE FAIL: the probe LP fell back to the monolithic path");
        failures += 1;
    }
    if run.blocks != BUSES {
        eprintln!(
            "SMOKE FAIL: expected {BUSES} blocks (one per bus), got {}",
            run.blocks
        );
        failures += 1;
    }
    for (label, obj) in [("serial", run.serial_obj), ("pooled", run.pooled_obj)] {
        let diff = rel_diff(obj, run.mono_obj);
        if diff > 1e-9 {
            eprintln!(
                "SMOKE FAIL: {label} decomposed objective {obj} vs monolithic {} \
                 (rel {diff:.3e}, need <= 1e-9)",
                run.mono_obj
            );
            failures += 1;
        }
    }
    if run.multiplier_iterations < 2 {
        eprintln!(
            "SMOKE FAIL: budget {BUDGET} should bind the coupling row, but the \
             multiplier search finished after {} sweep(s)",
            run.multiplier_iterations
        );
        failures += 1;
    }

    // --- Speedup: enforced only where parallelism exists. --------------
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 2 {
        if run.speedup < 1.5 {
            eprintln!(
                "SMOKE FAIL: pooled decomposed solve only {:.2}x faster than the \
                 monolithic revised solve (need >= 1.5x) on a {cores}-core host",
                run.speedup
            );
            failures += 1;
        }
    } else {
        println!("speedup gate SKIPPED: single-core host (agreement still enforced)");
    }

    if write_json {
        write_bench_json(&run);
    }
    if failures == 0 {
        println!("smoke OK");
    }
    failures
}

/// Renders the machine-readable trajectory (schema in the crate docs).
fn write_bench_json(run: &ProbeRun) {
    let json = format!(
        "{{\n  \"blocks\": {},\n  \"state_cap\": {},\n  \"budget\": {},\n  \
         \"wall_ms\": {{\n    \"monolithic_revised\": {:.3},\n    \
         \"decomposed_serial\": {:.3},\n    \"decomposed_pooled\": {:.3}\n  }},\n  \
         \"speedup_pooled_vs_monolithic\": {:.4},\n  \"multiplier_iterations\": {}\n}}\n",
        run.blocks,
        STATE_CAP,
        BUDGET,
        run.mono.as_secs_f64() * 1e3,
        run.serial.as_secs_f64() * 1e3,
        run.pooled.as_secs_f64() * 1e3,
        run.speedup,
        run.multiplier_iterations
    );
    match std::fs::write("BENCH_decomp.json", &json) {
        Ok(()) => println!("wrote BENCH_decomp.json"),
        Err(e) => {
            eprintln!("failed to write BENCH_decomp.json: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke_mode = args.iter().any(|a| a == "--smoke");
    let json_mode = args.iter().any(|a| a == "--json");
    if smoke_mode {
        std::process::exit(smoke(json_mode));
    }
    let run = run_probe(3);
    print_table(&run);
    println!(
        "  objectives: mono {} / serial rel {:.2e} / pooled rel {:.2e}",
        run.mono_obj,
        rel_diff(run.serial_obj, run.mono_obj),
        rel_diff(run.pooled_obj, run.mono_obj)
    );
    if json_mode {
        write_bench_json(&run);
    }
}
