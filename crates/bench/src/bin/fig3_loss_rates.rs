//! Experiment E3 — the paper's **Figure 3**: per-processor loss on the
//! network-processor architecture under (i) constant buffer sizing,
//! (ii) CTMDP resizing, (iii) the timeout policy; 10 replications.
//!
//! Expected shape (not absolute numbers): total loss drops ≈ 20 % vs
//! constant sizing and ≈ 50 % vs the timeout policy; a few processors may
//! get slightly worse while hot ones improve drastically.
//!
//! Run with: `cargo run --release -p socbuf-bench --bin fig3_loss_rates`

use socbuf_bench::{bar, paper_pipeline_config};
use socbuf_core::{evaluate_policies, SizingReport};
use socbuf_soc::templates;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = templates::network_processor();
    // Table 1's first column (70/83, 80/100, 107/90, 96/82 for the
    // highlighted processors) matches Figure 3's bars, so the figure is
    // the tight 160-unit configuration.
    let budget = 160;
    let config = paper_pipeline_config();
    eprintln!(
        "sizing + simulating {} processors, budget {budget}, {} replications …",
        arch.num_processors(),
        config.replications
    );
    let cmp = evaluate_policies(&arch, budget, &config)?;
    let report = SizingReport::new(&arch, &cmp);

    println!("=== Figure 3: loss rates before/after sizing and under the timeout policy ===");
    println!(
        "(network processor, total buffer budget {budget} units, {} replications)\n",
        config.replications
    );
    print!("{}", report.figure3_table());

    // The bar view of the figure.
    let max = cmp
        .pre
        .per_proc
        .iter()
        .chain(&cmp.post.per_proc)
        .chain(&cmp.timeout.per_proc)
        .map(|p| p.lost)
        .fold(0.0_f64, f64::max);
    println!("\n--- bars (pre | post | timeout) ---");
    for (i, ((pre, post), to)) in cmp
        .pre
        .per_proc
        .iter()
        .zip(&cmp.post.per_proc)
        .zip(&cmp.timeout.per_proc)
        .enumerate()
    {
        println!("P{:<3} pre     |{}", i + 1, bar(pre.lost, max, 50));
        println!("     post    |{}", bar(post.lost, max, 50));
        println!("     timeout |{}", bar(to.lost, max, 50));
    }

    println!("\npaper: overall loss decreases ~20% vs constant sizing, ~50% vs timeout");
    println!(
        "measured: {:.1}% vs constant sizing, {:.1}% vs timeout",
        100.0 * cmp.improvement_vs_pre(),
        100.0 * cmp.improvement_vs_timeout()
    );
    Ok(())
}
