//! Ablation A3 — allocation policies head to head: uniform ("constant
//! sizing"), traffic-proportional (the paper's "simple division depending
//! on traffic ratios"), and the CTMDP methodology. All three simulated
//! with the same equal-share arbiter *and* the CTMDP one, to separate the
//! effect of buffer placement from the effect of the K-switching policy.
//!
//! Run with: `cargo run --release -p socbuf-bench --bin ablation_allocators`

use socbuf_bench::paper_pipeline_config;
use socbuf_core::{size_buffers, SizingConfig};
use socbuf_sim::{average_reports, replicate, Arbiter, SimConfig};
use socbuf_soc::{templates, BufferAllocation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = templates::network_processor();
    let budget = 160;
    let pipeline = paper_pipeline_config();
    let sim_cfg = SimConfig {
        horizon: pipeline.horizon,
        warmup: pipeline.warmup,
        seed: pipeline.seed,
    };
    let reps = pipeline.replications;

    let outcome = size_buffers(&arch, budget, &SizingConfig::default())?;
    let uniform = BufferAllocation::uniform(&arch, budget);
    let proportional = BufferAllocation::traffic_proportional(&arch, budget);

    println!("=== A3: allocator comparison (network processor, budget {budget}) ===\n");
    println!(
        "{:<24} {:>14} {:>16}",
        "allocation + arbiter", "total loss", "loss fraction"
    );

    let run = |label: &str, alloc: &BufferAllocation, arbiter: Arbiter| {
        let reports = replicate(&arch, alloc, &arbiter, None, &sim_cfg, reps);
        let avg = average_reports(&reports);
        println!(
            "{label:<24} {:>14.1} {:>15.2}%",
            avg.total_lost,
            100.0 * avg.loss_fraction()
        );
        avg.total_lost
    };

    run("uniform + fixed-slot", &uniform, Arbiter::FixedSlot);
    run("uniform + equal-share", &uniform, Arbiter::RandomNonempty);
    run(
        "proportional + equal",
        &proportional,
        Arbiter::RandomNonempty,
    );
    run(
        "ctmdp + equal-share",
        &outcome.allocation,
        Arbiter::RandomNonempty,
    );
    run("uniform + longest-q", &uniform, Arbiter::LongestQueue);
    let k_arb = Arbiter::WeightedEffort {
        efforts: outcome.efforts.clone(),
    };
    let full = run("ctmdp + k-switching", &outcome.allocation, k_arb);

    println!(
        "\nfull methodology total loss {full:.1}. The decisive gain over the paper's\nbaseline comes from backlog-adaptive arbitration (any adaptive row vs the\nfixed-slot row); buffer reallocation then decides how the residual loss is\ndistributed at tight budgets."
    );
    Ok(())
}
