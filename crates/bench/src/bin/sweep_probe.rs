//! Developer probe for the sweep engine: wall-time scaling and
//! byte-identity of `BudgetSweep` across worker counts on the
//! `network_processor` budget grid.
//!
//! `--smoke` runs the CI gate:
//!
//! * **determinism (always enforced)** — the 1-, 2- and 8-worker runs
//!   of the grid must render byte-identical JSON-lines reports;
//! * **scaling (enforced when the host has ≥ 2 cores)** — the 8-worker
//!   sweep must beat the 1-worker sweep's wall time (best of
//!   `SMOKE_REPEATS`). On a single-core host the speedup gate is
//!   reported as skipped: there is no parallelism to win, and a pool
//!   that merely doesn't *lose* there is already covered by the
//!   determinism gate.

use socbuf_core::SizingConfig;
use socbuf_soc::templates;
use socbuf_sweep::{BudgetSweep, SweepReport, WorkPool};
use std::time::{Duration, Instant};

/// The CI grid: the paper's Table 1 budget range on the evaluation
/// platform, sized so one serial pass takes O(seconds) in release.
fn smoke_grid() -> Vec<usize> {
    (0..16).map(|i| 160 + 32 * i).collect()
}

fn smoke_sizing() -> SizingConfig {
    SizingConfig {
        state_cap: 16,
        effort_levels: 4,
        ..SizingConfig::default()
    }
}

/// One timed sweep; returns the rendered report and the wall time.
fn timed_run(
    arch: &socbuf_soc::Architecture,
    budgets: &[usize],
    sizing: &SizingConfig,
    workers: usize,
) -> (SweepReport, Duration) {
    let mut sweep = BudgetSweep::new(arch, budgets.to_vec());
    sweep.sizing = sizing.clone();
    let pool = WorkPool::new(workers);
    let t = Instant::now();
    let report = sweep.run(&pool).unwrap_or_else(|e| {
        eprintln!("sweep failed at {workers} workers: {e}");
        std::process::exit(2);
    });
    (report, t.elapsed())
}

/// CI-sized gate; exits nonzero on regression.
fn smoke() -> i32 {
    // Best-of-N timing keeps the gate robust to shared-runner noise.
    const SMOKE_REPEATS: usize = 2;

    let np = templates::network_processor();
    let grid = smoke_grid();
    let sizing = smoke_sizing();
    let mut failures = 0;

    let mut best: Vec<(usize, Duration)> = Vec::new();
    let mut baseline: Option<String> = None;
    for workers in [1usize, 2, 8] {
        let mut best_time: Option<Duration> = None;
        for _ in 0..SMOKE_REPEATS {
            let (report, time) = timed_run(&np, &grid, &sizing, workers);
            let rendered = report.to_jsonl();
            match &baseline {
                None => baseline = Some(rendered),
                Some(expected) => {
                    if *expected != rendered {
                        eprintln!(
                            "SMOKE FAIL: {workers}-worker report bytes differ from the \
                             1-worker baseline"
                        );
                        failures += 1;
                    }
                }
            }
            if best_time.is_none_or(|b| time < b) {
                best_time = Some(time);
            }
        }
        let time = best_time.expect("at least one repeat");
        println!(
            "np budget grid ({} points, cap=16): {workers} workers -> {time:?}",
            grid.len()
        );
        best.push((workers, time));
    }

    let t1 = best[0].1;
    let t8 = best[2].1;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 2 {
        if t8 >= t1 {
            eprintln!(
                "SMOKE FAIL: 8-worker sweep ({t8:?}) not faster than 1-worker ({t1:?}) \
                 on a {cores}-core host"
            );
            failures += 1;
        } else {
            println!(
                "speedup 8w vs 1w: {:.2}x on {cores} cores",
                t1.as_secs_f64() / t8.as_secs_f64().max(1e-12)
            );
        }
    } else {
        println!("speedup gate SKIPPED: single-core host (determinism gate still enforced)");
    }

    if failures == 0 {
        println!("smoke OK");
    }
    failures
}

/// Full table: scaling across worker counts plus the frontier summary.
fn full_probe() {
    let np = templates::network_processor();
    let grid = smoke_grid();
    let sizing = smoke_sizing();
    let mut baseline: Option<SweepReport> = None;
    for workers in [1usize, 2, 4, 8, 16] {
        let (report, time) = timed_run(&np, &grid, &sizing, workers);
        let identical = match &baseline {
            None => {
                baseline = Some(report.clone());
                true
            }
            Some(b) => *b == report,
        };
        println!(
            "{workers:>2} workers: {time:?}  byte-identical={identical}  frontier={:?}",
            report.pareto_frontier()
        );
    }
    if let Some(report) = baseline {
        println!("\nPareto frontier (budget vs predicted loss):");
        print!("{}", report.frontier_table());
    }
}

fn main() {
    let smoke_mode = std::env::args().any(|a| a == "--smoke");
    if smoke_mode {
        std::process::exit(smoke());
    }
    full_probe();
}
