//! Developer probe for sharded campaign execution: a coordinator plus
//! two real shard-server processes on loopback sockets, byte-diffed
//! against the serial single-host pipeline.
//!
//! `--worker` turns this same binary into a shard server (ephemeral
//! port announced as `PORT <n>` on stdout, lifetime tied to stdin —
//! see [`socbuf_serve::shard_worker_main`]), so the probe needs no
//! second binary built or found: it spawns itself.
//!
//! `--smoke` runs the CI gate:
//!
//! * **byte-identical merge (always enforced)** — fanning the
//!   manifest's chunks over two shard processes and merging the chunk
//!   reports must reproduce the serial run's CSV and JSONL byte for
//!   byte, for every shard assignment the round-robin produces;
//! * **coverage verification (always enforced)** — the reducer must
//!   reject a dropped chunk and a duplicated chunk with the named
//!   structured errors;
//! * **warm transfer (always enforced)** — a shard seeded with a
//!   [`socbuf_core::BasisSnapshot`] exported from a warm peer must
//!   solve its first chunk with measurably fewer simplex pivots than
//!   the same chunk cold (and identical semantic bytes);
//! * **fan-out wall time (enforced when the host has ≥ 2 cores)** —
//!   best-of-repeats: two shards must finish the campaign faster than
//!   one shard over the same sockets. Skipped on single-core hosts,
//!   same policy as `serve_probe`.

use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::time::{Duration, Instant};

use socbuf_core::wire::CampaignManifest;
use socbuf_core::SizingConfig;
use socbuf_serve::{Client, RetryPolicy, ShardFleet};
use socbuf_soc::templates;
use socbuf_sweep::{merge_chunk_reports, run_manifest, BudgetSweep, MergeError, WorkPool};

/// Heavy enough per point that warm-chain and seeding effects are
/// measurable, light enough for CI (same scale as `serve_probe`).
fn smoke_sizing() -> SizingConfig {
    SizingConfig {
        state_cap: 16,
        effort_levels: 4,
        ..SizingConfig::default()
    }
}

/// Ten budgets → three warm chains of ≤ 4: enough chunks that a
/// two-shard round-robin splits them unevenly ({0,2} vs {1}).
fn smoke_budgets() -> Vec<usize> {
    vec![200, 216, 232, 248, 264, 280, 296, 312, 328, 344]
}

/// One self-exec'd shard-server process. Dropping it closes the
/// worker's stdin, which is its shutdown signal.
struct ShardProcess {
    child: Child,
    _stdin: ChildStdin,
    addr: SocketAddr,
}

impl ShardProcess {
    fn spawn() -> ShardProcess {
        let exe = std::env::current_exe().expect("own executable path");
        let mut child = Command::new(exe)
            .arg("--worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| {
                eprintln!("cannot spawn shard worker: {e}");
                std::process::exit(2);
            });
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("worker announces its port");
        let port: u16 = line
            .trim()
            .strip_prefix("PORT ")
            .unwrap_or_else(|| {
                eprintln!("worker printed {line:?}, expected \"PORT <n>\"");
                std::process::exit(2);
            })
            .parse()
            .expect("valid port");
        let stdin = child.stdin.take().expect("piped stdin");
        ShardProcess {
            child,
            _stdin: stdin,
            addr: SocketAddr::from(([127, 0, 0, 1], port)),
        }
    }

    fn client(&self) -> Client {
        Client::connect_tcp(self.addr).expect("connect to shard")
    }
}

impl Drop for ShardProcess {
    fn drop(&mut self) {
        // The EOF signal (dropping `_stdin`) is the graceful path;
        // kill() on top keeps cleanup robust if the worker ever hangs.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Times one whole-campaign fan-out over `shards` (chunks round-robin,
/// merge included).
fn timed_fanout(
    manifest: &CampaignManifest,
    shards: &[&ShardProcess],
) -> (socbuf_sweep::SweepReport, Duration) {
    let mut fleet = ShardFleet::new(
        shards.iter().map(|s| s.client()).collect(),
        RetryPolicy::default(),
    );
    let t = Instant::now();
    let reports = fleet.run_manifest(manifest, false).unwrap_or_else(|e| {
        eprintln!("fan-out failed: {e}");
        std::process::exit(2);
    });
    let merged = merge_chunk_reports(manifest, &reports).unwrap_or_else(|e| {
        eprintln!("merge failed: {e}");
        std::process::exit(2);
    });
    (merged, t.elapsed())
}

/// CI-sized gate; exits nonzero on regression.
fn smoke() -> i32 {
    let arch = templates::network_processor();
    let config = smoke_sizing();
    let mut sweep = BudgetSweep::new(&arch, smoke_budgets());
    sweep.sizing = config.clone();
    let manifest = sweep.manifest().expect("sizing-only campaign");
    let mut failures = 0;

    // The reference bytes from the serial, in-process pipeline.
    let t = Instant::now();
    let serial = run_manifest(&manifest, &WorkPool::serial()).expect("serial run");
    let serial_time = t.elapsed();

    let shard_a = ShardProcess::spawn();
    let shard_b = ShardProcess::spawn();

    // --- Byte-identical coordinator + 2-shard merge. -------------------
    let (merged, two_shard_time) = timed_fanout(&manifest, &[&shard_a, &shard_b]);
    if merged.to_csv() != serial.to_csv() {
        eprintln!("SMOKE FAIL: 2-shard merged CSV differs from the serial pipeline");
        failures += 1;
    }
    if merged.to_jsonl() != serial.to_jsonl() {
        eprintln!("SMOKE FAIL: 2-shard merged JSONL differs from the serial pipeline");
        failures += 1;
    }
    println!(
        "{} budgets in {} chunks: serial {serial_time:?}, 2-shard fan-out {two_shard_time:?}",
        manifest.items(),
        manifest.chunks.len()
    );

    // --- Coverage verification: dropped and duplicated chunks. ---------
    let mut client_b = shard_b.client();
    let reports: Vec<_> = (0..manifest.chunks.len())
        .map(|c| client_b.sweep_chunk(&manifest, c, false).unwrap().report)
        .collect();
    match merge_chunk_reports(&manifest, &reports[..reports.len() - 1]) {
        Err(MergeError::MissingChunk { .. }) => {}
        other => {
            eprintln!("SMOKE FAIL: dropped chunk not rejected as a coverage gap: {other:?}");
            failures += 1;
        }
    }
    let mut dup = reports.clone();
    dup.push(reports[0].clone());
    match merge_chunk_reports(&manifest, &dup) {
        Err(MergeError::DuplicateChunk { .. }) => {}
        other => {
            eprintln!("SMOKE FAIL: duplicated chunk not rejected as overlap: {other:?}");
            failures += 1;
        }
    }

    // --- Warm transfer: snapshot-seeded chunk beats cold on pivots. ----
    // Shard B's cache is still empty (chunk execution is cache-free),
    // so its cold chunk-0 pivots are a clean baseline.
    let cold = client_b.sweep_chunk(&manifest, 0, true).unwrap();
    if cold.trace.warm {
        eprintln!("SMOKE FAIL: empty-cache shard reported a seeded (warm) chunk");
        failures += 1;
    }
    // Warm shard A with a size query at the campaign's first budget,
    // then ship its basis to B.
    let mut client_a = shard_a.client();
    client_a.size(&arch, &config, smoke_budgets()[0]).unwrap();
    let snapshot = client_a.snapshot_export(&arch, &config).unwrap();
    client_b.snapshot_import(&arch, &config, &snapshot).unwrap();
    let seeded = client_b.sweep_chunk(&manifest, 0, true).unwrap();
    if !seeded.trace.warm {
        eprintln!("SMOKE FAIL: imported snapshot did not seed the chunk");
        failures += 1;
    }
    if seeded.trace.pivots >= cold.trace.pivots {
        eprintln!(
            "SMOKE FAIL: seeded chunk spent {} pivots, cold spent {} — warm transfer \
             must measurably reduce pivots",
            seeded.trace.pivots, cold.trace.pivots
        );
        failures += 1;
    }
    println!(
        "chunk 0 pivots: cold {} -> snapshot-seeded {}",
        cold.trace.pivots, seeded.trace.pivots
    );

    // --- Fan-out wall time: 2 shards beat 1 (multi-core hosts). --------
    const SMOKE_REPEATS: usize = 2;
    let mut best_one = Duration::MAX;
    let mut best_two = two_shard_time;
    for _ in 0..SMOKE_REPEATS {
        let (_, t1) = timed_fanout(&manifest, &[&shard_a]);
        let (_, t2) = timed_fanout(&manifest, &[&shard_a, &shard_b]);
        best_one = best_one.min(t1);
        best_two = best_two.min(t2);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "best fan-out: 1 shard {best_one:?} vs 2 shards {best_two:?} ({:.2}x)",
        best_one.as_secs_f64() / best_two.as_secs_f64().max(1e-12)
    );
    if cores >= 2 {
        if best_two >= best_one {
            eprintln!(
                "SMOKE FAIL: 2-shard fan-out {best_two:?} not faster than 1 shard \
                 {best_one:?} on a {cores}-core host"
            );
            failures += 1;
        }
    } else {
        println!("wall-time gate SKIPPED: single-core host (byte parity still enforced)");
    }

    if failures == 0 {
        println!("smoke OK");
    }
    failures
}

/// Full table: serial vs 1/2/4-shard fan-out wall time per template.
fn full_probe() {
    let config = smoke_sizing();
    println!(
        "{:<20} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "architecture", "chunks", "serial", "1 shard", "2 shards", "4 shards"
    );
    let shards: Vec<ShardProcess> = (0..4).map(|_| ShardProcess::spawn()).collect();
    for (name, arch) in [
        ("figure1", templates::figure1()),
        ("amba", templates::amba()),
        ("coreconnect", templates::coreconnect()),
    ] {
        let mut sweep = BudgetSweep::new(&arch, smoke_budgets());
        sweep.sizing = config.clone();
        let manifest = sweep.manifest().expect("sizing-only campaign");
        let t = Instant::now();
        let serial = run_manifest(&manifest, &WorkPool::serial()).expect("serial run");
        let serial_time = t.elapsed();
        let mut row = format!("{name:<20} {:>7} {serial_time:>12?}", manifest.chunks.len());
        for n in [1usize, 2, 4] {
            let refs: Vec<&ShardProcess> = shards[..n].iter().collect();
            let (merged, time) = timed_fanout(&manifest, &refs);
            assert_eq!(
                merged.to_jsonl(),
                serial.to_jsonl(),
                "{name}: {n}-shard bytes"
            );
            row.push_str(&format!(" {time:>12?}"));
        }
        println!("{row}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--worker") {
        if let Err(e) = socbuf_serve::shard_worker_main(socbuf_serve::ServerConfig::default()) {
            eprintln!("shard worker failed: {e}");
            std::process::exit(2);
        }
        return;
    }
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    full_probe();
}
