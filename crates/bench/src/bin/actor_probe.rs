//! Developer probe for the actor-based simulator core: engine
//! equivalence, extended-semantics determinism, and relative throughput
//! of the actor engine against the legacy event loop.
//!
//! `--smoke` runs the CI gate:
//!
//! * **equivalence (always enforced)** — the actor engine must
//!   reproduce the legacy engine's `SimReport` *exactly* (every counter
//!   bit-identical) on the four shared templates across seeds and
//!   arbiters. This is the refactor's load-bearing promise: same draws,
//!   same statistics, different core.
//! * **determinism (always enforced)** — extended scenarios (priority
//!   arbitration, locked transfers, bursty and on/off sources) have no
//!   legacy oracle, so the gate is per-seed reproducibility plus the
//!   conservation identity `offered = delivered + lost + in_flight`.
//! * **throughput (always enforced, generous bound)** — the actor
//!   engine pays for mailboxes and envelopes; the gate only requires it
//!   stay within [`ACTOR_SLOWDOWN_LIMIT`]× of the legacy wall time
//!   (best of [`SMOKE_REPEATS`]) so a catastrophic scheduling
//!   regression cannot land silently. Both engines run in-process on
//!   the same host, so the ratio is robust to runner speed.

use socbuf_sim::{
    simulate_actors_with, simulate_with, Arbiter, SimConfig, SimEngine, SimReport, TimeoutSpec,
};
use socbuf_soc::templates;
use socbuf_soc::{
    Architecture, ArchitectureBuilder, BufferAllocation, BusArbitration, FlowTarget, TrafficShape,
};
use std::time::{Duration, Instant};

/// Largest tolerated actor/legacy wall-time ratio in the smoke gate.
const ACTOR_SLOWDOWN_LIMIT: f64 = 8.0;

/// Timing repeats; best-of keeps the gate robust to shared-runner noise.
const SMOKE_REPEATS: usize = 3;

fn shared_templates() -> Vec<(&'static str, Architecture)> {
    vec![
        ("figure1", templates::figure1()),
        ("amba", templates::amba()),
        ("coreconnect", templates::coreconnect()),
        ("network_processor", templates::network_processor()),
    ]
}

/// A two-client priority bus with one bursty flow — exercises every
/// extended declaration except on/off in one architecture.
fn extended_arch() -> Architecture {
    let mut b = ArchitectureBuilder::new();
    let x = b
        .add_bus_with_arbitration("x", 4.0, BusArbitration::Priority)
        .unwrap();
    let y = b
        .add_bus_with_arbitration("y", 4.0, BusArbitration::Locked { max_batch: 4 })
        .unwrap();
    let p = b.add_processor("p", &[x], 1.0).unwrap();
    let q = b.add_processor("q", &[x], 1.0).unwrap();
    let r = b.add_processor("r", &[y], 1.0).unwrap();
    b.add_bridge_with_latency("g", x, y, 0.25).unwrap();
    b.add_flow_shaped(
        p,
        FlowTarget::Processor(r),
        0.8,
        TrafficShape::Burst { batch: 4 },
    )
    .unwrap();
    b.add_flow(q, FlowTarget::Bus(x), 0.7).unwrap();
    b.add_flow_shaped(
        r,
        FlowTarget::Bus(y),
        0.5,
        TrafficShape::OnOff {
            mean_on: 2.0,
            mean_off: 6.0,
        },
    )
    .unwrap();
    b.build().unwrap()
}

fn run_engine(
    engine: SimEngine,
    arch: &Architecture,
    horizon: f64,
    seed: u64,
) -> (SimReport, Duration) {
    let alloc = BufferAllocation::uniform(arch, 4);
    let mut arbiter = Arbiter::RandomNonempty;
    let cfg = SimConfig::new(horizon, seed);
    let t = Instant::now();
    let report = engine.simulate_with(arch, &alloc, &mut arbiter, None, &cfg);
    (report, t.elapsed())
}

/// The equivalence gate: every shared workload, both engines, exact
/// report equality. Returns the number of mismatching workloads.
fn check_equivalence(horizon: f64, verbose: bool) -> usize {
    let mut failures = 0;
    for (name, arch) in shared_templates() {
        let alloc = BufferAllocation::uniform(&arch, 4);
        // Calibrate the timeout thresholds from an untimed legacy run,
        // exactly as the pipeline does before its timeout baseline.
        let calibration = simulate_with(
            &arch,
            &alloc,
            &mut Arbiter::LongestQueue,
            None,
            &SimConfig::new(horizon, 7),
        );
        let timeout = TimeoutSpec::from_calibration(&calibration);
        for seed in [0u64, 17, 4242] {
            for timeout in [None, Some(&timeout)] {
                let cfg = SimConfig::new(horizon, seed);
                let mut arb_l = Arbiter::LongestQueue;
                let mut arb_a = Arbiter::LongestQueue;
                let legacy = simulate_with(&arch, &alloc, &mut arb_l, timeout, &cfg);
                let actors = simulate_actors_with(&arch, &alloc, &mut arb_a, timeout, &cfg);
                if legacy != actors {
                    eprintln!(
                        "SMOKE FAIL: {name} seed {seed} timeout={}: engines disagree\n\
                         legacy: {legacy:?}\nactors: {actors:?}",
                        timeout.is_some()
                    );
                    failures += 1;
                } else if verbose {
                    println!(
                        "{name:>18} seed {seed} timeout={}: identical \
                         (offered {:.0}, lost {:.0})",
                        timeout.is_some(),
                        legacy.total_offered,
                        legacy.total_lost
                    );
                }
            }
        }
    }
    failures
}

/// Determinism + conservation on the extended architecture (no legacy
/// oracle exists there). Returns the number of failures.
fn check_extended(horizon: f64, verbose: bool) -> usize {
    let arch = extended_arch();
    assert!(arch.uses_extended_semantics());
    let mut failures = 0;
    for seed in [1u64, 99, 2005] {
        let (a, _) = run_engine(SimEngine::Actors, &arch, horizon, seed);
        let (b, _) = run_engine(SimEngine::Actors, &arch, horizon, seed);
        if a != b {
            eprintln!("SMOKE FAIL: extended arch seed {seed} not reproducible");
            failures += 1;
        }
        let residual = a.total_offered - a.total_delivered - a.total_lost - a.in_flight;
        if residual.abs() > 1e-9 || a.in_flight < 0.0 {
            eprintln!(
                "SMOKE FAIL: extended arch seed {seed} breaks conservation \
                 (offered {} delivered {} lost {} in_flight {})",
                a.total_offered, a.total_delivered, a.total_lost, a.in_flight
            );
            failures += 1;
        } else if verbose {
            println!(
                "extended seed {seed}: loss_fraction {:.4}, in_flight {:.0}",
                a.loss_fraction(),
                a.in_flight
            );
        }
    }
    failures
}

/// Best-of-N wall time for one engine on one workload.
fn best_time(engine: SimEngine, arch: &Architecture, horizon: f64) -> Duration {
    let mut best: Option<Duration> = None;
    for rep in 0..SMOKE_REPEATS {
        let (_, time) = run_engine(engine, arch, horizon, rep as u64);
        if best.is_none_or(|b| time < b) {
            best = Some(time);
        }
    }
    best.expect("at least one repeat")
}

/// CI-sized gate; exits nonzero on regression.
fn smoke() -> i32 {
    let mut failures = 0;
    failures += check_equivalence(2000.0, false);
    failures += check_extended(2000.0, false);

    let np = templates::network_processor();
    let legacy = best_time(SimEngine::Legacy, &np, 5000.0);
    let actors = best_time(SimEngine::Actors, &np, 5000.0);
    let ratio = actors.as_secs_f64() / legacy.as_secs_f64().max(1e-12);
    println!("np horizon 5000: legacy {legacy:?}, actors {actors:?} ({ratio:.2}x)");
    if ratio > ACTOR_SLOWDOWN_LIMIT {
        eprintln!(
            "SMOKE FAIL: actor engine {ratio:.2}x slower than legacy \
             (limit {ACTOR_SLOWDOWN_LIMIT}x)"
        );
        failures += 1;
    }

    if failures == 0 {
        println!("smoke OK");
    }
    failures as i32
}

/// Full table: per-template equivalence detail plus a throughput sweep.
fn full_probe() {
    check_equivalence(2000.0, true);
    check_extended(5000.0, true);
    println!(
        "\n{:>18} {:>12} {:>12} {:>7}",
        "template", "legacy", "actors", "ratio"
    );
    for (name, arch) in shared_templates() {
        let legacy = best_time(SimEngine::Legacy, &arch, 20000.0);
        let actors = best_time(SimEngine::Actors, &arch, 20000.0);
        println!(
            "{name:>18} {legacy:>12?} {actors:>12?} {:>6.2}x",
            actors.as_secs_f64() / legacy.as_secs_f64().max(1e-12)
        );
    }
}

fn main() {
    let smoke_mode = std::env::args().any(|a| a == "--smoke");
    if smoke_mode {
        std::process::exit(smoke());
    }
    full_probe();
}
