//! Ablation A2 — CTMDP discretization granularity: occupancy cap N and
//! effort levels L against solution quality and LP size.
//!
//! Run with: `cargo run --release -p socbuf-bench --bin ablation_granularity`

use socbuf_bench::paper_pipeline_config;
use socbuf_core::evaluate_policies;
use socbuf_soc::templates;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = templates::figure1();
    let budget = 22;
    println!("=== A2: CTMDP granularity (figure 1, budget {budget}) ===\n");
    println!(
        "{:>4} {:>4} {:>14} {:>14} {:>12}",
        "N", "L", "pred. loss", "post loss", "lp pivots"
    );
    for (n, l) in [(6, 2), (8, 3), (12, 3), (16, 4), (20, 4), (24, 5)] {
        let mut config = paper_pipeline_config();
        config.replications = 5;
        config.sizing.state_cap = n;
        config.sizing.effort_levels = l;
        let cmp = evaluate_policies(&arch, budget, &config)?;
        println!(
            "{n:>4} {l:>4} {:>14.5} {:>14.1} {:>12}",
            cmp.outcome.predicted_loss_rate, cmp.post.total_lost, cmp.outcome.lp_iterations
        );
    }
    println!("\nfiner grids should not worsen the predicted loss (richer policies)");
    Ok(())
}
