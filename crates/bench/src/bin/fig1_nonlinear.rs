//! Experiment E1 — the paper's §2 narrative: with bridges un-buffered,
//! the steady-state system is **quadratic** and a naive solver struggles
//! (the authors' Matlab 6.1 attempt failed); after buffer insertion and
//! splitting, the system is a plain LP and solves in one shot.
//!
//! Run with: `cargo run --release -p socbuf-bench --bin fig1_nonlinear`

use socbuf_core::coupled::CoupledSystem;
use socbuf_core::{size_buffers, CoreError, SizingConfig};
use socbuf_soc::{templates, Architecture, ArchitectureBuilder, BufferAllocation, FlowTarget};

/// The Figure 1 topology with its bridge ring (`b → f → g → b`) loaded
/// to the utilisation the paper's experiments run at; the nominal
/// template's light load lets even a naive solver limp through, the
/// operating-point load does not.
fn figure1_at_load() -> Architecture {
    let mut b = ArchitectureBuilder::new();
    let a = b.add_bus("a", 1.0).unwrap();
    let bus_b = b.add_bus("b", 0.8).unwrap();
    let c = b.add_bus("c", 0.8).unwrap();
    let d = b.add_bus("d", 0.8).unwrap();
    let e = b.add_bus("e", 0.8).unwrap();
    let f = b.add_bus("f", 0.6).unwrap();
    let g = b.add_bus("g", 0.6).unwrap();
    let p1 = b.add_processor("p1", &[a], 1.0).unwrap();
    let p2 = b.add_processor("p2", &[a, bus_b], 1.0).unwrap();
    let p3 = b.add_processor("p3", &[bus_b, c], 1.0).unwrap();
    let p4 = b.add_processor("p4", &[d, e], 1.0).unwrap();
    let p5 = b.add_processor("p5", &[g], 1.0).unwrap();
    b.add_bridge("b1", bus_b, f).unwrap();
    b.add_bridge("b2", f, g).unwrap();
    b.add_bridge("b3", g, bus_b).unwrap();
    b.add_bridge("b4", c, d).unwrap();
    b.add_flow(p1, FlowTarget::Processor(p2), 0.5).unwrap();
    b.add_flow(p2, FlowTarget::Processor(p3), 0.35).unwrap();
    b.add_flow(p2, FlowTarget::Processor(p5), 0.5).unwrap();
    b.add_flow(p5, FlowTarget::Processor(p2), 0.45).unwrap();
    b.add_flow(p3, FlowTarget::Processor(p4), 0.4).unwrap();
    b.add_flow(p3, FlowTarget::Processor(p2), 0.35).unwrap();
    b.add_flow(p4, FlowTarget::Bus(e), 0.4).unwrap();
    b.build().unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = templates::figure1();
    let alloc = BufferAllocation::uniform(&arch, 22);

    println!("=== E1: why the unsplit system is hard ===\n");
    let coupled = CoupledSystem::build(&arch, &alloc);
    println!(
        "unsplit system: {} queues, {} quadratic cross-bus product terms",
        coupled.num_queues(),
        coupled.quadratic_term_count()
    );

    println!("\nnominal (light) load, naive fixed-point iteration:");
    match coupled.solve_fixed_point(1.0, 100, 1e-9) {
        Ok(sol) => println!(
            "  converged after {} iterations — light load keeps the products benign",
            sol.iterations
        ),
        Err(e) => println!("  no convergence: {e}"),
    }

    let hot = figure1_at_load();
    let hot_alloc = BufferAllocation::uniform(&hot, 22);
    let hot_coupled = CoupledSystem::build(&hot, &hot_alloc);
    println!(
        "\noperating-point load (bridge ring near saturation), {} quadratic terms:",
        hot_coupled.quadratic_term_count()
    );
    println!("naive fixed-point iteration (undamped), 200 iterations:");
    match hot_coupled.solve_fixed_point(1.0, 200, 1e-9) {
        Ok(sol) => println!(
            "  converged after {} iterations (final residual {:.2e})",
            sol.iterations,
            sol.residuals.last().unwrap()
        ),
        Err(CoreError::CoupledDiverged {
            iterations,
            residual,
        }) => {
            println!("  DID NOT CONVERGE after {iterations} iterations (residual {residual:.2e})");
            println!("  — reproducing the paper's 'we were not able to get solutions'");
        }
        Err(e) => return Err(e.into()),
    }

    println!("\nheavily damped iteration (d = 0.1), 10000 iterations:");
    match hot_coupled.solve_fixed_point(0.1, 10_000, 1e-9) {
        Ok(sol) => println!(
            "  converged after {} iterations — a heuristic fixed point, with no optimality guarantee",
            sol.iterations
        ),
        Err(e) => println!("  still no convergence: {e}"),
    }

    println!("\nsplit + buffered formulation (the paper's methodology):");
    let outcome = size_buffers(&arch, 22, &SizingConfig::default())?;
    println!(
        "  joint LP solved in {} simplex pivots; predicted weighted loss rate {:.5}",
        outcome.lp_iterations, outcome.predicted_loss_rate
    );
    println!("  allocation: {:?}", outcome.allocation.as_slice());
    Ok(())
}
