//! Developer probe for the `socbuf-serve` front end: round-trip
//! latency of cold vs warm `size` queries against a loopback server,
//! plus the service contract the CI smoke gate enforces.
//!
//! `--smoke` runs the CI gate:
//!
//! * **byte parity (always enforced)** — the served `result` of a
//!   `size` query must be byte-identical to the direct pipeline's
//!   [`sizing_outcome_semantic_json`] rendering, for a cold solve, a
//!   warm cache hit, and a warm retarget to a nearby budget;
//! * **warm cache (always enforced)** — the repeated identical query
//!   must report `warm` in its trace and spend ~0 simplex pivots (the
//!   context re-enters from its own optimal basis);
//! * **warm latency (enforced when the host has ≥ 2 cores)** — the
//!   best-of-repeats warm-hit round trip must be faster than the
//!   best-of-repeats cold round trip. Warm hits skip the whole
//!   first-phase solve, so this holds by a wide margin everywhere but
//!   on the noisy single-core shared runners the repeats cannot fully
//!   de-noise (same skip policy as `warmstart_probe`).

use std::time::{Duration, Instant};

use socbuf_core::wire::sizing_outcome_semantic_json;
use socbuf_core::{size_buffers, SizingConfig};
use socbuf_serve::{Client, Server, ServerConfig};
use socbuf_soc::templates;

/// The smoke query: the paper's evaluation platform at a Table-1-scale
/// budget, sized to take long enough cold that a warm hit is clearly
/// distinguishable.
fn smoke_sizing() -> SizingConfig {
    SizingConfig {
        state_cap: 16,
        effort_levels: 4,
        ..SizingConfig::default()
    }
}

const SMOKE_BUDGET: usize = 320;

/// One timed round trip.
fn timed_size(
    client: &mut Client,
    arch: &socbuf_soc::Architecture,
    config: &SizingConfig,
    budget: usize,
) -> (socbuf_serve::SizeReply, Duration) {
    let t = Instant::now();
    let reply = client.size(arch, config, budget).unwrap_or_else(|e| {
        eprintln!("size request failed: {e}");
        std::process::exit(2);
    });
    (reply, t.elapsed())
}

/// CI-sized gate; exits nonzero on regression.
fn smoke() -> i32 {
    const SMOKE_REPEATS: usize = 3;

    let arch = templates::network_processor();
    let config = smoke_sizing();
    let mut failures = 0;

    let server = Server::bind_tcp("127.0.0.1:0", ServerConfig::default()).unwrap_or_else(|e| {
        eprintln!("cannot bind loopback server: {e}");
        std::process::exit(2);
    });
    let mut client = Client::connect_tcp(server.tcp_addr().expect("tcp server")).unwrap();

    // The reference bytes from the direct, in-process pipeline.
    let direct = size_buffers(&arch, SMOKE_BUDGET, &config).expect("direct solve");
    let want = sizing_outcome_semantic_json(&direct);

    // --- Byte parity + warm cache on a repeated query. -----------------
    let (cold, cold_rt) = timed_size(&mut client, &arch, &config, SMOKE_BUDGET);
    if cold.result_json != want {
        eprintln!("SMOKE FAIL: cold served bytes differ from the direct pipeline");
        failures += 1;
    }
    if cold.trace.warm {
        eprintln!("SMOKE FAIL: first query reported a warm cache hit");
        failures += 1;
    }
    let (warm, warm_rt) = timed_size(&mut client, &arch, &config, SMOKE_BUDGET);
    if warm.result_json != want {
        eprintln!("SMOKE FAIL: warm served bytes differ from the direct pipeline");
        failures += 1;
    }
    if !warm.trace.warm {
        eprintln!("SMOKE FAIL: repeated query missed the warm cache");
        failures += 1;
    }
    if warm.trace.pivots > 1 {
        eprintln!(
            "SMOKE FAIL: warm hit on an identical query spent {} pivots (expected ~0; \
             cold spent {})",
            warm.trace.pivots, cold.trace.pivots
        );
        failures += 1;
    }
    println!(
        "size budget {SMOKE_BUDGET} (cap=16): cold {cold_rt:?} ({} pivots) -> \
         warm {warm_rt:?} ({} pivots)",
        cold.trace.pivots, warm.trace.pivots
    );

    // --- Byte parity on a warm retarget to a nearby budget. ------------
    let nearby = SMOKE_BUDGET + 32;
    let want_nearby =
        sizing_outcome_semantic_json(&size_buffers(&arch, nearby, &config).expect("direct"));
    let (retarget, _) = timed_size(&mut client, &arch, &config, nearby);
    if retarget.result_json != want_nearby {
        eprintln!("SMOKE FAIL: warm retarget to budget {nearby} diverged from the pipeline");
        failures += 1;
    }
    if !retarget.trace.warm {
        eprintln!("SMOKE FAIL: nearby budget missed the warm cache");
        failures += 1;
    }

    // --- Warm-hit latency < cold (multi-core hosts). -------------------
    let mut best_cold = cold_rt;
    let mut best_warm = warm_rt;
    for _ in 0..SMOKE_REPEATS {
        // A fresh server gives a genuinely cold first query each round.
        let fresh = Server::bind_tcp("127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut fresh_client = Client::connect_tcp(fresh.tcp_addr().unwrap()).unwrap();
        let (_, tc) = timed_size(&mut fresh_client, &arch, &config, SMOKE_BUDGET);
        let (_, tw) = timed_size(&mut fresh_client, &arch, &config, SMOKE_BUDGET);
        best_cold = best_cold.min(tc);
        best_warm = best_warm.min(tw);
        fresh.shutdown();
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "best round trips: cold {best_cold:?} vs warm {best_warm:?} ({:.1}x)",
        best_cold.as_secs_f64() / best_warm.as_secs_f64().max(1e-12)
    );
    if cores >= 2 {
        if best_warm >= best_cold {
            eprintln!(
                "SMOKE FAIL: warm-hit round trip {best_warm:?} not faster than cold \
                 {best_cold:?} on a {cores}-core host"
            );
            failures += 1;
        }
    } else {
        println!("latency gate SKIPPED: single-core host (parity + warm cache still enforced)");
    }

    let health = client.health().unwrap_or_else(|e| {
        eprintln!("health request failed: {e}");
        std::process::exit(2);
    });
    println!(
        "health: {} hits / {} misses, {} warm vs {} cold pivots",
        health.hits, health.misses, health.warm_pivots, health.cold_pivots
    );
    server.shutdown();

    if failures == 0 {
        println!("smoke OK");
    }
    failures
}

/// Full table: round-trip latency across budgets and templates, cold
/// then warm, with the server's own counters at the end.
fn full_probe() {
    let config = smoke_sizing();
    let server = Server::bind_tcp("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();

    println!(
        "{:<20} {:>7} {:>12} {:>12} {:>8} {:>8}",
        "architecture", "budget", "cold", "warm", "cold pv", "warm pv"
    );
    for (name, arch) in [
        ("figure1", templates::figure1()),
        ("amba", templates::amba()),
        ("coreconnect", templates::coreconnect()),
        ("network_processor", templates::network_processor()),
    ] {
        for budget in [160usize, 320, 640] {
            let (cold, cold_rt) = timed_size(&mut client, &arch, &config, budget);
            let (warm, warm_rt) = timed_size(&mut client, &arch, &config, budget);
            println!(
                "{name:<20} {budget:>7} {:>12?} {:>12?} {:>8} {:>8}",
                cold_rt, warm_rt, cold.trace.pivots, warm.trace.pivots
            );
        }
    }
    let health = client.health().unwrap();
    println!(
        "\nserver counters: {} hits / {} misses / {} evictions; {} warm vs {} cold pivots; \
         cache {}/{}; pool width {}",
        health.hits,
        health.misses,
        health.evictions,
        health.warm_pivots,
        health.cold_pivots,
        health.cache_entries,
        health.cache_capacity,
        health.workers
    );
    server.shutdown();
}

fn main() {
    let smoke_mode = std::env::args().any(|a| a == "--smoke");
    if smoke_mode {
        std::process::exit(smoke());
    }
    full_probe();
}
