//! Ablation A1 — sensitivity of the sizing to the budget-row tightness
//! α (`Σ E[occupancy] ≤ α · budget` in the joint LP).
//!
//! Run with: `cargo run --release -p socbuf-bench --bin ablation_alpha`

use socbuf_bench::paper_pipeline_config;
use socbuf_core::evaluate_policies;
use socbuf_soc::templates;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = templates::network_processor();
    let budget = 320;
    println!("=== A1: budget-row tightness α (network processor, budget {budget}) ===\n");
    println!(
        "{:>6} {:>14} {:>14} {:>12}",
        "alpha", "post loss", "vs pre (%)", "lp pivots"
    );
    for alpha in [0.2, 0.35, 0.5, 0.7, 0.9] {
        let mut config = paper_pipeline_config();
        config.replications = 5;
        config.sizing.alpha = alpha;
        let cmp = evaluate_policies(&arch, budget, &config)?;
        println!(
            "{alpha:>6.2} {:>14.1} {:>14.1} {:>12}",
            cmp.post.total_lost,
            100.0 * cmp.improvement_vs_pre(),
            cmp.outcome.lp_iterations
        );
    }
    Ok(())
}
