//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! The binaries in `src/bin/` regenerate the paper's artifacts:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig1_nonlinear` | §2 narrative — the unsplit system is quadratic and resists naive solving |
//! | `fig2_split` | Figure 2 — the four split subsystems |
//! | `fig3_loss_rates` | Figure 3 — per-processor losses under three policies |
//! | `table1_budget_sweep` | Table 1 — pre/post losses at budgets 160/320/640 |
//! | `ablation_alpha` | sensitivity to the budget-row tightness α |
//! | `ablation_granularity` | sensitivity to CTMDP state/effort granularity |
//! | `ablation_allocators` | uniform vs traffic-proportional vs CTMDP allocation |
//! | `lp_scaling_probe` | developer probe: joint-LP pivot scaling (not a paper artifact) |
//! | `sweep_probe` | developer probe: campaign wall-time across worker counts (not a paper artifact) |
//! | `warmstart_probe` | developer probe: warm-chained vs cold-started sweeps (not a paper artifact) |
//! | `decomp_probe` | developer probe: block-angular decomposition vs the monolithic solve (not a paper artifact) |
//! | `serve_probe` | developer probe: `socbuf-serve` round-trip latency, byte parity and warm-hit pivots (not a paper artifact) |
//!
//! # `BENCH_decomp.json`
//!
//! `decomp_probe --json` writes its trajectory to `BENCH_decomp.json`
//! in the working directory so decomposition perf can be tracked across
//! commits. The schema, all fields always present:
//!
//! ```json
//! {
//!   "blocks": 32,                      // detected per-queue blocks
//!   "state_cap": 64,                   // CTMDP occupancy states per queue
//!   "budget": 160,                     // total buffer budget (binds the coupling row)
//!   "wall_ms": {
//!     "monolithic_revised": 512.3,     // joint revised simplex solve
//!     "decomposed_serial": 201.7,      // decomposed engine, blocks on one thread
//!     "decomposed_pooled": 102.4       // decomposed engine, blocks over WorkPool::available()
//!   },
//!   "speedup_pooled_vs_monolithic": 5.0,
//!   "multiplier_iterations": 12        // block sweeps spent in the multiplier search
//! }
//! ```
//!
//! Wall times are best-of-repeats; everything else is deterministic and
//! identical across runs and executors.

use socbuf_core::PipelineConfig;

/// The standard experiment configuration used by the paper-facing
/// binaries: 10 replications (as in the paper), a 1000-time-unit horizon
/// and a fixed base seed for reproducibility.
pub fn paper_pipeline_config() -> PipelineConfig {
    PipelineConfig {
        horizon: 1000.0,
        warmup: 100.0,
        seed: 2005,
        replications: 10,
        ..PipelineConfig::default()
    }
}

/// Renders a rough ASCII bar of width proportional to `value / max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn paper_config_matches_paper() {
        let c = paper_pipeline_config();
        assert_eq!(c.replications, 10);
    }
}
