//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! The binaries in `src/bin/` regenerate the paper's artifacts:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig1_nonlinear` | §2 narrative — the unsplit system is quadratic and resists naive solving |
//! | `fig2_split` | Figure 2 — the four split subsystems |
//! | `fig3_loss_rates` | Figure 3 — per-processor losses under three policies |
//! | `table1_budget_sweep` | Table 1 — pre/post losses at budgets 160/320/640 |
//! | `ablation_alpha` | sensitivity to the budget-row tightness α |
//! | `ablation_granularity` | sensitivity to CTMDP state/effort granularity |
//! | `ablation_allocators` | uniform vs traffic-proportional vs CTMDP allocation |
//! | `lp_scaling_probe` | developer probe: joint-LP pivot scaling (not a paper artifact) |

use socbuf_core::PipelineConfig;

/// The standard experiment configuration used by the paper-facing
/// binaries: 10 replications (as in the paper), a 1000-time-unit horizon
/// and a fixed base seed for reproducibility.
pub fn paper_pipeline_config() -> PipelineConfig {
    PipelineConfig {
        horizon: 1000.0,
        warmup: 100.0,
        seed: 2005,
        replications: 10,
        ..PipelineConfig::default()
    }
}

/// Renders a rough ASCII bar of width proportional to `value / max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn paper_config_matches_paper() {
        let c = paper_pipeline_config();
        assert_eq!(c.replications, 10);
    }
}
