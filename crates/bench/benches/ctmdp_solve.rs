//! P2 — constrained CTMDP solve time: LP vs relative value iteration on
//! growing service-rate-control queues.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socbuf_ctmdp::{relative_value_iteration, solve_constrained, CtmdpBuilder, CtmdpModel};

/// Service-rate-controlled M/M/1/K with holding costs; optionally a
/// budget constraint on serving effort.
fn queue_model(k: usize, constrained: bool) -> CtmdpModel {
    let constraints = usize::from(constrained);
    let mut b = CtmdpBuilder::new(k + 1, constraints);
    for s in 0..=k {
        let mut arrivals = Vec::new();
        if s < k {
            arrivals.push((s + 1, 1.0));
        }
        let cost = s as f64;
        let ccost = |v: f64| if constrained { vec![v] } else { vec![] };
        b.add_action(s, "idle", arrivals.clone(), cost, ccost(0.0)).unwrap();
        let mut trans = arrivals;
        if s > 0 {
            trans.push((s - 1, 2.0));
        }
        b.add_action(s, "serve", trans, cost, ccost(1.0)).unwrap();
    }
    if constrained {
        b.set_constraint_bound(0, 0.4);
    }
    b.build().unwrap()
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctmdp_lp");
    for &k in &[8usize, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let m = queue_model(k, true);
            b.iter(|| solve_constrained(&m).unwrap());
        });
    }
    group.finish();
}

fn bench_value_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctmdp_vi");
    for &k in &[8usize, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let m = queue_model(k, false);
            b.iter(|| relative_value_iteration(&m, 1e-8, 1_000_000).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp, bench_value_iteration);
criterion_main!(benches);
