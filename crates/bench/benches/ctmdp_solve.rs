//! P2 — constrained CTMDP solve time: LP (both engines) vs relative
//! value iteration on growing service-rate-control queues, plus the
//! CSR-vs-dense balance matrix assembly comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socbuf_ctmdp::{relative_value_iteration, solve_constrained_with, CtmdpBuilder, CtmdpModel};
use socbuf_linalg::Matrix;
use socbuf_lp::{LpEngine, SimplexOptions};

/// Service-rate-controlled M/M/1/K with holding costs; optionally a
/// budget constraint on serving effort.
fn queue_model(k: usize, constrained: bool) -> CtmdpModel {
    let constraints = usize::from(constrained);
    let mut b = CtmdpBuilder::new(k + 1, constraints);
    for s in 0..=k {
        let mut arrivals = Vec::new();
        if s < k {
            arrivals.push((s + 1, 1.0));
        }
        let cost = s as f64;
        let ccost = |v: f64| if constrained { vec![v] } else { vec![] };
        b.add_action(s, "idle", arrivals.clone(), cost, ccost(0.0))
            .unwrap();
        let mut trans = arrivals;
        if s > 0 {
            trans.push((s - 1, 2.0));
        }
        b.add_action(s, "serve", trans, cost, ccost(1.0)).unwrap();
    }
    if constrained {
        b.set_constraint_bound(0, 0.4);
    }
    b.build().unwrap()
}

/// The occupation-measure LP under both engines: pivot counts stay
/// close (same pricing rules), so the wall-time ratio isolates what the
/// basis representation costs.
fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctmdp_lp");
    for &k in &[8usize, 16, 32, 64] {
        for engine in [LpEngine::Revised, LpEngine::Tableau] {
            group.bench_with_input(BenchmarkId::new(engine.to_string(), k), &k, |b, &k| {
                let m = queue_model(k, true);
                let opts = SimplexOptions::default().with_engine(engine);
                b.iter(|| solve_constrained_with(&m, &opts).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_value_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctmdp_vi");
    for &k in &[8usize, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let m = queue_model(k, false);
            b.iter(|| relative_value_iteration(&m, 1e-8, 1_000_000).unwrap());
        });
    }
    group.finish();
}

/// The historical dense balance-matrix assembly: a full
/// `num_states × num_pairs` matrix filled from the transition lists.
fn dense_balance_matrix(m: &CtmdpModel) -> Matrix {
    let mut a = Matrix::zeros(m.num_states(), m.num_pairs());
    let mut col = 0usize;
    for s in 0..m.num_states() {
        for act in 0..m.num_actions(s) {
            let exit = m.exit_rate(s, act);
            if exit > 0.0 {
                a[(s, col)] = -exit;
            }
            for &(to, rate) in m.transitions(s, act) {
                if rate > 0.0 {
                    a[(to, col)] += rate;
                }
            }
            col += 1;
        }
    }
    a
}

fn bench_transition_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctmdp_balance_assembly");
    for &k in &[16usize, 64, 256, 1024] {
        let m = queue_model(k, true);
        group.bench_with_input(BenchmarkId::new("csr", k), &m, |b, m| {
            b.iter(|| m.transition_csr());
        });
        group.bench_with_input(BenchmarkId::new("dense", k), &m, |b, m| {
            b.iter(|| dense_balance_matrix(m));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lp,
    bench_value_iteration,
    bench_transition_assembly
);
criterion_main!(benches);
