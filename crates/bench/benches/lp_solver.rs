//! P1 — simplex solver scaling on dense random LPs and on
//! occupation-measure-shaped LPs (the solver's real workload), the
//! revised-vs-tableau engine comparison on both shapes, plus the
//! sparse-vs-dense standard-form assembly comparison on the paper's
//! Figure 1 joint LP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socbuf_lp::{assembly, LpEngine, LpProblem, Relation, Sense, SimplexOptions};

const ENGINES: [LpEngine; 2] = [LpEngine::Revised, LpEngine::Tableau];

/// Dense feasible-by-construction LP: max c·x, A x ≤ b, x ≤ 10.
fn dense_lp(n: usize, m: usize) -> LpProblem {
    let mut p = LpProblem::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|j| p.add_var_bounded(format!("x{j}"), ((j * 7 + 3) % 11) as f64, 0.0, Some(10.0)))
        .collect();
    for i in 0..m {
        let terms: Vec<_> = (0..n)
            .map(|j| (vars[j], (((i * 13 + j * 5 + 1) % 17) as f64) / 4.0))
            .collect();
        p.add_constraint(terms, Relation::Le, 50.0 + i as f64)
            .unwrap();
    }
    p
}

/// Both engines on dense random LPs: the tableau's best case (pivoting
/// fills the matrix anyway), so this is where revised merely has to
/// stay competitive. The per-engine IDs make pivots-vs-walltime
/// regressions attributable to one engine.
fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_dense");
    for &(n, m) in &[(10usize, 8usize), (30, 20), (60, 40), (120, 80)] {
        for engine in ENGINES {
            group.bench_with_input(
                BenchmarkId::new(engine.to_string(), format!("{n}x{m}")),
                &(n, m),
                |b, &(n, m)| {
                    let p = dense_lp(n, m);
                    let opts = SimplexOptions::default().with_engine(engine);
                    b.iter(|| p.solve_with(&opts).unwrap());
                },
            );
        }
    }
    group.finish();
}

/// Both engines on the solver's real workload — block-diagonal
/// occupation-measure LPs — where sparse pricing and the sparse basis
/// factorization are supposed to win from `state_cap ≈ 16` up.
fn bench_sizing_shaped(c: &mut Criterion) {
    use socbuf_core::{SizingConfig, SizingLp};
    use socbuf_soc::templates;
    let mut group = c.benchmark_group("lp_sizing_shaped");
    group.sample_size(10);
    let arch = templates::figure1();
    for &cap in &[8usize, 12, 16] {
        for engine in ENGINES {
            group.bench_with_input(
                BenchmarkId::new(engine.to_string(), cap),
                &cap,
                |b, &cap| {
                    let cfg = SizingConfig {
                        state_cap: cap,
                        engine,
                        ..SizingConfig::default()
                    };
                    let lp = SizingLp::build(&arch, 22, &cfg).unwrap();
                    b.iter(|| lp.solve().unwrap());
                },
            );
        }
    }
    group.finish();
}

/// Standard-form assembly: the CSR path the solver uses vs the
/// historical dense path, on the figure1 occupation-measure LP at
/// growing per-queue state caps K. Sparse must be no slower at small K
/// and pull ahead decisively from K = 64 up (the dense path allocates
/// and walks the full m × n matrix).
fn bench_assembly(c: &mut Criterion) {
    use socbuf_core::{SizingConfig, SizingLp};
    use socbuf_soc::templates;
    let mut group = c.benchmark_group("lp_assembly_figure1");
    let arch = templates::figure1();
    for &cap in &[8usize, 16, 64, 128] {
        let cfg = SizingConfig {
            state_cap: cap,
            ..SizingConfig::default()
        };
        let lp = SizingLp::build(&arch, 22, &cfg).unwrap();
        group.bench_with_input(BenchmarkId::new("sparse", cap), lp.problem(), |b, p| {
            b.iter(|| assembly::assemble_sparse(p).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("dense", cap), lp.problem(), |b, p| {
            b.iter(|| assembly::assemble_dense(p).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dense, bench_sizing_shaped, bench_assembly);
criterion_main!(benches);
