//! P3 — discrete-event simulator throughput on the paper's templates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socbuf_sim::{simulate, Arbiter, SimConfig};
use socbuf_soc::{templates, BufferAllocation};

fn bench_templates(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_horizon_1000");
    group.sample_size(10);
    let cases = [
        ("figure1", templates::figure1()),
        ("amba", templates::amba()),
        ("coreconnect", templates::coreconnect()),
        ("network_processor", templates::network_processor()),
    ];
    for (name, arch) in cases {
        let alloc = BufferAllocation::uniform(&arch, 10 * arch.num_queues());
        group.bench_with_input(BenchmarkId::from_parameter(name), &arch, |b, arch| {
            b.iter(|| {
                simulate(
                    arch,
                    &alloc,
                    Arbiter::RandomNonempty,
                    &SimConfig::new(1000.0, 42),
                )
            });
        });
    }
    group.finish();
}

fn bench_arbiters(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_arbiters_np");
    group.sample_size(10);
    let arch = templates::network_processor();
    let alloc = BufferAllocation::uniform(&arch, 320);
    let efforts = vec![vec![0.0, 0.5, 1.0, 1.0, 1.0]; arch.num_queues()];
    let arbiters = [
        ("random", Arbiter::RandomNonempty),
        ("longest", Arbiter::LongestQueue),
        ("round_robin", Arbiter::round_robin(arch.num_buses())),
        ("k_switching", Arbiter::WeightedEffort { efforts }),
    ];
    for (name, arb) in arbiters {
        group.bench_with_input(BenchmarkId::from_parameter(name), &arb, |b, arb| {
            b.iter(|| simulate(&arch, &alloc, arb.clone(), &SimConfig::new(1000.0, 42)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_templates, bench_arbiters);
criterion_main!(benches);
