//! P4 — the full methodology end to end: split + joint LP + K-switching
//! translation (sizing), and sizing + tri-policy simulation (evaluate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socbuf_core::{evaluate_policies, size_buffers, PipelineConfig, SizingConfig};
use socbuf_soc::templates;

fn bench_sizing(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_sizing");
    group.sample_size(10);
    let cases = [
        ("figure1_b22", templates::figure1(), 22usize),
        ("amba_b16", templates::amba(), 16),
        ("np_b160", templates::network_processor(), 160),
    ];
    for (name, arch, budget) in cases {
        let cfg = SizingConfig {
            state_cap: 12,
            ..SizingConfig::default()
        };
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| size_buffers(&arch, budget, &cfg).unwrap());
        });
    }
    group.finish();
}

fn bench_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_evaluate");
    group.sample_size(10);
    let arch = templates::figure1();
    let config = PipelineConfig {
        sizing: SizingConfig::small(),
        horizon: 500.0,
        warmup: 50.0,
        seed: 1,
        replications: 3,
        ..PipelineConfig::default()
    };
    group.bench_function("figure1_3reps", |b| {
        b.iter(|| evaluate_policies(&arch, 22, &config).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_sizing, bench_evaluate);
criterion_main!(benches);
