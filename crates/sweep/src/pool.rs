//! A deterministic scoped-thread work pool.
//!
//! The pool exists to make *fan-out over independent work items* fast
//! without ever letting scheduling order leak into results. The rules
//! that guarantee this (the crate-level determinism contract):
//!
//! * every work item is identified by its **index** in the input slice,
//!   and whatever randomness it needs must derive from that index (or
//!   from data reachable through it) — never from thread identity,
//!   timing, or a shared mutable counter;
//! * results are written **by slot**: worker threads hand back
//!   `(index, result)` pairs and the pool reassembles them into index
//!   order, so the caller observes the same `Vec` no matter which
//!   worker ran which item or in which order items finished.
//!
//! Under those rules `WorkPool::new(1)`, `WorkPool::new(8)` and any
//! other worker count produce bit-identical outputs, which is what the
//! determinism test-suite (`tests/determinism.rs`) pins forever.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

thread_local! {
    /// Set for the lifetime of a pool worker thread. Nested fan-out
    /// (e.g. the decomposed LP engine's block solves running *inside* a
    /// campaign point that the pool is already parallelizing) checks
    /// this and degrades to serial execution instead of oversubscribing
    /// the machine with pools-inside-pools.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// A fixed-width pool of scoped worker threads (std-only, no
/// dependencies; threads live only for the duration of one call).
#[derive(Debug, Clone)]
pub struct WorkPool {
    workers: usize,
}

impl WorkPool {
    /// A pool running `workers` concurrent jobs (`1` = run everything on
    /// the calling thread).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "a pool needs at least one worker");
        WorkPool { workers }
    }

    /// A single-worker pool (serial execution on the calling thread).
    pub fn serial() -> Self {
        WorkPool::new(1)
    }

    /// A pool sized to the machine's available parallelism (falls back
    /// to one worker when that cannot be determined).
    pub fn available() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        WorkPool::new(n)
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Evaluates `job(0), …, job(n-1)` across the pool's workers and
    /// returns the results in index order.
    ///
    /// Items are claimed from a shared atomic counter (so workers stay
    /// busy even when item costs are skewed) but results are reduced by
    /// slot, never by completion order.
    ///
    /// # Panics
    ///
    /// If any job panics, one of the panics is re-raised on the calling
    /// thread (the lowest-spawn-order worker that panicked — *which*
    /// job that is can depend on scheduling). A panicking job also
    /// raises a cancellation flag that every worker checks before
    /// claiming its next item, so a failing campaign stops promptly:
    /// items claimed *after* the panic are bounded by the worker count
    /// (each surviving worker finishes at most the item it is already
    /// running plus one claimed in the race window), not by the queue
    /// length.
    pub fn run<R, F>(&self, n: usize, job: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.workers == 1 || n <= 1 {
            return (0..n).map(job).collect();
        }
        let next = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let threads = self.workers.min(n);
        let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        IN_POOL.with(|flag| flag.set(true));
                        let mut done: Vec<(usize, R)> = Vec::new();
                        while !cancelled.load(Ordering::Acquire) {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            // `job` is only required to be Sync (shared
                            // by reference), so catching here cannot
                            // corrupt caller state the caller could
                            // otherwise observe: the panic is re-raised
                            // verbatim below and `run` never returns.
                            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(i)))
                            {
                                Ok(r) => done.push((i, r)),
                                Err(panic) => {
                                    cancelled.store(true, Ordering::Release);
                                    std::panic::resume_unwind(panic);
                                }
                            }
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(done) => buckets.push(done),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in buckets.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "item {i} ran twice");
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index claimed exactly once"))
            .collect()
    }

    /// [`WorkPool::run`] over a slice: evaluates `f(i, &items[i])` for
    /// every item, returning results in item order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run(items.len(), |i| f(i, &items[i]))
    }

    /// [`WorkPool::run`] over index-fixed chunks: splits `0..items` into
    /// `⌈items / chunk⌉` contiguous ranges — chunk `c` always covers
    /// `c·chunk .. (c+1)·chunk` regardless of worker count — evaluates
    /// `job` once per range across the pool, and flattens the per-chunk
    /// result vectors back into item order.
    ///
    /// This is the one deterministic chunked scheduler in the workspace:
    /// the sweep campaigns' warm-chain claiming and the decomposed LP
    /// engine's block batching both sit on it, so the determinism
    /// argument (index-derived boundaries, by-slot reduction) lives in
    /// exactly one place.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero; job panics propagate as in
    /// [`WorkPool::run`].
    pub fn run_chunked<R, F>(&self, items: usize, chunk: usize, job: F) -> Vec<R>
    where
        R: Send,
        F: Fn(std::ops::Range<usize>) -> Vec<R> + Sync,
    {
        assert!(chunk >= 1, "chunk size must be at least 1");
        let chunks = items.div_ceil(chunk);
        self.run(chunks, |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(items);
            job(lo..hi)
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// The sink-reducing variant of [`WorkPool::run_chunked`]: evaluates
    /// `job` once per explicit range across the pool's workers and hands
    /// each result to `consume` **strictly in range order** on the
    /// calling thread — chunk `c`'s result is consumed before chunk
    /// `c+1`'s, no matter which worker finished first. This is what
    /// lets a campaign stream points into a sink while keeping the
    /// worker-count byte-identity contract: consumption order is range
    /// order, which is index order, which scheduling cannot touch.
    ///
    /// Memory is bounded: a worker that races ahead parks its finished
    /// chunk and then refuses to *claim* chunk `c` until
    /// `c < next_unconsumed + 2·workers`, so at most `2·workers` chunks
    /// are ever parked awaiting consumption (plus one in flight per
    /// worker). The gate cannot deadlock — chunks are claimed in order,
    /// so the claimer of `next_unconsumed` itself is never gated.
    ///
    /// `consume` errors cancel the remaining work (workers finish at
    /// most the chunk they are running) and the first error is
    /// returned; because consumption is ordered, "first" means lowest
    /// range index, matching what a batch collect-then-scan would
    /// select.
    ///
    /// # Panics
    ///
    /// Job panics propagate as in [`WorkPool::run`].
    pub fn run_ranges_ordered<R, E, F, C>(
        &self,
        ranges: &[std::ops::Range<usize>],
        job: F,
        mut consume: C,
    ) -> Result<OrderedRun, E>
    where
        R: Send,
        F: Fn(std::ops::Range<usize>) -> R + Sync,
        C: FnMut(usize, R) -> Result<(), E>,
    {
        let n = ranges.len();
        if self.workers == 1 || n <= 1 {
            for (c, range) in ranges.iter().enumerate() {
                consume(c, job(range.clone()))?;
            }
            return Ok(OrderedRun {
                chunks: n,
                peak_parked: 0,
            });
        }

        struct Shared<R> {
            parked: std::collections::BTreeMap<usize, R>,
            next: usize,
            abort: bool,
            peak: usize,
        }
        let threads = self.workers.min(n);
        let window = 2 * threads;
        let claim = AtomicUsize::new(0);
        let shared = std::sync::Mutex::new(Shared::<R> {
            parked: std::collections::BTreeMap::new(),
            next: 0,
            abort: false,
            peak: 0,
        });
        let turnstile = std::sync::Condvar::new();

        let mut outcome: Result<OrderedRun, E> = Ok(OrderedRun {
            chunks: n,
            peak_parked: 0,
        });
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        IN_POOL.with(|flag| flag.set(true));
                        loop {
                            let c = claim.fetch_add(1, Ordering::Relaxed);
                            if c >= n {
                                return;
                            }
                            {
                                let mut g = shared.lock().expect("pool state poisoned");
                                while !g.abort && c >= g.next + window {
                                    g = turnstile.wait(g).expect("pool state poisoned");
                                }
                                if g.abort {
                                    return;
                                }
                            }
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    job(ranges[c].clone())
                                }));
                            let mut g = shared.lock().expect("pool state poisoned");
                            match result {
                                Ok(r) => {
                                    if g.abort {
                                        return;
                                    }
                                    g.parked.insert(c, r);
                                    g.peak = g.peak.max(g.parked.len());
                                    turnstile.notify_all();
                                }
                                Err(panic) => {
                                    g.abort = true;
                                    turnstile.notify_all();
                                    drop(g);
                                    std::panic::resume_unwind(panic);
                                }
                            }
                        }
                    })
                })
                .collect();

            // The calling thread is the consumer: drain parked chunks in
            // strict range order, running `consume` outside the lock.
            let mut err: Option<E> = None;
            let mut drained = 0;
            while drained < n {
                let chunk = {
                    let mut g = shared.lock().expect("pool state poisoned");
                    loop {
                        if g.abort {
                            break None;
                        }
                        if let Some(r) = g.parked.remove(&drained) {
                            break Some(r);
                        }
                        g = turnstile.wait(g).expect("pool state poisoned");
                    }
                };
                let Some(chunk) = chunk else {
                    break; // a worker panicked; joined below
                };
                match consume(drained, chunk) {
                    Ok(()) => {
                        drained += 1;
                        let mut g = shared.lock().expect("pool state poisoned");
                        g.next = drained;
                        turnstile.notify_all();
                    }
                    Err(e) => {
                        let mut g = shared.lock().expect("pool state poisoned");
                        g.abort = true;
                        turnstile.notify_all();
                        err = Some(e);
                        break;
                    }
                }
            }
            for handle in handles {
                if let Err(panic) = handle.join() {
                    std::panic::resume_unwind(panic);
                }
            }
            outcome = match err {
                Some(e) => Err(e),
                None => Ok(OrderedRun {
                    chunks: n,
                    peak_parked: shared.lock().expect("pool state poisoned").peak,
                }),
            };
        });
        outcome
    }
}

/// Counters returned by [`WorkPool::run_ranges_ordered`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderedRun {
    /// Ranges executed and consumed.
    pub chunks: usize,
    /// Largest number of finished chunks ever parked awaiting ordered
    /// consumption — bounded by `2·workers` by the claim gate.
    pub peak_parked: usize,
}

/// The decomposed LP engine's block-solve hook: attaching a pool to
/// `SizingConfig::executor` fans the independent per-block solves of
/// each multiplier iteration over the pool's workers. When the call
/// arrives from *inside* one of this pool's own workers — a campaign
/// already parallelized over points, each point solving its LP — the
/// blocks run serially on that worker instead, so campaign-level and
/// block-level parallelism share one width budget. Either way the
/// results are bit-identical: executors change wall time, never bytes.
impl socbuf_core::SolveExecutor for WorkPool {
    fn run_indexed(&self, n: usize, job: &(dyn Fn(usize) + Sync)) {
        if IN_POOL.with(|flag| flag.get()) {
            for i in 0..n {
                job(i);
            }
            return;
        }
        self.run(n, job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order_for_any_worker_count() {
        // Skewed costs: early items are the slowest, so completion order
        // inverts index order under parallel execution.
        let job = |i: usize| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(8 - 2 * i as u64));
            }
            i * i
        };
        let expect: Vec<usize> = (0..32).map(job).collect();
        for workers in [1, 2, 3, 8] {
            let got = WorkPool::new(workers).run(32, job);
            assert_eq!(got, expect, "worker count {workers} reordered results");
        }
    }

    #[test]
    fn map_passes_item_and_index() {
        let items = vec!["a", "b", "c"];
        let got = WorkPool::new(2).map(&items, |i, s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = WorkPool::new(8);
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let calls = AtomicUsize::new(0);
        let got = WorkPool::new(4).run(100, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "job 13 exploded")]
    fn job_panics_propagate_to_the_caller() {
        WorkPool::new(4).run(32, |i| {
            if i == 13 {
                panic!("job 13 exploded");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        WorkPool::new(0);
    }

    #[test]
    fn items_claimed_after_a_panic_are_bounded_by_worker_count() {
        // Item 0 panics almost immediately while the other workers are
        // parked inside slow items; without claim-time cancellation the
        // survivors would then drain the whole 512-item queue before the
        // panic reaches the caller.
        const WORKERS: usize = 4;
        const ITEMS: usize = 512;
        let started = AtomicUsize::new(0);
        let panicked_after = AtomicUsize::new(usize::MAX);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            WorkPool::new(WORKERS).run(ITEMS, |i| {
                started.fetch_add(1, Ordering::SeqCst);
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    panicked_after.store(started.load(Ordering::SeqCst), Ordering::SeqCst);
                    panic!("item 0 exploded");
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
                i
            })
        }));
        assert!(result.is_err(), "the panic must reach the caller");
        let at_panic = panicked_after.load(Ordering::SeqCst);
        let total = started.load(Ordering::SeqCst);
        assert_ne!(at_panic, usize::MAX, "item 0 must have run");
        assert!(
            total - at_panic <= WORKERS,
            "{} items started after the panic (at_panic {at_panic}, total {total}); \
             cancellation must bound this by the worker count",
            total - at_panic
        );
        assert!(
            total < ITEMS / 2,
            "{total} of {ITEMS} items ran; the queue should not drain after a panic"
        );
    }

    fn ranges(n: usize, width: usize) -> Vec<std::ops::Range<usize>> {
        (0..n).map(|c| c * width..(c + 1) * width).collect()
    }

    #[test]
    fn ordered_ranges_consume_in_range_order_for_any_worker_count() {
        // Skewed costs: early chunks are slowest, so completion order
        // inverts range order under parallel execution.
        let job = |r: std::ops::Range<usize>| {
            if r.start < 8 {
                std::thread::sleep(std::time::Duration::from_millis(8 - r.start as u64));
            }
            r.start
        };
        for workers in [1, 2, 3, 8] {
            let mut seen = Vec::new();
            let run = WorkPool::new(workers)
                .run_ranges_ordered::<_, (), _, _>(&ranges(24, 2), job, |c, start| {
                    assert_eq!(start, c * 2);
                    seen.push(c);
                    Ok(())
                })
                .unwrap();
            assert_eq!(seen, (0..24).collect::<Vec<_>>(), "{workers} workers");
            assert_eq!(run.chunks, 24);
            assert!(
                run.peak_parked <= 2 * workers,
                "{workers} workers parked {} chunks",
                run.peak_parked
            );
        }
    }

    #[test]
    fn ordered_ranges_bound_parked_chunks_when_chunk_zero_stalls() {
        // Chunk 0 sleeps while the other workers race ahead; the claim
        // gate must stop them at the window instead of parking the
        // whole queue.
        const WORKERS: usize = 4;
        let job = |r: std::ops::Range<usize>| {
            if r.start == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            r.start
        };
        let run = WorkPool::new(WORKERS)
            .run_ranges_ordered::<_, (), _, _>(&ranges(64, 1), job, |_, _| Ok(()))
            .unwrap();
        assert!(
            run.peak_parked <= 2 * WORKERS,
            "parked {} chunks; the claim window must bound this",
            run.peak_parked
        );
    }

    #[test]
    fn ordered_ranges_return_the_lowest_index_error_and_cancel() {
        let executed = AtomicUsize::new(0);
        let got = WorkPool::new(4).run_ranges_ordered(
            &ranges(256, 1),
            |r| {
                executed.fetch_add(1, Ordering::SeqCst);
                r.start
            },
            |c, _| {
                if c == 3 {
                    Err(format!("chunk {c}"))
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(got.unwrap_err(), "chunk 3");
        // Cancellation: workers stop claiming once the consumer aborts.
        assert!(
            executed.load(Ordering::SeqCst) < 256,
            "the queue should not drain after a consume error"
        );
    }

    #[test]
    #[should_panic(expected = "chunk 5 exploded")]
    fn ordered_ranges_propagate_job_panics() {
        let _ = WorkPool::new(4).run_ranges_ordered::<_, (), _, _>(
            &ranges(32, 1),
            |r| {
                if r.start == 5 {
                    panic!("chunk 5 exploded");
                }
                r.start
            },
            |_, _| Ok(()),
        );
    }
}
