//! Manifest-driven shard execution and the merge reducer.
//!
//! A sharded campaign is the same campaign three ways:
//!
//! * **serially**, via [`run_manifest`] (or the campaign's own `run`) —
//!   the reference rendering;
//! * **chunk by chunk**, via [`execute_manifest_chunk`] — the unit a
//!   shard worker (local process or `socbuf-serve` shard server) runs,
//!   producing a [`ChunkReport`];
//! * **merged**, via [`merge_chunk_reports`] — the reducer verifies the
//!   reports cover the manifest's chunk partition exactly (no gaps, no
//!   overlaps, no foreign campaigns) and reassembles the points.
//!
//! The contract pinned by the test-suite and `shard_probe --smoke`:
//! merged CSV/JSONL bytes equal the serial single-host bytes for *any*
//! assignment of chunks to shards, because chunk boundaries (and with
//! them warm-chain membership) are declared by the manifest — the
//! [`ChunkPolicy`] partition by default, or a boundary-aligned
//! coarsening of it from adaptive re-chunking — never chosen by who
//! executes the chunk. Pivot counts do vary with chunking and seeding,
//! which is why they are trace-only and never rendered (see
//! [`SweepPoint::lp_iterations`]); shards that want them use
//! [`execute_manifest_chunk_traced`]. Basis-seeded execution (the
//! `seed` parameter) may still move the solver onto a different
//! optimal vertex, so nothing on the merge path ever seeds — it is the
//! shard layer's opt-in warm-transfer mode, measured by pivot counts.
//!
//! The reducer is streaming at heart: [`StreamingReducer`] ingests
//! chunk reports in any arrival order, verifies coverage incrementally,
//! and flushes points into a [`PointSink`] the moment the in-order run
//! extends — resident memory is bounded by the out-of-order window,
//! not the campaign. [`merge_chunk_reports`] is the batch wrapper
//! (reducer + collecting sink).
//!
//! [`ChunkPolicy`]: socbuf_core::ChunkPolicy
//! [`SweepPoint::lp_iterations`]: crate::report::SweepPoint

use std::collections::BTreeMap;

use socbuf_core::wire::{CampaignManifest, ChunkReport, JsonValue, ManifestShape, WireError};
use socbuf_core::BasisSnapshot;

use crate::campaign::{BudgetSweep, CampaignPlan, LoadSweep, RandomCampaign, SinkRun, SweepError};
use crate::pool::WorkPool;
use crate::report::{point_wire_json, sweep_point_from_json, SweepKind, SweepPoint, SweepReport};
use crate::stream::{PointSink, VecSink};

/// Lowers a manifest to the chunk-execution core of the campaign it
/// describes, executing the manifest's *declared* chunk partition —
/// the policy default, or the coarsened partition an adaptive
/// re-chunking wrote into it. The plan borrows the manifest's
/// architecture; everything else is cloned in, so one manifest can be
/// planned many times (once per chunk request on a shard server).
///
/// # Errors
///
/// [`SweepError::BadConfig`] for unusable campaigns — the same
/// refusals [`CampaignManifest::new`] makes, re-checked because a
/// manifest may arrive over the wire — or for a declared chunk
/// partition the campaign's scheduling policy cannot align with.
pub fn plan_manifest<'a>(
    manifest: &'a CampaignManifest,
    pool: &WorkPool,
) -> Result<CampaignPlan<'a>, SweepError> {
    let plan = match &manifest.shape {
        ManifestShape::Budget {
            arch,
            budgets,
            warm_start,
        } => BudgetSweep {
            arch,
            budgets: budgets.clone(),
            sizing: manifest.config.clone(),
            simulate: None,
            warm_start: *warm_start,
        }
        .plan(pool),
        ManifestShape::Load {
            arch,
            budget,
            factors,
            warm_start,
        } => LoadSweep {
            arch,
            budget: *budget,
            factors: factors.clone(),
            sizing: manifest.config.clone(),
            simulate: None,
            warm_start: *warm_start,
        }
        .plan(pool),
        ManifestShape::Random {
            params,
            seeds,
            units_per_queue,
        } => RandomCampaign {
            params: params.clone(),
            seeds: seeds.clone(),
            units_per_queue: *units_per_queue,
            sizing: manifest.config.clone(),
            simulate: None,
        }
        .plan(pool),
    }?;
    plan.with_ranges(manifest.chunks.iter().map(|c| c.start..c.end).collect())
}

/// Runs the whole campaign locally — the serial reference a sharded
/// merge is byte-compared against.
///
/// # Errors
///
/// The lowest-index point failure, or [`SweepError::BadConfig`] for an
/// unusable campaign.
pub fn run_manifest(
    manifest: &CampaignManifest,
    pool: &WorkPool,
) -> Result<SweepReport, SweepError> {
    plan_manifest(manifest, pool)?.run(pool)
}

/// Solver-effort trace for one executed chunk — measurement the wire
/// report deliberately omits (pivot counts vary with chunking and
/// seeding, so they can never be part of the byte-identity contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkStats {
    /// Points solved in the chunk.
    pub points: usize,
    /// Total simplex pivots across the chunk, cold solve included.
    pub pivots: usize,
}

/// Executes one manifest chunk and wraps the points into the
/// chunk-tagged wire report a reducer can verify, alongside the
/// trace-only [`ChunkStats`] (warm-transfer probes and serve traces
/// report pivots; the wire report never carries them). `seed`
/// warm-starts the chunk's chain from an imported basis — never use it
/// on the byte-identity path (see the module docs).
///
/// # Errors
///
/// [`SweepError::BadConfig`] for a chunk index outside the manifest's
/// partition, else the lowest-index point failure within the chunk.
pub fn execute_manifest_chunk_traced(
    manifest: &CampaignManifest,
    chunk: usize,
    pool: &WorkPool,
    seed: Option<BasisSnapshot>,
) -> Result<(ChunkReport, ChunkStats), SweepError> {
    let range = *manifest.chunks.get(chunk).ok_or_else(|| {
        SweepError::BadConfig(format!(
            "chunk {chunk} is out of range for a {}-chunk manifest",
            manifest.chunks.len()
        ))
    })?;
    let plan = plan_manifest(manifest, pool)?;
    let kind = plan.kind();
    let solved = plan.execute_chunk(chunk, seed)?;
    let stats = ChunkStats {
        points: solved.len(),
        pivots: solved.iter().map(|p| p.lp_iterations).sum(),
    };
    let points = solved
        .iter()
        .map(|p| {
            JsonValue::parse(&point_wire_json(kind, p)).expect("point renderer emits valid JSON")
        })
        .collect();
    let report = ChunkReport {
        config_hash: manifest.config_hash,
        kind: kind.tag().to_string(),
        chunk,
        start: range.start,
        end: range.end,
        points,
    };
    Ok((report, stats))
}

/// [`execute_manifest_chunk_traced`] without the trace — the plain
/// shard-worker entry point.
///
/// # Errors
///
/// As for [`execute_manifest_chunk_traced`].
pub fn execute_manifest_chunk(
    manifest: &CampaignManifest,
    chunk: usize,
    pool: &WorkPool,
    seed: Option<BasisSnapshot>,
) -> Result<ChunkReport, SweepError> {
    execute_manifest_chunk_traced(manifest, chunk, pool, seed).map(|(report, _)| report)
}

/// Runs the whole campaign locally, streaming points into `sink` in
/// index order as chunks complete — the sink-side twin of
/// [`run_manifest`].
///
/// # Errors
///
/// The lowest-index point failure, [`SweepError::Sink`] when the sink
/// refuses a point, or [`SweepError::BadConfig`] for an unusable
/// campaign.
pub fn run_manifest_sink(
    manifest: &CampaignManifest,
    pool: &WorkPool,
    sink: &mut dyn PointSink,
) -> Result<SinkRun, SweepError> {
    plan_manifest(manifest, pool)?.run_sink(pool, sink)
}

/// A merge refusal: the chunk reports do not cover the manifest's
/// partition exactly, or one of them belongs to a different campaign.
#[derive(Debug)]
pub enum MergeError {
    /// A report's `config_hash` disagrees with the manifest's — it was
    /// produced for a different campaign (or a stale revision of this
    /// one).
    HashMismatch {
        /// The offending report's chunk index.
        chunk: usize,
        /// The manifest's hash.
        expected: u64,
        /// The report's hash.
        got: u64,
    },
    /// A report's kind tag disagrees with the manifest's shape.
    KindMismatch {
        /// The offending report's chunk index.
        chunk: usize,
        /// The manifest's kind tag.
        expected: &'static str,
        /// The report's kind tag.
        got: String,
    },
    /// No report covers this manifest chunk — a coverage gap.
    MissingChunk {
        /// The uncovered chunk index.
        chunk: usize,
    },
    /// Two reports claim the same chunk.
    DuplicateChunk {
        /// The doubly-covered chunk index.
        chunk: usize,
    },
    /// A report names a chunk the manifest doesn't have.
    UnknownChunk {
        /// The report's chunk index.
        chunk: usize,
        /// The manifest's chunk count.
        num_chunks: usize,
    },
    /// A report's item range disagrees with the manifest's partition.
    RangeMismatch {
        /// The offending report's chunk index.
        chunk: usize,
        /// The manifest's `(start, end)` for that chunk.
        expected: (usize, usize),
        /// The report's `(start, end)`.
        got: (usize, usize),
    },
    /// A report point failed to parse back into a [`SweepPoint`].
    ///
    /// [`SweepPoint`]: crate::report::SweepPoint
    BadPoint {
        /// The report's chunk index.
        chunk: usize,
        /// The underlying wire error.
        source: WireError,
    },
    /// The downstream [`PointSink`] refused a merged point — an I/O
    /// failure on the streaming path, not a coverage violation.
    Sink {
        /// The sink's error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::HashMismatch {
                chunk,
                expected,
                got,
            } => write!(
                f,
                "chunk {chunk}: config hash {got:016x} does not match the manifest's {expected:016x}"
            ),
            MergeError::KindMismatch {
                chunk,
                expected,
                got,
            } => write!(
                f,
                "chunk {chunk}: kind \"{got}\" does not match the manifest's \"{expected}\""
            ),
            MergeError::MissingChunk { chunk } => {
                write!(f, "coverage gap: no report for chunk {chunk}")
            }
            MergeError::DuplicateChunk { chunk } => {
                write!(f, "duplicate report for chunk {chunk}")
            }
            MergeError::UnknownChunk { chunk, num_chunks } => write!(
                f,
                "chunk {chunk} is out of range for a {num_chunks}-chunk manifest"
            ),
            MergeError::RangeMismatch {
                chunk,
                expected,
                got,
            } => write!(
                f,
                "chunk {chunk}: range {}..{} does not match the manifest's {}..{}",
                got.0, got.1, expected.0, expected.1
            ),
            MergeError::BadPoint { chunk, source } => {
                write!(f, "chunk {chunk}: bad point: {source}")
            }
            MergeError::Sink { source } => write!(f, "merge sink failed: {source}"),
        }
    }
}

impl std::error::Error for MergeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MergeError::BadPoint { source, .. } => Some(source),
            MergeError::Sink { source } => Some(source),
            _ => None,
        }
    }
}

/// What a finished merge looked like from the inside — coverage and
/// residency figures the streaming path reports (and `scale_probe`
/// asserts a ceiling on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceStats {
    /// Chunks ingested (equals the manifest's chunk count on success).
    pub chunks: usize,
    /// Points flushed to the sink.
    pub points: usize,
    /// The largest number of parsed points ever parked waiting for an
    /// earlier chunk — the reducer's memory high-water mark. Bounded by
    /// the out-of-order window of the arrival order, not the campaign
    /// size.
    pub peak_resident_points: usize,
}

/// Anything that consumes verified chunk reports — the report-level
/// analogue of [`PointSink`], used by the serve client's fleet fan-out
/// to hand arriving stream frames to whichever reducer coordinates the
/// merge.
pub trait ReportSink {
    /// Ingests one chunk report.
    ///
    /// # Errors
    ///
    /// A [`MergeError`] when the report cannot be accepted.
    fn accept_report(&mut self, report: &ChunkReport) -> Result<(), MergeError>;
}

/// The bounded-memory merge reducer: ingests chunk reports in **any**
/// arrival order, verifies each against the manifest as it arrives
/// (config hash, kind, declared range, no duplicates), and flushes
/// points into a [`PointSink`] in index order the moment the in-order
/// run extends. Out-of-order reports park their parsed points; the
/// high-water mark of that parking lot is [`ReduceStats::peak_resident_points`],
/// bounded by how far ahead of the merge frontier the producers run —
/// never by the campaign size.
///
/// The sink receives exactly the byte-identity point sequence: feeding
/// it a [`crate::stream::ReportStream`] writes the same CSV/JSONL the
/// serial single-host run renders, for any chunk→shard assignment and
/// any arrival interleaving.
pub struct StreamingReducer<S: PointSink> {
    sink: S,
    kind: SweepKind,
    expected_kind: &'static str,
    config_hash: u64,
    /// The manifest's declared `(start, end)` per chunk.
    chunks: Vec<(usize, usize)>,
    seen: Vec<bool>,
    parked: BTreeMap<usize, Vec<SweepPoint>>,
    next: usize,
    chunks_in: usize,
    points_out: usize,
    resident: usize,
    peak_resident: usize,
}

impl<S: PointSink> StreamingReducer<S> {
    /// A reducer expecting exactly `manifest`'s chunk partition,
    /// flushing merged points into `sink`.
    pub fn new(manifest: &CampaignManifest, sink: S) -> StreamingReducer<S> {
        let expected_kind = manifest.shape.kind_tag();
        let kind = SweepKind::from_tag(expected_kind).expect("manifest kind tags mirror SweepKind");
        let chunks: Vec<(usize, usize)> =
            manifest.chunks.iter().map(|c| (c.start, c.end)).collect();
        let seen = vec![false; chunks.len()];
        StreamingReducer {
            sink,
            kind,
            expected_kind,
            config_hash: manifest.config_hash,
            chunks,
            seen,
            parked: BTreeMap::new(),
            next: 0,
            chunks_in: 0,
            points_out: 0,
            resident: 0,
            peak_resident: 0,
        }
    }

    /// Points currently parked waiting for an earlier chunk.
    pub fn resident_points(&self) -> usize {
        self.resident
    }

    /// The largest [`resident_points`](Self::resident_points) ever seen.
    pub fn peak_resident_points(&self) -> usize {
        self.peak_resident
    }

    /// The next chunk index the merge frontier is waiting for; equals
    /// the manifest's chunk count once coverage is complete.
    pub fn frontier(&self) -> usize {
        self.next
    }

    /// Verifies one report and flushes whatever in-order run it
    /// completes. Order of arrival is irrelevant to the merged output.
    ///
    /// # Errors
    ///
    /// The report's first violation — unknown chunk, foreign config
    /// hash, wrong kind, wrong range, duplicate, unparseable point —
    /// or [`MergeError::Sink`] if the downstream sink fails while this
    /// report's run flushes.
    pub fn ingest(&mut self, report: &ChunkReport) -> Result<(), MergeError> {
        let num_chunks = self.chunks.len();
        if report.chunk >= num_chunks {
            return Err(MergeError::UnknownChunk {
                chunk: report.chunk,
                num_chunks,
            });
        }
        if report.config_hash != self.config_hash {
            return Err(MergeError::HashMismatch {
                chunk: report.chunk,
                expected: self.config_hash,
                got: report.config_hash,
            });
        }
        if report.kind != self.expected_kind {
            return Err(MergeError::KindMismatch {
                chunk: report.chunk,
                expected: self.expected_kind,
                got: report.kind.clone(),
            });
        }
        let want = self.chunks[report.chunk];
        if report.start != want.0 || report.end != want.1 {
            return Err(MergeError::RangeMismatch {
                chunk: report.chunk,
                expected: want,
                got: (report.start, report.end),
            });
        }
        if self.seen[report.chunk] {
            return Err(MergeError::DuplicateChunk {
                chunk: report.chunk,
            });
        }
        let mut points = Vec::with_capacity(report.points.len());
        for v in &report.points {
            points.push(sweep_point_from_json(v, self.kind).map_err(|source| {
                MergeError::BadPoint {
                    chunk: report.chunk,
                    source,
                }
            })?);
        }
        self.seen[report.chunk] = true;
        self.chunks_in += 1;
        self.resident += points.len();
        self.peak_resident = self.peak_resident.max(self.resident);
        self.parked.insert(report.chunk, points);
        // Flush the in-order run this report may have completed.
        while let Some(run) = self.parked.remove(&self.next) {
            self.resident -= run.len();
            self.next += 1;
            for point in run {
                self.points_out += 1;
                self.sink
                    .accept(point)
                    .map_err(|source| MergeError::Sink { source })?;
            }
        }
        Ok(())
    }

    /// Verifies coverage is complete and returns the sink with the
    /// merge's statistics.
    ///
    /// # Errors
    ///
    /// [`MergeError::MissingChunk`] naming the lowest uncovered chunk.
    pub fn finish(self) -> Result<(S, ReduceStats), MergeError> {
        if let Some(chunk) = self.seen.iter().position(|covered| !covered) {
            return Err(MergeError::MissingChunk { chunk });
        }
        Ok((
            self.sink,
            ReduceStats {
                chunks: self.chunks_in,
                points: self.points_out,
                peak_resident_points: self.peak_resident,
            },
        ))
    }
}

impl<S: PointSink> ReportSink for StreamingReducer<S> {
    fn accept_report(&mut self, report: &ChunkReport) -> Result<(), MergeError> {
        self.ingest(report)
    }
}

/// The batch reducer: verifies that `reports` cover the manifest's
/// chunk partition exactly — every chunk present once, each under the
/// manifest's config hash, kind, and item range — and reassembles the
/// points into a [`SweepReport`] whose CSV/JSONL renderings are
/// byte-identical to the serial single-host run (the frontier flag,
/// a global property no chunk can compute, is re-derived by the
/// report's own renderers). A thin wrapper over [`StreamingReducer`]
/// with a collecting sink.
///
/// Report order is irrelevant: chunks are slotted by index.
///
/// # Errors
///
/// The first violation found, reports scanned in the order given
/// (each report fully verified — coverage checks *and* point parse —
/// before the next is looked at), then gaps in chunk order.
pub fn merge_chunk_reports(
    manifest: &CampaignManifest,
    reports: &[ChunkReport],
) -> Result<SweepReport, MergeError> {
    let mut reducer = StreamingReducer::new(manifest, VecSink::new());
    let kind = reducer.kind;
    for r in reports {
        reducer.ingest(r)?;
    }
    let (sink, _) = reducer.finish()?;
    Ok(SweepReport {
        kind,
        points: sink.into_points(),
    })
}
