//! Manifest-driven shard execution and the merge reducer.
//!
//! A sharded campaign is the same campaign three ways:
//!
//! * **serially**, via [`run_manifest`] (or the campaign's own `run`) —
//!   the reference rendering;
//! * **chunk by chunk**, via [`execute_manifest_chunk`] — the unit a
//!   shard worker (local process or `socbuf-serve` shard server) runs,
//!   producing a [`ChunkReport`];
//! * **merged**, via [`merge_chunk_reports`] — the reducer verifies the
//!   reports cover the manifest's chunk partition exactly (no gaps, no
//!   overlaps, no foreign campaigns) and reassembles the points.
//!
//! The contract pinned by the test-suite and `shard_probe --smoke`:
//! merged CSV/JSONL bytes equal the serial single-host bytes for *any*
//! assignment of chunks to shards, because chunk boundaries (and with
//! them warm-chain membership, hence pivot counts, hence rendered
//! `lp_iterations`) are fixed by the manifest's [`ChunkPolicy`]
//! partition, never by who executes the chunk. Basis-seeded execution
//! (the `seed` parameter) deliberately breaks that equality — it is the
//! shard layer's opt-in warm-transfer mode, measured by pivot counts —
//! so nothing on the merge path ever seeds.
//!
//! [`ChunkPolicy`]: socbuf_core::ChunkPolicy

use socbuf_core::wire::{CampaignManifest, ChunkReport, JsonValue, ManifestShape, WireError};
use socbuf_core::BasisSnapshot;

use crate::campaign::{BudgetSweep, CampaignPlan, LoadSweep, RandomCampaign, SweepError};
use crate::pool::WorkPool;
use crate::report::{point_wire_json, sweep_point_from_json, SweepKind, SweepReport};

/// Lowers a manifest to the chunk-execution core of the campaign it
/// describes. The plan borrows the manifest's architecture; everything
/// else is cloned in, so one manifest can be planned many times (once
/// per chunk request on a shard server).
///
/// # Errors
///
/// [`SweepError::BadConfig`] for unusable campaigns — the same
/// refusals [`CampaignManifest::new`] makes, re-checked because a
/// manifest may arrive over the wire.
pub fn plan_manifest<'a>(
    manifest: &'a CampaignManifest,
    pool: &WorkPool,
) -> Result<CampaignPlan<'a>, SweepError> {
    match &manifest.shape {
        ManifestShape::Budget {
            arch,
            budgets,
            warm_start,
        } => BudgetSweep {
            arch,
            budgets: budgets.clone(),
            sizing: manifest.config.clone(),
            simulate: None,
            warm_start: *warm_start,
        }
        .plan(pool),
        ManifestShape::Load {
            arch,
            budget,
            factors,
            warm_start,
        } => LoadSweep {
            arch,
            budget: *budget,
            factors: factors.clone(),
            sizing: manifest.config.clone(),
            simulate: None,
            warm_start: *warm_start,
        }
        .plan(pool),
        ManifestShape::Random {
            params,
            seeds,
            units_per_queue,
        } => RandomCampaign {
            params: params.clone(),
            seeds: seeds.clone(),
            units_per_queue: *units_per_queue,
            sizing: manifest.config.clone(),
            simulate: None,
        }
        .plan(pool),
    }
}

/// Runs the whole campaign locally — the serial reference a sharded
/// merge is byte-compared against.
///
/// # Errors
///
/// The lowest-index point failure, or [`SweepError::BadConfig`] for an
/// unusable campaign.
pub fn run_manifest(
    manifest: &CampaignManifest,
    pool: &WorkPool,
) -> Result<SweepReport, SweepError> {
    plan_manifest(manifest, pool)?.run(pool)
}

/// Executes one manifest chunk and wraps the points into the
/// chunk-tagged wire report a reducer can verify. `seed` warm-starts
/// the chunk's chain from an imported basis — never use it on the
/// byte-identity path (see the module docs).
///
/// # Errors
///
/// [`SweepError::BadConfig`] for a chunk index outside the manifest's
/// partition, else the lowest-index point failure within the chunk.
pub fn execute_manifest_chunk(
    manifest: &CampaignManifest,
    chunk: usize,
    pool: &WorkPool,
    seed: Option<BasisSnapshot>,
) -> Result<ChunkReport, SweepError> {
    let range = *manifest.chunks.get(chunk).ok_or_else(|| {
        SweepError::BadConfig(format!(
            "chunk {chunk} is out of range for a {}-chunk manifest",
            manifest.chunks.len()
        ))
    })?;
    let plan = plan_manifest(manifest, pool)?;
    let kind = plan.kind();
    let points = plan
        .execute_chunk(chunk, seed)?
        .iter()
        .map(|p| {
            JsonValue::parse(&point_wire_json(kind, p)).expect("point renderer emits valid JSON")
        })
        .collect();
    Ok(ChunkReport {
        config_hash: manifest.config_hash,
        kind: kind.tag().to_string(),
        chunk,
        start: range.start,
        end: range.end,
        points,
    })
}

/// A merge refusal: the chunk reports do not cover the manifest's
/// partition exactly, or one of them belongs to a different campaign.
#[derive(Debug)]
pub enum MergeError {
    /// A report's `config_hash` disagrees with the manifest's — it was
    /// produced for a different campaign (or a stale revision of this
    /// one).
    HashMismatch {
        /// The offending report's chunk index.
        chunk: usize,
        /// The manifest's hash.
        expected: u64,
        /// The report's hash.
        got: u64,
    },
    /// A report's kind tag disagrees with the manifest's shape.
    KindMismatch {
        /// The offending report's chunk index.
        chunk: usize,
        /// The manifest's kind tag.
        expected: &'static str,
        /// The report's kind tag.
        got: String,
    },
    /// No report covers this manifest chunk — a coverage gap.
    MissingChunk {
        /// The uncovered chunk index.
        chunk: usize,
    },
    /// Two reports claim the same chunk.
    DuplicateChunk {
        /// The doubly-covered chunk index.
        chunk: usize,
    },
    /// A report names a chunk the manifest doesn't have.
    UnknownChunk {
        /// The report's chunk index.
        chunk: usize,
        /// The manifest's chunk count.
        num_chunks: usize,
    },
    /// A report's item range disagrees with the manifest's partition.
    RangeMismatch {
        /// The offending report's chunk index.
        chunk: usize,
        /// The manifest's `(start, end)` for that chunk.
        expected: (usize, usize),
        /// The report's `(start, end)`.
        got: (usize, usize),
    },
    /// A report point failed to parse back into a [`SweepPoint`].
    ///
    /// [`SweepPoint`]: crate::report::SweepPoint
    BadPoint {
        /// The report's chunk index.
        chunk: usize,
        /// The underlying wire error.
        source: WireError,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::HashMismatch {
                chunk,
                expected,
                got,
            } => write!(
                f,
                "chunk {chunk}: config hash {got:016x} does not match the manifest's {expected:016x}"
            ),
            MergeError::KindMismatch {
                chunk,
                expected,
                got,
            } => write!(
                f,
                "chunk {chunk}: kind \"{got}\" does not match the manifest's \"{expected}\""
            ),
            MergeError::MissingChunk { chunk } => {
                write!(f, "coverage gap: no report for chunk {chunk}")
            }
            MergeError::DuplicateChunk { chunk } => {
                write!(f, "duplicate report for chunk {chunk}")
            }
            MergeError::UnknownChunk { chunk, num_chunks } => write!(
                f,
                "chunk {chunk} is out of range for a {num_chunks}-chunk manifest"
            ),
            MergeError::RangeMismatch {
                chunk,
                expected,
                got,
            } => write!(
                f,
                "chunk {chunk}: range {}..{} does not match the manifest's {}..{}",
                got.0, got.1, expected.0, expected.1
            ),
            MergeError::BadPoint { chunk, source } => {
                write!(f, "chunk {chunk}: bad point: {source}")
            }
        }
    }
}

impl std::error::Error for MergeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MergeError::BadPoint { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The reducer: verifies that `reports` cover the manifest's chunk
/// partition exactly — every chunk present once, each under the
/// manifest's config hash, kind, and item range — and reassembles the
/// points into a [`SweepReport`] whose CSV/JSONL renderings are
/// byte-identical to the serial single-host run (the frontier flag,
/// a global property no chunk can compute, is re-derived by the
/// report's own renderers).
///
/// Report order is irrelevant: chunks are slotted by index.
///
/// # Errors
///
/// The first violation found, reports scanned in the order given, then
/// gaps in chunk order.
pub fn merge_chunk_reports(
    manifest: &CampaignManifest,
    reports: &[ChunkReport],
) -> Result<SweepReport, MergeError> {
    let expected_kind = manifest.shape.kind_tag();
    let kind = SweepKind::from_tag(expected_kind).expect("manifest kind tags mirror SweepKind");
    let num_chunks = manifest.chunks.len();
    let mut slots: Vec<Option<&ChunkReport>> = vec![None; num_chunks];
    for r in reports {
        if r.chunk >= num_chunks {
            return Err(MergeError::UnknownChunk {
                chunk: r.chunk,
                num_chunks,
            });
        }
        if r.config_hash != manifest.config_hash {
            return Err(MergeError::HashMismatch {
                chunk: r.chunk,
                expected: manifest.config_hash,
                got: r.config_hash,
            });
        }
        if r.kind != expected_kind {
            return Err(MergeError::KindMismatch {
                chunk: r.chunk,
                expected: expected_kind,
                got: r.kind.clone(),
            });
        }
        let want = manifest.chunks[r.chunk];
        if r.start != want.start || r.end != want.end {
            return Err(MergeError::RangeMismatch {
                chunk: r.chunk,
                expected: (want.start, want.end),
                got: (r.start, r.end),
            });
        }
        if slots[r.chunk].is_some() {
            return Err(MergeError::DuplicateChunk { chunk: r.chunk });
        }
        slots[r.chunk] = Some(r);
    }
    let mut points = Vec::with_capacity(manifest.items());
    for (chunk, slot) in slots.iter().enumerate() {
        let r = slot.ok_or(MergeError::MissingChunk { chunk })?;
        for v in &r.points {
            points.push(
                sweep_point_from_json(v, kind)
                    .map_err(|source| MergeError::BadPoint { chunk, source })?,
            );
        }
    }
    Ok(SweepReport { kind, points })
}
