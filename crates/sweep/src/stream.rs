//! Streaming result pipeline: the sink abstraction campaigns emit
//! into, plus incremental CSV / JSON-lines writers that render one
//! point at a time while keeping only the Pareto frontier resident.
//!
//! The batch renderers ([`crate::SweepReport::to_csv`] /
//! [`crate::SweepReport::to_jsonl`]) are thin wrappers over
//! [`ReportStream`], so streamed bytes are byte-identical to batch
//! bytes **by construction** — there is exactly one rendering path.
//!
//! # Why a spool?
//!
//! Every rendered line carries a `frontier` flag, and the frontier is
//! a global property of the whole campaign: the last point observed
//! can evict the first from the frontier. No single pass can emit
//! final lines as points arrive. [`ReportStream`] therefore renders
//! each point immediately into a [`Spool`] (an append-only byte log —
//! in memory by default, a temp file for campaigns that outgrow RAM),
//! keeps only the streaming dominance staircase of
//! [`FrontierTracker`] resident, and on [`ReportStream::finish`]
//! replays the spool once, splicing each point's final flag between
//! its pre-rendered prefix and suffix. Resident state is the frontier
//! staircase (one entry per kept cost class), never the point set.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

use crate::report::{
    cost_of, csv_header, push_csv_prefix, push_csv_suffix, push_json_prefix, push_json_suffix,
    SweepKind, SweepPoint,
};

/// Receives campaign points one at a time, in work-list (index) order.
///
/// This is the seam the whole streaming refactor threads through: the
/// solve loop emits into a sink as each chunk completes, renderers and
/// reducers are sinks, and the batch APIs are sinks that collect.
/// Implementations may assume points arrive in strictly increasing
/// index order (the ordered executor and the streaming reducer both
/// guarantee it).
pub trait PointSink {
    /// Accepts the next point. An `Err` aborts the producing campaign.
    fn accept(&mut self, point: SweepPoint) -> io::Result<()>;
}

impl<T: PointSink + ?Sized> PointSink for &mut T {
    fn accept(&mut self, point: SweepPoint) -> io::Result<()> {
        (**self).accept(point)
    }
}

impl<T: PointSink + ?Sized> PointSink for Box<T> {
    fn accept(&mut self, point: SweepPoint) -> io::Result<()> {
        (**self).accept(point)
    }
}

/// The collecting sink: batch APIs are this sink plus a wrapper.
#[derive(Debug, Default)]
pub struct VecSink {
    points: Vec<SweepPoint>,
}

impl VecSink {
    /// An empty collector.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// The collected points, in arrival (= index) order.
    pub fn into_points(self) -> Vec<SweepPoint> {
        self.points
    }
}

impl PointSink for VecSink {
    fn accept(&mut self, point: SweepPoint) -> io::Result<()> {
        self.points.push(point);
        Ok(())
    }
}

/// Maps a float to an unsigned key whose `u64` order equals
/// [`f64::total_cmp`] order (sign bit flipped for non-negatives, all
/// bits flipped for negatives).
fn mono_bits(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// One cost class of the dominance staircase: the minimal loss seen at
/// this exact cost, and the first (lowest-index) point achieving it.
#[derive(Debug, Clone, Copy)]
struct ClassEntry {
    cost: f64,
    loss: f64,
    first_index: usize,
}

/// Streaming Pareto-dominance pass: observes `(cost, loss, index)`
/// triples in any order, keeping only the current frontier staircase
/// resident — one entry per cost class that is not (yet) dominated.
///
/// The staircase invariant is strict: walking entries in increasing
/// cost order (`total_cmp` order via monotone bits), the minimal
/// losses strictly decrease under plain `f64` comparison. Every entry
/// that survives to [`FrontierTracker::finish`] is therefore exactly a
/// *kept key* of the batch scan in
/// [`crate::SweepReport::pareto_frontier`], and membership of an
/// individual point reduces to a binary search over the kept keys
/// (see [`FrontierIndex::is_frontier`]).
#[derive(Debug, Default)]
pub struct FrontierTracker {
    /// Staircase keyed by monotone cost bits.
    classes: BTreeMap<u64, ClassEntry>,
    peak_classes: usize,
}

impl FrontierTracker {
    /// An empty staircase.
    pub fn new() -> FrontierTracker {
        FrontierTracker::default()
    }

    /// Entries currently resident (the frontier-so-far).
    pub fn resident(&self) -> usize {
        self.classes.len()
    }

    /// Largest number of entries ever resident.
    pub fn peak_resident(&self) -> usize {
        self.peak_classes
    }

    /// Observes one point. `NaN` / `+∞` losses can neither join the
    /// frontier nor dominate anything (`x < NaN` and `x < +∞` never
    /// keep a point in the batch scan that the staircase mirrors), so
    /// they are dropped immediately.
    pub fn observe(&mut self, cost: f64, loss: f64, index: usize) {
        if loss.is_nan() || loss == f64::INFINITY {
            return;
        }
        let key = mono_bits(cost);
        if let Some(e) = self.classes.get_mut(&key) {
            // Same cost class: keep the total_cmp-minimal loss and the
            // lowest index achieving exactly those bits.
            let (old, new) = (mono_bits(e.loss), mono_bits(loss));
            if new > old {
                return;
            }
            if new == old {
                e.first_index = e.first_index.min(index);
                return;
            }
            e.loss = loss;
            e.first_index = index;
        } else {
            // New cost class: dominated forever if any cheaper class
            // already reaches this loss (earlier minima only decrease).
            if let Some((_, pred)) = self.classes.range(..key).next_back() {
                if pred.loss <= loss {
                    return;
                }
            }
            self.classes.insert(
                key,
                ClassEntry {
                    cost,
                    loss,
                    first_index: index,
                },
            );
        }
        // Restore the strictly-decreasing invariant: costlier classes
        // that no longer improve on `loss` are dominated.
        let doomed: Vec<u64> = self
            .classes
            .range(key + 1..)
            .take_while(|(_, e)| e.loss >= loss)
            .map(|(k, _)| *k)
            .collect();
        for k in doomed {
            self.classes.remove(&k);
        }
        self.peak_classes = self.peak_classes.max(self.classes.len());
    }

    /// Freezes the staircase into a queryable frontier index.
    pub fn finish(self) -> FrontierIndex {
        FrontierIndex {
            kept: self
                .classes
                .into_iter()
                .map(|(cost_bits, e)| KeptKey {
                    cost_bits,
                    loss_bits: mono_bits(e.loss),
                    cost: e.cost,
                    loss: e.loss,
                    first_index: e.first_index,
                })
                .collect(),
            peak_classes: self.peak_classes,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct KeptKey {
    cost_bits: u64,
    loss_bits: u64,
    cost: f64,
    loss: f64,
    first_index: usize,
}

/// The frozen frontier: exactly the kept keys of the batch scan, in
/// increasing cost order.
#[derive(Debug)]
pub struct FrontierIndex {
    kept: Vec<KeptKey>,
    peak_classes: usize,
}

impl FrontierIndex {
    /// Largest number of staircase entries ever resident while the
    /// frontier was being tracked.
    pub fn peak_resident(&self) -> usize {
        self.peak_classes
    }

    /// Whether the point `(cost, loss, index)` is a frontier member,
    /// reproducing the batch tie rules exactly: a point is kept iff
    /// the greatest kept key at-or-before its sort position has
    /// `f64`-equal cost and loss (so `-0.0`/`+0.0` ties cross cost
    /// classes, as in the batch scan), or — for costs where `f64`
    /// equality fails, i.e. `NaN` — the point is bit-identical to the
    /// kept key and is its first achiever.
    pub fn is_frontier(&self, cost: f64, loss: f64, index: usize) -> bool {
        if loss.is_nan() || loss == f64::INFINITY {
            return false;
        }
        let pos = (mono_bits(cost), mono_bits(loss));
        let at = self
            .kept
            .partition_point(|k| (k.cost_bits, k.loss_bits) <= pos);
        let Some(k) = at.checked_sub(1).and_then(|i| self.kept.get(i)) else {
            return false;
        };
        (k.cost == cost && k.loss == loss)
            || ((k.cost_bits, k.loss_bits) == pos && k.first_index == index)
    }
}

/// Append-only byte log the streaming renderers park rendered point
/// fragments in until the frontier is known.
pub trait Spool: Send {
    /// Appends `buf` to the log.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Consumes the spool, returning a reader positioned at the start
    /// of the log.
    fn into_reader(self: Box<Self>) -> io::Result<Box<dyn Read + Send>>;
}

/// The default spool: an in-memory byte buffer. Holds every rendered
/// byte, so it bounds *points* resident (structs, allocations), not
/// output bytes — use [`FileSpool`] when the rendered output itself
/// outgrows RAM.
#[derive(Debug, Default)]
pub struct MemSpool {
    buf: Vec<u8>,
}

impl MemSpool {
    /// An empty in-memory spool.
    pub fn new() -> MemSpool {
        MemSpool::default()
    }
}

impl Spool for MemSpool {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.buf.extend_from_slice(buf);
        Ok(())
    }

    fn into_reader(self: Box<Self>) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(io::Cursor::new(self.buf)))
    }
}

/// A spool backed by an anonymous temp file, deleted when the spool
/// (or the reader it converts into) is dropped. This is what keeps a
/// 10⁵⁻⁶-point campaign's memory flat: rendered bytes go to disk, only
/// the frontier staircase stays resident.
#[derive(Debug)]
pub struct FileSpool {
    file: Option<std::fs::File>,
    path: Option<std::path::PathBuf>,
}

impl FileSpool {
    /// Creates a fresh spool file under [`std::env::temp_dir`].
    pub fn in_temp_dir() -> io::Result<FileSpool> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "socbuf-spool-{}-{}.bin",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        Ok(FileSpool {
            file: Some(file),
            path: Some(path),
        })
    }
}

impl Drop for FileSpool {
    fn drop(&mut self) {
        if let Some(path) = self.path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Reader half of a [`FileSpool`]; deletes the backing file on drop.
struct FileSpoolReader {
    file: std::fs::File,
    path: std::path::PathBuf,
}

impl Read for FileSpoolReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.file.read(buf)
    }
}

impl Drop for FileSpoolReader {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Spool for FileSpool {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.file
            .as_mut()
            .expect("spool file present until conversion")
            .write_all(buf)
    }

    fn into_reader(mut self: Box<Self>) -> io::Result<Box<dyn Read + Send>> {
        use std::io::Seek as _;
        let mut file = self.file.take().expect("spool converted once");
        let path = self.path.take().expect("spool converted once");
        file.flush()?;
        file.seek(io::SeekFrom::Start(0))?;
        Ok(Box::new(FileSpoolReader { file, path }))
    }
}

/// Which text form a [`ReportStream`] renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamFormat {
    Csv,
    Jsonl,
}

/// Counters a finished [`ReportStream`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Points rendered.
    pub points: usize,
    /// Bytes written to the output writer (header included).
    pub bytes_written: u64,
    /// Peak resident frontier-staircase entries — the renderer's whole
    /// per-point memory footprint besides the spool.
    pub peak_frontier_classes: usize,
}

/// Incremental CSV / JSON-lines report writer: one point rendered,
/// spooled, dropped. [`ReportStream::finish`] replays the spool once,
/// splicing each point's global `frontier` flag in, and produces bytes
/// identical to the batch renderers (which are wrappers over this).
pub struct ReportStream<W: Write> {
    kind: SweepKind,
    format: StreamFormat,
    out: W,
    spool: Box<dyn Spool>,
    tracker: FrontierTracker,
    points: usize,
}

/// Spool record framing: cost bits, loss bits, index, prefix length,
/// suffix length, then the two rendered fragments.
const RECORD_HEADER: usize = 8 + 8 + 8 + 4 + 4;

impl<W: Write> ReportStream<W> {
    /// A CSV writer over the default in-memory spool.
    pub fn csv(kind: SweepKind, out: W) -> ReportStream<W> {
        ReportStream::with_spool(kind, StreamFormat::Csv, out, Box::new(MemSpool::new()))
    }

    /// A JSON-lines writer over the default in-memory spool.
    pub fn jsonl(kind: SweepKind, out: W) -> ReportStream<W> {
        ReportStream::with_spool(kind, StreamFormat::Jsonl, out, Box::new(MemSpool::new()))
    }

    /// A CSV writer spooling to `spool` (e.g. a [`FileSpool`]).
    pub fn csv_spooled(kind: SweepKind, out: W, spool: Box<dyn Spool>) -> ReportStream<W> {
        ReportStream::with_spool(kind, StreamFormat::Csv, out, spool)
    }

    /// A JSON-lines writer spooling to `spool`.
    pub fn jsonl_spooled(kind: SweepKind, out: W, spool: Box<dyn Spool>) -> ReportStream<W> {
        ReportStream::with_spool(kind, StreamFormat::Jsonl, out, spool)
    }

    fn with_spool(
        kind: SweepKind,
        format: StreamFormat,
        out: W,
        spool: Box<dyn Spool>,
    ) -> ReportStream<W> {
        ReportStream {
            kind,
            format,
            out,
            spool,
            tracker: FrontierTracker::new(),
            points: 0,
        }
    }

    /// Renders one point into the spool and folds it into the frontier
    /// staircase. The point itself is not retained.
    pub fn push(&mut self, p: &SweepPoint) -> io::Result<()> {
        let cost = cost_of(self.kind, p);
        let loss = p.effective_loss();
        // Tie-breaking uses the point's position in the stream — the
        // same ordinal the batch scan uses — which equals `p.index`
        // for every campaign-produced report.
        let ordinal = self.points;
        self.tracker.observe(cost, loss, ordinal);

        let mut prefix = String::new();
        let mut suffix = String::new();
        match self.format {
            StreamFormat::Csv => {
                push_csv_prefix(&mut prefix, self.kind, p);
                push_csv_suffix(&mut suffix, p);
            }
            StreamFormat::Jsonl => {
                push_json_prefix(&mut prefix, self.kind, p);
                push_json_suffix(&mut suffix, p);
                suffix.push('\n');
            }
        }

        let mut header = [0u8; RECORD_HEADER];
        header[0..8].copy_from_slice(&cost.to_bits().to_le_bytes());
        header[8..16].copy_from_slice(&loss.to_bits().to_le_bytes());
        header[16..24].copy_from_slice(&(ordinal as u64).to_le_bytes());
        header[24..28].copy_from_slice(&(prefix.len() as u32).to_le_bytes());
        header[28..32].copy_from_slice(&(suffix.len() as u32).to_le_bytes());
        self.spool.write_all(&header)?;
        self.spool.write_all(prefix.as_bytes())?;
        self.spool.write_all(suffix.as_bytes())?;
        self.points += 1;
        Ok(())
    }

    /// Replays the spool with final frontier flags spliced in, flushes
    /// the output writer, and returns it with the stream counters.
    pub fn finish(mut self) -> io::Result<(W, StreamSummary)> {
        let index = self.tracker.finish();
        let mut bytes: u64 = 0;
        if self.format == StreamFormat::Csv {
            let header = csv_header();
            self.out.write_all(header.as_bytes())?;
            bytes += header.len() as u64;
        }
        let mut reader = self.spool.into_reader()?;
        let mut header = [0u8; RECORD_HEADER];
        let mut body = Vec::new();
        loop {
            if !read_exact_or_eof(&mut reader, &mut header)? {
                break;
            }
            let cost = f64::from_bits(u64::from_le_bytes(header[0..8].try_into().unwrap()));
            let loss = f64::from_bits(u64::from_le_bytes(header[8..16].try_into().unwrap()));
            let idx = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;
            let plen = u32::from_le_bytes(header[24..28].try_into().unwrap()) as usize;
            let slen = u32::from_le_bytes(header[28..32].try_into().unwrap()) as usize;
            body.resize(plen + slen, 0);
            reader.read_exact(&mut body)?;
            let flag: &[u8] = match (self.format, index.is_frontier(cost, loss, idx)) {
                (StreamFormat::Csv, true) => b"1",
                (StreamFormat::Csv, false) => b"0",
                (StreamFormat::Jsonl, true) => b",\"frontier\":true",
                (StreamFormat::Jsonl, false) => b",\"frontier\":false",
            };
            self.out.write_all(&body[..plen])?;
            self.out.write_all(flag)?;
            self.out.write_all(&body[plen..])?;
            bytes += (plen + slen + flag.len()) as u64;
        }
        self.out.flush()?;
        Ok((
            self.out,
            StreamSummary {
                points: self.points,
                bytes_written: bytes,
                peak_frontier_classes: index.peak_resident(),
            },
        ))
    }
}

impl<W: Write> PointSink for ReportStream<W> {
    fn accept(&mut self, point: SweepPoint) -> io::Result<()> {
        self.push(&point)
    }
}

/// Fills `buf` completely, or returns `Ok(false)` on a clean EOF at
/// the first byte (a torn record mid-buffer is an error).
fn read_exact_or_eof(reader: &mut dyn Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..])? {
            0 if filled == 0 => return Ok(false),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "spool ended mid-record",
                ))
            }
            n => filled += n,
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The batch scan from `SweepReport::pareto_frontier`, kept here as
    /// the executable specification the streaming pass must match.
    fn batch_frontier(points: &[(f64, f64)]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..points.len()).collect();
        order.sort_by(|&a, &b| {
            points[a]
                .0
                .total_cmp(&points[b].0)
                .then(points[a].1.total_cmp(&points[b].1))
                .then(a.cmp(&b))
        });
        let mut best = f64::INFINITY;
        let mut kept_key: Option<(f64, f64)> = None;
        let mut frontier = Vec::new();
        for i in order {
            let key = points[i];
            if key.1 < best {
                best = key.1;
                kept_key = Some(key);
                frontier.push(i);
            } else if kept_key == Some(key) {
                frontier.push(i);
            }
        }
        frontier.sort_unstable();
        frontier
    }

    fn streaming_frontier(points: &[(f64, f64)]) -> Vec<usize> {
        let mut t = FrontierTracker::new();
        for (i, &(c, l)) in points.iter().enumerate() {
            t.observe(c, l, i);
        }
        let index = t.finish();
        (0..points.len())
            .filter(|&i| index.is_frontier(points[i].0, points[i].1, i))
            .collect()
    }

    #[track_caller]
    fn check(points: &[(f64, f64)]) {
        assert_eq!(
            streaming_frontier(points),
            batch_frontier(points),
            "points {points:?}"
        );
    }

    #[test]
    fn matches_batch_on_plain_staircases() {
        check(&[(10.0, 0.5), (12.0, 0.5), (14.0, 0.2), (16.0, 0.3)]);
        check(&[(10.0, 0.5), (10.0, 0.5)]);
        check(&[(10.0, 0.2), (10.0, 0.5), (10.0, 0.5)]);
        check(&[]);
        check(&[(1.0, 1.0)]);
    }

    #[test]
    fn matches_batch_on_signed_zero_costs_and_losses() {
        // Batch keeps both the (-0.0, l1) and (+0.0, l2 < l1) keys —
        // they are distinct sort positions but f64-equal costs, so
        // later exact ties hit either. The staircase must reproduce
        // every combination.
        check(&[(-0.0, 0.5), (0.0, 0.2), (0.0, 0.2), (-0.0, 0.5)]);
        check(&[(-0.0, 0.5), (0.0, 0.5)]);
        check(&[(0.0, 0.5), (-0.0, 0.5)]);
        check(&[(-0.0, -0.0), (0.0, 0.0)]);
        check(&[(0.0, 0.0), (-0.0, -0.0)]);
        check(&[(-0.0, 0.0), (0.0, -0.0), (1.0, -0.0)]);
        check(&[(1.0, -0.0), (2.0, 0.0), (2.0, -0.0)]);
    }

    #[test]
    fn matches_batch_on_non_finite_coordinates() {
        let nan = f64::NAN;
        let inf = f64::INFINITY;
        check(&[(nan, 0.5), (1.0, 0.7), (nan, 0.5), (nan, 0.4)]);
        check(&[(1.0, nan), (2.0, 0.5), (3.0, inf)]);
        check(&[(inf, 0.1), (1.0, 0.5), (-inf, 0.9)]);
        check(&[(1.0, -inf), (2.0, -inf), (0.5, 3.0)]);
        check(&[(nan, 0.3), (nan, 0.3)]);
    }

    #[test]
    fn matches_batch_on_randomized_grids() {
        // Deterministic pseudo-random walk over a small value grid so
        // ties and dominations are frequent.
        let vals = [-0.0, 0.0, 0.5, 1.0, 2.0, f64::INFINITY, f64::NAN];
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut step = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as usize
        };
        for _ in 0..200 {
            let n = step() % 12;
            let pts: Vec<(f64, f64)> = (0..n)
                .map(|_| (vals[step() % vals.len()], vals[step() % vals.len()]))
                .collect();
            check(&pts);
        }
    }

    #[test]
    fn staircase_keeps_only_the_frontier_resident() {
        let mut t = FrontierTracker::new();
        // A long dominated plateau: every point after the first is
        // dominated, so the staircase never grows.
        t.observe(0.0, 0.0, 0);
        for i in 1..10_000 {
            t.observe(i as f64, 0.5, i);
        }
        assert_eq!(t.resident(), 1);
        assert_eq!(t.peak_resident(), 1);
    }

    #[test]
    fn file_spool_round_trips_and_cleans_up() {
        let mut spool = FileSpool::in_temp_dir().unwrap();
        let path = spool.path.clone().unwrap();
        Spool::write_all(&mut spool, b"hello spool").unwrap();
        assert!(path.exists());
        let mut reader = Box::new(spool).into_reader().unwrap();
        let mut got = String::new();
        reader.read_to_string(&mut got).unwrap();
        assert_eq!(got, "hello spool");
        drop(reader);
        assert!(!path.exists(), "reader drop removes the spool file");
    }
}
