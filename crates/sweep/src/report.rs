//! Structured sweep results: per-point records, Pareto-frontier
//! extraction, and deterministic CSV / JSON / JSON-lines rendering.
//!
//! Every float in every renderer goes through the workspace's one
//! shared number writer, [`socbuf_core::wire::push_f64`]: finite
//! values render via `f64`'s `Display` (shortest round-trip decimal),
//! so two reports with bit-identical numbers serialize to
//! byte-identical text — the property the determinism suite compares —
//! and **non-finite values render as `null`**, so a `NaN` loss from a
//! degenerate point can no longer corrupt a JSON-lines document with a
//! bare `NaN`/`inf` token (which is not JSON). CSV cells use the same
//! writer, so a non-finite float reads `null` there too.

use std::fmt::Write as _;

use socbuf_core::wire::push_f64;

/// Which campaign produced a report (decides the Pareto cost axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepKind {
    /// Budget grid on one architecture: cost = budget.
    Budget,
    /// Load-factor grid on one architecture: cost = −load factor (more
    /// load carried at equal loss is better).
    Load,
    /// Random-architecture fan-out: cost = −total offered rate.
    Random,
}

impl SweepKind {
    /// Stable lowercase tag used in rendered output.
    pub fn tag(&self) -> &'static str {
        match self {
            SweepKind::Budget => "budget",
            SweepKind::Load => "load",
            SweepKind::Random => "random",
        }
    }

    /// Parses the stable tag back ([`SweepKind::tag`]'s inverse);
    /// `None` for unknown tags.
    pub fn from_tag(tag: &str) -> Option<SweepKind> {
        match tag {
            "budget" => Some(SweepKind::Budget),
            "load" => Some(SweepKind::Load),
            "random" => Some(SweepKind::Random),
            _ => None,
        }
    }
}

/// Simulated policy-comparison summary attached to a point when the
/// campaign also re-simulates (the paper's step 4).
#[derive(Debug, Clone, PartialEq)]
pub struct SimSummary {
    /// Constant-sizing baseline loss (averaged over replications).
    pub pre_loss: f64,
    /// CTMDP-sized loss.
    pub post_loss: f64,
    /// Timeout-policy loss.
    pub timeout_loss: f64,
    /// Relative loss reduction vs the constant baseline.
    pub improvement_vs_pre: f64,
}

/// One sizing problem solved by a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Position in the campaign's work list (also the tie-breaking key
    /// everywhere, so reports are independent of scheduling).
    pub index: usize,
    /// Total buffer budget of this point.
    pub budget: usize,
    /// λ multiplier relative to the nominal architecture (`1` when the
    /// campaign does not scale load).
    pub load_factor: f64,
    /// Seed of the random architecture (random campaigns only).
    pub arch_seed: Option<u64>,
    /// Queue count of the sized architecture.
    pub queues: usize,
    /// Total offered traffic (Σ λ) of the sized architecture.
    pub offered_rate: f64,
    /// LP-predicted weighted loss rate.
    pub predicted_loss: f64,
    /// Shadow price of the buffer-budget row (≤ 0).
    pub shadow_price: f64,
    /// Whether the LP budget row had to be relaxed.
    pub budget_row_relaxed: bool,
    /// Simplex pivots used by the joint LP. **Trace-only**: carried on
    /// the struct for in-process diagnostics (bench probes, serve
    /// traces, adaptive re-chunking) but excluded from every rendered
    /// form — CSV, JSONL, chunk wire — because pivot counts vary with
    /// warm-start seeding and chunk boundaries while the solution does
    /// not. Keeping them out of the bytes is what lets re-chunked and
    /// seeded executions render byte-identically to the defaults.
    pub lp_iterations: usize,
    /// Integer buffer allocation (queue order).
    pub allocation: Vec<usize>,
    /// Simulation summary, when the campaign re-simulated the point.
    pub sim: Option<SimSummary>,
}

impl SweepPoint {
    /// Loss coordinate used for frontier extraction: the simulated
    /// post-sizing loss when the campaign simulated, else the
    /// LP-predicted loss rate.
    ///
    /// The distinction matters for budget sweeps: the joint LP's
    /// occupancy-budget row is either slack or infeasible-and-relaxed
    /// across almost the whole budget axis, so the *predicted* loss is
    /// nearly budget-flat by construction — the budget buys losses back
    /// through the translated integer allocation, which only the
    /// re-simulation (the paper's step 4) observes.
    pub fn effective_loss(&self) -> f64 {
        match &self.sim {
            Some(s) => s.post_loss,
            None => self.predicted_loss,
        }
    }
}

/// A campaign's complete, index-ordered result set.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Which campaign shape produced the points.
    pub kind: SweepKind,
    /// One record per work item, in work-list order.
    pub points: Vec<SweepPoint>,
}

/// Pareto cost of a point under `kind`: lower is better at equal loss.
pub(crate) fn cost_of(kind: SweepKind, p: &SweepPoint) -> f64 {
    match kind {
        SweepKind::Budget => p.budget as f64,
        SweepKind::Load => -p.load_factor,
        SweepKind::Random => -p.offered_rate,
    }
}

impl SweepReport {
    /// Indices of the Pareto-efficient points of the loss-vs-cost
    /// trade-off, in increasing cost order.
    ///
    /// A point is kept iff no other point has both lower-or-equal cost
    /// and lower-or-equal [`SweepPoint::effective_loss`] (with at least
    /// one strict).
    ///
    /// **Tie rule:** points with *exactly* equal (bitwise `f64`-equal)
    /// cost and effective loss dominate each other only vacuously, so
    /// **all** of them are flagged as frontier members, ordered by
    /// index. (Before this rule only the lowest-index duplicate was
    /// kept, which made the rendered `frontier` column silently hide
    /// equivalent allocations — two budgets reaching the same loss are
    /// both worth reporting.) Ties at *different* costs still resolve
    /// in favor of the cheaper point.
    ///
    /// The extraction runs the streaming dominance pass of
    /// [`crate::stream::FrontierTracker`] — the same one the
    /// incremental renderers use, so batch and streamed flags cannot
    /// diverge — which keeps only the current frontier staircase
    /// resident and reproduces the historical sort-and-scan exactly
    /// (the scan survives as the executable specification in the
    /// `stream` module's tests). Membership depends only on each
    /// point's `(cost, loss, position)`, so it inherits the campaign's
    /// scheduling independence.
    pub fn pareto_frontier(&self) -> Vec<usize> {
        let mut tracker = crate::stream::FrontierTracker::new();
        for (i, p) in self.points.iter().enumerate() {
            tracker.observe(cost_of(self.kind, p), p.effective_loss(), i);
        }
        let index = tracker.finish();
        let mut frontier: Vec<usize> = (0..self.points.len())
            .filter(|&i| {
                let p = &self.points[i];
                index.is_frontier(cost_of(self.kind, p), p.effective_loss(), i)
            })
            .collect();
        // The historical scan reported members in kept order:
        // increasing cost, then loss, then position.
        frontier.sort_by(|&a, &b| {
            let (pa, pb) = (&self.points[a], &self.points[b]);
            cost_of(self.kind, pa)
                .total_cmp(&cost_of(self.kind, pb))
                .then(pa.effective_loss().total_cmp(&pb.effective_loss()))
                .then(a.cmp(&b))
        });
        frontier
    }

    /// CSV rendering: header plus one line per point, allocation joined
    /// with `|`, empty cells for absent optionals, `frontier` flagging
    /// membership in [`SweepReport::pareto_frontier`]. Floats go
    /// through the shared wire writer, so non-finite values read
    /// `null` instead of `NaN`/`inf`.
    ///
    /// A thin wrapper over the incremental
    /// [`crate::stream::ReportStream`] writer, so batch and streamed
    /// CSV bytes are identical by construction.
    pub fn to_csv(&self) -> String {
        let mut stream = crate::stream::ReportStream::csv(self.kind, Vec::new());
        for p in &self.points {
            stream.push(p).expect("in-memory stream cannot fail");
        }
        let (buf, _) = stream.finish().expect("in-memory stream cannot fail");
        String::from_utf8(buf).expect("renderers emit UTF-8")
    }

    /// Appends one point as a self-contained JSON object — the shared
    /// body of [`SweepReport::to_jsonl`] and [`SweepReport::to_json`]
    /// (and therefore of the `socbuf-serve` `sweep` response).
    fn push_point_json(&self, out: &mut String, p: &SweepPoint, frontier: bool) {
        push_point_json(out, self.kind, p, Some(frontier));
    }

    /// JSON-lines rendering: one self-contained object per point. Every
    /// line parses as valid JSON even when a point carries non-finite
    /// floats (they render as `null`).
    ///
    /// A thin wrapper over the incremental
    /// [`crate::stream::ReportStream`] writer, so batch and streamed
    /// JSONL bytes are identical by construction.
    pub fn to_jsonl(&self) -> String {
        let mut stream = crate::stream::ReportStream::jsonl(self.kind, Vec::new());
        for p in &self.points {
            stream.push(p).expect("in-memory stream cannot fail");
        }
        let (buf, _) = stream.finish().expect("in-memory stream cannot fail");
        String::from_utf8(buf).expect("renderers emit UTF-8")
    }

    /// Single-document rendering: the whole report as one JSON object,
    /// `{"kind":…,"points":[…]}`, with the same per-point objects as
    /// [`SweepReport::to_jsonl`]. This is what a `socbuf-serve` `sweep`
    /// response embeds.
    pub fn to_json(&self) -> String {
        let on_frontier = self.frontier_mask();
        let mut out = String::from("{\"kind\":\"");
        out.push_str(self.kind.tag());
        out.push_str("\",\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            self.push_point_json(&mut out, p, on_frontier[i]);
        }
        out.push_str("]}");
        out
    }

    /// A fixed-width text table of the Pareto frontier (budget, loss,
    /// shadow price per frontier point) — what the frontier example
    /// prints. The `loss` column is [`SweepPoint::effective_loss`].
    pub fn frontier_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>14} {:>14} {:>10}",
            "point", "budget", "load_factor", "loss", "shadow"
        );
        for i in self.pareto_frontier() {
            let p = &self.points[i];
            let _ = writeln!(
                out,
                "{:>6} {:>8} {:>14.3} {:>14.6e} {:>10.4}",
                p.index,
                p.budget,
                p.load_factor,
                p.effective_loss(),
                p.shadow_price
            );
        }
        out
    }

    fn frontier_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.points.len()];
        for i in self.pareto_frontier() {
            mask[i] = true;
        }
        mask
    }
}

/// Renders `v` through the shared wire-format number writer
/// ([`socbuf_core::wire::push_f64`]): shortest round-trip decimal for
/// finite values, `null` for non-finite ones. One writer serves every
/// renderer here *and* the `socbuf-serve` codec, so "what does a float
/// look like on the wire" has exactly one answer.
fn num(v: f64) -> String {
    let mut s = String::new();
    push_f64(&mut s, v);
    s
}

fn join(xs: &[usize], sep: &str) -> String {
    let mut s = String::new();
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push_str(sep);
        }
        let _ = write!(s, "{x}");
    }
    s
}

/// The CSV header line shared by the batch and streaming renderers.
pub(crate) fn csv_header() -> &'static str {
    "index,kind,budget,load_factor,arch_seed,queues,offered_rate,predicted_loss,\
     shadow_price,budget_row_relaxed,allocation,frontier,\
     pre_loss,post_loss,timeout_loss,improvement_vs_pre\n"
}

/// Appends the CSV cells preceding the `frontier` flag (trailing comma
/// included). Split from [`push_csv_suffix`] so the streaming renderer
/// can spool both halves before the global frontier is known.
pub(crate) fn push_csv_prefix(out: &mut String, kind: SweepKind, p: &SweepPoint) {
    let seed = p.arch_seed.map(|s| s.to_string()).unwrap_or_default();
    let alloc = join(&p.allocation, "|");
    let _ = write!(
        out,
        "{},{},{},{},{},{},{},{},{},{},{},",
        p.index,
        kind.tag(),
        p.budget,
        num(p.load_factor),
        seed,
        p.queues,
        num(p.offered_rate),
        num(p.predicted_loss),
        num(p.shadow_price),
        p.budget_row_relaxed,
        alloc,
    );
}

/// Appends the CSV cells following the `frontier` flag (the simulation
/// columns, empty when absent), newline included.
pub(crate) fn push_csv_suffix(out: &mut String, p: &SweepPoint) {
    match &p.sim {
        Some(s) => {
            let _ = writeln!(
                out,
                ",{},{},{},{}",
                num(s.pre_loss),
                num(s.post_loss),
                num(s.timeout_loss),
                num(s.improvement_vs_pre)
            );
        }
        None => out.push_str(",,,,\n"),
    }
}

/// Appends the JSON object fields preceding the optional `frontier`
/// flag — everything through the `allocation` array, unterminated.
pub(crate) fn push_json_prefix(out: &mut String, kind: SweepKind, p: &SweepPoint) {
    let _ = write!(
        out,
        "{{\"index\":{},\"kind\":\"{}\",\"budget\":{},\"load_factor\":{},",
        p.index,
        kind.tag(),
        p.budget,
        num(p.load_factor)
    );
    match p.arch_seed {
        Some(s) => {
            let _ = write!(out, "\"arch_seed\":{s},");
        }
        None => out.push_str("\"arch_seed\":null,"),
    }
    let _ = write!(
        out,
        "\"queues\":{},\"offered_rate\":{},\"predicted_loss\":{},\
         \"shadow_price\":{},\"budget_row_relaxed\":{},\
         \"allocation\":[{}]",
        p.queues,
        num(p.offered_rate),
        num(p.predicted_loss),
        num(p.shadow_price),
        p.budget_row_relaxed,
        join(&p.allocation, ","),
    );
}

/// Appends the JSON object fields following the optional `frontier`
/// flag (the `sim` field) and closes the object.
pub(crate) fn push_json_suffix(out: &mut String, p: &SweepPoint) {
    match &p.sim {
        Some(s) => {
            let _ = write!(
                out,
                ",\"sim\":{{\"pre_loss\":{},\"post_loss\":{},\"timeout_loss\":{},\
                 \"improvement_vs_pre\":{}}}}}",
                num(s.pre_loss),
                num(s.post_loss),
                num(s.timeout_loss),
                num(s.improvement_vs_pre)
            );
        }
        None => out.push_str(",\"sim\":null}"),
    }
}

/// Appends one point as a self-contained JSON object. `frontier: None`
/// omits the flag entirely — the form chunk reports carry, because the
/// frontier is a global property of the merged report that no single
/// chunk can know; the reducer re-renders with `Some(flag)` computed
/// over the full point set.
pub(crate) fn push_point_json(
    out: &mut String,
    kind: SweepKind,
    p: &SweepPoint,
    frontier: Option<bool>,
) {
    push_json_prefix(out, kind, p);
    if let Some(flag) = frontier {
        let _ = write!(out, ",\"frontier\":{flag}");
    }
    push_json_suffix(out, p);
}

/// Renders one point in the frontier-free wire form chunk reports
/// carry (see [`push_point_json`]).
pub(crate) fn point_wire_json(kind: SweepKind, p: &SweepPoint) -> String {
    let mut out = String::new();
    push_point_json(&mut out, kind, p, None);
    out
}

/// Parses a point object (either form — a stray `frontier` flag is
/// tolerated here and simply dropped; the chunk-report codec rejects it
/// earlier, at the framing layer, where it is actually illegal).
///
/// The parse inverts [`push_point_json`] exactly: every float survives
/// bit-for-bit (shortest-round-trip rendering), `null` floats come back
/// as `NaN`, so `render ∘ parse ∘ render = render` — the identity the
/// byte-identical merge rests on. `lp_iterations` is not on the wire
/// (it is trace-only; see [`SweepPoint::lp_iterations`]), so parsed
/// points carry a zero count and payloads from the era that rendered
/// it are rejected by name.
pub(crate) fn sweep_point_from_json(
    v: &socbuf_core::wire::JsonValue,
    expect_kind: SweepKind,
) -> Result<SweepPoint, socbuf_core::wire::WireError> {
    use socbuf_core::wire::{JsonValue, WireError};
    let fields = v.obj("point")?;
    for (k, _) in fields {
        if !matches!(
            k.as_str(),
            "index"
                | "kind"
                | "budget"
                | "load_factor"
                | "arch_seed"
                | "queues"
                | "offered_rate"
                | "predicted_loss"
                | "shadow_price"
                | "budget_row_relaxed"
                | "allocation"
                | "frontier"
                | "sim"
        ) {
            return Err(WireError::Schema(format!("point: unknown field \"{k}\"")));
        }
    }
    let req = |key: &str| {
        v.get(key)
            .ok_or_else(|| WireError::Schema(format!("point: missing field \"{key}\"")))
    };
    let kind = req("kind")?.str("kind")?;
    if SweepKind::from_tag(kind) != Some(expect_kind) {
        return Err(WireError::Schema(format!(
            "point: kind \"{kind}\" does not match the campaign kind \"{}\"",
            expect_kind.tag()
        )));
    }
    let arch_seed = match req("arch_seed")? {
        JsonValue::Null => None,
        other => Some(other.u64("arch_seed")?),
    };
    let mut allocation = Vec::new();
    for u in req("allocation")?.arr("allocation")? {
        allocation.push(u.usize("allocation unit")?);
    }
    let sim = match req("sim")? {
        JsonValue::Null => None,
        s => {
            for (k, _) in s.obj("sim")? {
                if !matches!(
                    k.as_str(),
                    "pre_loss" | "post_loss" | "timeout_loss" | "improvement_vs_pre"
                ) {
                    return Err(WireError::Schema(format!("sim: unknown field \"{k}\"")));
                }
            }
            let sim_req = |key: &str| {
                s.get(key)
                    .ok_or_else(|| WireError::Schema(format!("sim: missing field \"{key}\"")))
            };
            Some(SimSummary {
                pre_loss: sim_req("pre_loss")?.f64("pre_loss")?,
                post_loss: sim_req("post_loss")?.f64("post_loss")?,
                timeout_loss: sim_req("timeout_loss")?.f64("timeout_loss")?,
                improvement_vs_pre: sim_req("improvement_vs_pre")?.f64("improvement_vs_pre")?,
            })
        }
    };
    Ok(SweepPoint {
        index: req("index")?.usize("index")?,
        budget: req("budget")?.usize("budget")?,
        load_factor: req("load_factor")?.f64("load_factor")?,
        arch_seed,
        queues: req("queues")?.usize("queues")?,
        offered_rate: req("offered_rate")?.f64("offered_rate")?,
        predicted_loss: req("predicted_loss")?.f64("predicted_loss")?,
        shadow_price: req("shadow_price")?.f64("shadow_price")?,
        budget_row_relaxed: req("budget_row_relaxed")?.bool("budget_row_relaxed")?,
        lp_iterations: 0,
        allocation,
        sim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(index: usize, budget: usize, loss: f64) -> SweepPoint {
        SweepPoint {
            index,
            budget,
            load_factor: 1.0,
            arch_seed: None,
            queues: 3,
            offered_rate: 0.5,
            predicted_loss: loss,
            shadow_price: -0.01,
            budget_row_relaxed: false,
            lp_iterations: 10,
            allocation: vec![1, 1, budget - 2],
            sim: None,
        }
    }

    fn report(points: Vec<SweepPoint>) -> SweepReport {
        SweepReport {
            kind: SweepKind::Budget,
            points,
        }
    }

    #[test]
    fn frontier_keeps_only_strict_improvements() {
        // budget 10 → loss 0.5, 12 → 0.5 (no better), 14 → 0.2, 16 → 0.3
        // (worse than 14 at higher cost).
        let r = report(vec![
            point(0, 10, 0.5),
            point(1, 12, 0.5),
            point(2, 14, 0.2),
            point(3, 16, 0.3),
        ]);
        assert_eq!(r.pareto_frontier(), vec![0, 2]);
    }

    #[test]
    fn frontier_flags_all_exact_cost_loss_ties() {
        // Identical (cost, loss): equally efficient, both reported.
        let r = report(vec![point(0, 10, 0.5), point(1, 10, 0.5)]);
        assert_eq!(r.pareto_frontier(), vec![0, 1]);
        // Same loss at higher cost is still dominated, tie or not.
        let r = report(vec![point(0, 10, 0.5), point(1, 12, 0.5)]);
        assert_eq!(r.pareto_frontier(), vec![0]);
        // A duplicate of a *dominated* point stays off the frontier.
        let r = report(vec![
            point(0, 10, 0.2),
            point(1, 10, 0.5),
            point(2, 10, 0.5),
        ]);
        assert_eq!(r.pareto_frontier(), vec![0]);
    }

    #[test]
    fn load_kind_prefers_higher_factors() {
        let mut a = point(0, 10, 0.1);
        a.load_factor = 1.0;
        let mut b = point(1, 10, 0.1);
        b.load_factor = 2.0;
        let r = SweepReport {
            kind: SweepKind::Load,
            points: vec![a, b],
        };
        // Factor 2 at equal loss dominates factor 1.
        assert_eq!(r.pareto_frontier(), vec![1]);
    }

    #[test]
    fn csv_shape_and_optional_cells() {
        let mut p1 = point(0, 10, 0.5);
        p1.sim = Some(SimSummary {
            pre_loss: 9.0,
            post_loss: 4.5,
            timeout_loss: 7.0,
            improvement_vs_pre: 0.5,
        });
        let p2 = point(1, 12, 0.4);
        let r = report(vec![p1, p2]);
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        let cols = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        }
        assert!(lines[1].contains("1|1|8"));
        assert!(lines[1].ends_with("9,4.5,7,0.5"));
        assert!(lines[2].ends_with(",,,,"));
    }

    #[test]
    fn jsonl_is_one_object_per_point() {
        let mut p = point(0, 10, 0.5);
        p.arch_seed = Some(42);
        let r = report(vec![p, point(1, 12, 0.25)]);
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"index\":0,"));
        assert!(lines[0].contains("\"arch_seed\":42"));
        assert!(lines[0].contains("\"allocation\":[1,1,8]"));
        assert!(lines[1].contains("\"arch_seed\":null"));
        assert!(lines[1].contains("\"sim\":null"));
        for line in lines {
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn non_finite_floats_render_as_null_in_every_renderer() {
        // Regression: these used to render bare as `NaN` / `inf` /
        // `-inf` via Display, making the JSONL document unparseable.
        let mut p = point(0, 10, f64::NAN);
        p.shadow_price = f64::NEG_INFINITY;
        p.offered_rate = f64::INFINITY;
        p.sim = Some(SimSummary {
            pre_loss: 1.0,
            post_loss: f64::NAN,
            timeout_loss: f64::INFINITY,
            improvement_vs_pre: f64::NAN,
        });
        let r = report(vec![p, point(1, 12, 0.25)]);

        let jsonl = r.to_jsonl();
        for bad in ["NaN", "inf"] {
            assert!(!jsonl.contains(bad), "bare {bad} leaked into JSONL");
        }
        for line in jsonl.lines() {
            let parsed = socbuf_core::wire::JsonValue::parse(line)
                .expect("every JSONL line must be valid JSON");
            assert!(parsed.get("predicted_loss").is_some());
        }
        let first = socbuf_core::wire::JsonValue::parse(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(
            first.get("predicted_loss"),
            Some(&socbuf_core::wire::JsonValue::Null)
        );
        assert_eq!(
            first.get("sim").unwrap().get("timeout_loss"),
            Some(&socbuf_core::wire::JsonValue::Null)
        );

        // The single-document rendering parses too, with both points.
        let doc = socbuf_core::wire::JsonValue::parse(&r.to_json()).unwrap();
        assert_eq!(doc.get("points").unwrap().arr("points").unwrap().len(), 2);

        // CSV cells use the same writer.
        let csv = r.to_csv();
        assert!(!csv.contains("NaN") && !csv.contains("inf"));
        assert!(csv.lines().nth(1).unwrap().contains("null"));
    }

    #[test]
    fn to_json_wraps_the_same_point_objects_as_jsonl() {
        let mut p = point(0, 10, 0.5);
        p.arch_seed = Some(42);
        let r = report(vec![p, point(1, 12, 0.25)]);
        let jsonl = r.to_jsonl();
        let expected = format!(
            "{{\"kind\":\"budget\",\"points\":[{}]}}",
            jsonl.lines().collect::<Vec<_>>().join(",")
        );
        assert_eq!(r.to_json(), expected);
    }

    #[test]
    fn frontier_table_lists_frontier_points() {
        let r = report(vec![point(0, 10, 0.5), point(1, 14, 0.2)]);
        let table = r.frontier_table();
        assert!(table.contains("budget"));
        assert_eq!(table.lines().count(), 3);
    }

    #[test]
    fn simulated_points_use_post_loss_as_the_frontier_coordinate() {
        // Predicted losses are budget-flat (the LP's budget row is slack
        // or relaxed almost everywhere); the simulated post-sizing loss
        // is what actually descends. The frontier must follow the
        // latter when it is available.
        let mut cheap = point(0, 10, 0.3);
        cheap.sim = Some(SimSummary {
            pre_loss: 20.0,
            post_loss: 9.0,
            timeout_loss: 15.0,
            improvement_vs_pre: 0.55,
        });
        let mut rich = point(1, 20, 0.3); // same predicted loss…
        rich.sim = Some(SimSummary {
            pre_loss: 20.0,
            post_loss: 4.0, // …but simulation shows the budget paying off
            timeout_loss: 15.0,
            improvement_vs_pre: 0.8,
        });
        let r = report(vec![cheap, rich]);
        assert_eq!(r.pareto_frontier(), vec![0, 1]);
        assert_eq!(r.points[1].effective_loss(), 4.0);
    }
}
