//! The campaign layer: sweep-shaped workloads over the sizing pipeline.
//!
//! Each campaign expands into an explicit, index-ordered work list
//! (budget grid, load-factor grid, or architecture seeds), fans the
//! items out over a [`WorkPool`], and reduces the per-item
//! [`SweepPoint`]s back into a [`SweepReport`] by slot. Nothing in a
//! point depends on scheduling: sizing is deterministic, simulation
//! seeds derive from replication indices, and error selection (when
//! several points fail) picks the lowest index.

use socbuf_core::wire::{CampaignManifest, ManifestShape};
use socbuf_core::{
    evaluate_policies_sized, evaluate_policies_with, size_buffers, BasisSnapshot, ChunkPolicy,
    CoreError, PipelineConfig, ReplicationPool, SerialPool, SizingConfig, SizingOutcome,
    SolveContext,
};
use socbuf_sim::SimReport;
use socbuf_soc::templates::{random_architecture, RandomArchParams};
use socbuf_soc::{Architecture, SocError};

use crate::pool::WorkPool;
use crate::report::{SimSummary, SweepKind, SweepPoint, SweepReport};
use crate::stream::{PointSink, VecSink};

/// Number of consecutive work items a warm-start chain spans in a
/// budget or load campaign — the length of
/// [`ChunkPolicy::WARM_CHAIN`], the workspace's shared scheduling
/// policy. Chunk boundaries are fixed by **item index** — chunk `c`
/// always covers items `c·WARM_CHUNK .. (c+1)·WARM_CHUNK` — never by
/// worker count (or shard assignment), so the chain each item
/// participates in (and therefore its solver path, pivot count and
/// rendered bytes) is identical whether the campaign runs on 1, 2 or 8
/// workers, or split across shard processes. Workers claim whole
/// chunks; within a chunk the items run in index order sharing one
/// [`SolveContext`], the first item cold (bit identical to
/// [`size_buffers`]) and the rest warm-started from their
/// predecessor's basis.
///
/// The value trades warm-chain length against scheduling granularity: a
/// campaign of `n` items exposes `⌈n / WARM_CHUNK⌉` parallel units.
pub const WARM_CHUNK: usize = ChunkPolicy::WARM_CHAIN.chunk_len();

/// Failure of one campaign work item (the lowest-index failure when
/// several items fail).
#[derive(Debug)]
pub enum SweepError {
    /// A sizing/simulation failure at one point.
    Point {
        /// Work-list index of the failing point.
        index: usize,
        /// Human-readable description of the point (budget, factor, seed).
        label: String,
        /// The underlying pipeline error.
        source: CoreError,
    },
    /// Building or rescaling an architecture failed.
    Arch {
        /// Work-list index of the failing point.
        index: usize,
        /// The underlying architecture error.
        source: SocError,
    },
    /// The campaign definition itself is unusable.
    BadConfig(String),
    /// Writing a point into the campaign's [`PointSink`] failed.
    Sink {
        /// The underlying I/O error reported by the sink.
        source: std::io::Error,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Point {
                index,
                label,
                source,
            } => {
                write!(f, "sweep point {index} ({label}) failed: {source}")
            }
            SweepError::Arch { index, source } => {
                write!(f, "sweep point {index}: architecture error: {source}")
            }
            SweepError::BadConfig(msg) => write!(f, "bad sweep config: {msg}"),
            SweepError::Sink { source } => write!(f, "sweep sink failed: {source}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Point { source, .. } => Some(source),
            SweepError::Arch { source, .. } => Some(source),
            SweepError::BadConfig(_) => None,
            SweepError::Sink { source } => Some(source),
        }
    }
}

/// The pipeline hook: simulation replications of `evaluate_policies`
/// run through the same pool as the sweep's points.
impl ReplicationPool for WorkPool {
    fn run_replications(
        &self,
        n: usize,
        f: &(dyn Fn(usize) -> SimReport + Sync),
    ) -> Vec<SimReport> {
        self.run(n, f)
    }
}

/// Sizes one architecture at one budget and records it as a point.
/// When `simulate` is set, the point additionally runs the paper's
/// three-policy comparison (replications serial here — the *points* are
/// the parallel axis; [`parallel_policy_comparison`] is the entry point
/// for parallelizing a single comparison instead).
fn size_point(
    arch: &Architecture,
    index: usize,
    budget: usize,
    load_factor: f64,
    arch_seed: Option<u64>,
    sizing: &SizingConfig,
    simulate: Option<&PipelineConfig>,
) -> Result<SweepPoint, SweepError> {
    let label = match arch_seed {
        Some(s) => format!("seed={s} budget={budget}"),
        None => format!("budget={budget} load={load_factor}"),
    };
    let fail = |source| SweepError::Point {
        index,
        label: label.clone(),
        source,
    };
    let (outcome, sim) = match simulate {
        None => (size_buffers(arch, budget, sizing).map_err(fail)?, None),
        Some(pipeline) => {
            let mut pipeline = pipeline.clone();
            pipeline.sizing = sizing.clone();
            let cmp = evaluate_policies_with(arch, budget, &pipeline, &SerialPool).map_err(fail)?;
            let sim = SimSummary {
                pre_loss: cmp.pre.total_lost,
                post_loss: cmp.post.total_lost,
                timeout_loss: cmp.timeout.total_lost,
                improvement_vs_pre: cmp.improvement_vs_pre(),
            };
            (cmp.outcome, Some(sim))
        }
    };
    Ok(assemble_point(
        arch,
        index,
        budget,
        load_factor,
        arch_seed,
        &outcome,
        sim,
    ))
}

/// [`size_point`]'s warm-chained twin: the sizing comes from the
/// chunk's shared [`SolveContext`] instead of a cold [`size_buffers`]
/// call, and the optional re-simulation reuses that outcome through
/// [`evaluate_policies_sized`]. Warm starts change pivot counts and
/// wall time, never statuses or (beyond solver precision) objectives —
/// the context falls back to a cold solve whenever its basis is stale.
fn warm_size_point(
    ctx: &mut SolveContext,
    arch: &Architecture,
    index: usize,
    budget: usize,
    load_factor: f64,
    sizing: &SizingConfig,
    simulate: Option<&PipelineConfig>,
) -> Result<SweepPoint, SweepError> {
    let label = format!("budget={budget} load={load_factor}");
    let fail = |source| SweepError::Point {
        index,
        label: label.clone(),
        source,
    };
    let outcome = ctx
        .size_buffers_scaled(arch, load_factor, budget)
        .map_err(fail)?;
    let (outcome, sim) = match simulate {
        None => (outcome, None),
        Some(pipeline) => {
            let mut pipeline = pipeline.clone();
            pipeline.sizing = sizing.clone();
            let cmp = evaluate_policies_sized(arch, budget, &pipeline, outcome, &SerialPool)
                .map_err(fail)?;
            let sim = SimSummary {
                pre_loss: cmp.pre.total_lost,
                post_loss: cmp.post.total_lost,
                timeout_loss: cmp.timeout.total_lost,
                improvement_vs_pre: cmp.improvement_vs_pre(),
            };
            (cmp.outcome, Some(sim))
        }
    };
    Ok(assemble_point(
        arch,
        index,
        budget,
        load_factor,
        None,
        &outcome,
        sim,
    ))
}

fn assemble_point(
    arch: &Architecture,
    index: usize,
    budget: usize,
    load_factor: f64,
    arch_seed: Option<u64>,
    outcome: &SizingOutcome,
    sim: Option<SimSummary>,
) -> SweepPoint {
    SweepPoint {
        index,
        budget,
        load_factor,
        arch_seed,
        queues: arch.num_queues(),
        offered_rate: arch.total_offered_rate(),
        predicted_loss: outcome.predicted_loss_rate,
        shadow_price: outcome.budget_shadow_price,
        budget_row_relaxed: outcome.budget_row_relaxed,
        lp_iterations: outcome.lp_iterations,
        allocation: outcome.allocation.as_slice().to_vec(),
        sim,
    }
}

/// Prepares a campaign's sizing config for `pool`: when the decomposed
/// LP engine is selected and no block executor was attached explicitly,
/// the campaign's own pool doubles as the block executor — per-block
/// solves fan out over idle workers, while points already running on a
/// pool worker solve their blocks serially (see the pool's
/// `SolveExecutor` impl for the oversubscription guard). Results are
/// identical either way; only wall time changes.
fn attach_pool(sizing: &SizingConfig, pool: &WorkPool) -> SizingConfig {
    let mut sizing = sizing.clone();
    if sizing.engine == socbuf_core::LpEngine::Decomposed && !sizing.executor.is_set() {
        sizing.executor = socbuf_core::ExecutorHandle::new(std::sync::Arc::new(pool.clone()));
    }
    sizing
}

/// A campaign lowered to its chunk-execution core: an index-ordered
/// work list, the [`ChunkPolicy`] that partitions it (plus the explicit
/// chunk ranges, which an adaptive manifest may coarsen into unions of
/// consecutive policy chunks), and one closure that executes any chunk
/// range. Every campaign — local pool run, single chunk on a remote
/// shard, smoke probe — goes through a plan, so chunk semantics
/// (warm-chain boundaries, cold chunk-initial solves, by-index
/// reduction) live in exactly one place.
///
/// The closure's optional [`BasisSnapshot`] seeds the chunk's warm
/// chain *before* its first solve (see [`SolveContext::import_basis`]).
/// Seeding changes pivot counts — a trace-only quantity, excluded from
/// rendered bytes — but may also move the solver onto a different
/// optimal vertex, so the byte-identity contract only covers unseeded
/// execution; [`CampaignPlan::run`] never seeds. Seeded chunks are the
/// shard layer's opt-in warm-transfer mode, measured by pivot counts.
pub struct CampaignPlan<'a> {
    kind: SweepKind,
    items: usize,
    policy: ChunkPolicy,
    ranges: Vec<std::ops::Range<usize>>,
    exec: ChunkExec<'a>,
}

/// The plan's chunk executor: runs one index range, optionally seeded
/// with a [`BasisSnapshot`] ahead of the chunk's first solve.
type ChunkExec<'a> = Box<
    dyn Fn(std::ops::Range<usize>, Option<BasisSnapshot>) -> Vec<Result<SweepPoint, SweepError>>
        + Sync
        + 'a,
>;

impl std::fmt::Debug for CampaignPlan<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignPlan")
            .field("kind", &self.kind)
            .field("items", &self.items)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl<'a> CampaignPlan<'a> {
    /// Assembles a plan over the policy's default chunk partition.
    fn over_policy(
        kind: SweepKind,
        items: usize,
        policy: ChunkPolicy,
        exec: ChunkExec<'a>,
    ) -> CampaignPlan<'a> {
        CampaignPlan {
            kind,
            items,
            policy,
            ranges: policy.ranges(items),
            exec,
        }
    }

    /// The campaign's report kind.
    pub fn kind(&self) -> SweepKind {
        self.kind
    }

    /// Number of work items in the campaign.
    pub fn items(&self) -> usize {
        self.items
    }

    /// The scheduling policy partitioning the work list.
    pub fn policy(&self) -> ChunkPolicy {
        self.policy
    }

    /// Number of chunks partitioning the work list.
    pub fn num_chunks(&self) -> usize {
        self.ranges.len()
    }

    /// The explicit chunk ranges, in order — the policy's default
    /// partition unless [`CampaignPlan::with_ranges`] coarsened it.
    pub fn ranges(&self) -> &[std::ops::Range<usize>] {
        &self.ranges
    }

    /// Replaces the chunk partition with an explicit one — the hook the
    /// shard layer uses to execute a manifest's declared chunks, which
    /// an adaptive manifest may have coarsened. Every cut must sit on a
    /// base-policy chain boundary (see
    /// [`ChunkPolicy::is_chain_boundary`]) so each merged chunk is a
    /// single extended warm chain starting with the same cold solve the
    /// default chunking would make.
    ///
    /// # Errors
    ///
    /// [`SweepError::BadConfig`] when `ranges` is not an ordered,
    /// boundary-aligned partition of the work list.
    pub fn with_ranges(
        mut self,
        ranges: Vec<std::ops::Range<usize>>,
    ) -> Result<CampaignPlan<'a>, SweepError> {
        let mut next = 0;
        for r in &ranges {
            if r.start != next || r.end <= r.start {
                return Err(SweepError::BadConfig(format!(
                    "chunk ranges must partition 0..{} in order; got {}..{} where {} was expected",
                    self.items, r.start, r.end, next
                )));
            }
            if !self.policy.is_chain_boundary(r.end, self.items) {
                return Err(SweepError::BadConfig(format!(
                    "chunk boundary {} is not a multiple of the policy chunk length {}",
                    r.end,
                    self.policy.chunk_len()
                )));
            }
            next = r.end;
        }
        if next != self.items {
            return Err(SweepError::BadConfig(format!(
                "chunk ranges cover 0..{next} but the campaign has {} items",
                self.items
            )));
        }
        self.ranges = ranges;
        Ok(self)
    }

    /// Executes one chunk and returns its points in index order —
    /// the unit a shard worker runs. `seed` warm-starts the chunk's
    /// first solve from an imported basis (pivot counts change, so
    /// never seed a chunk whose bytes must match a serial run).
    ///
    /// # Errors
    ///
    /// The lowest-index point failure within the chunk, or
    /// [`SweepError::BadConfig`] for a chunk index out of range.
    pub fn execute_chunk(
        &self,
        chunk: usize,
        seed: Option<BasisSnapshot>,
    ) -> Result<Vec<SweepPoint>, SweepError> {
        let Some(range) = self.ranges.get(chunk).cloned() else {
            return Err(SweepError::BadConfig(format!(
                "chunk {chunk} is out of range for {} items",
                self.items
            )));
        };
        let mut points = Vec::with_capacity(range.len());
        for r in (self.exec)(range, seed) {
            points.push(r?);
        }
        Ok(points)
    }

    /// Runs every chunk across `pool` (unseeded — the byte-identical
    /// path) and reduces the points into a report. A thin wrapper over
    /// [`CampaignPlan::run_sink`] collecting into a [`VecSink`].
    ///
    /// # Errors
    ///
    /// The lowest-index point failure.
    pub fn run(&self, pool: &WorkPool) -> Result<SweepReport, SweepError> {
        let mut sink = VecSink::new();
        self.run_sink(pool, &mut sink)?;
        Ok(SweepReport {
            kind: self.kind,
            points: sink.into_points(),
        })
    }

    /// Runs every chunk across `pool` (unseeded), emitting points into
    /// `sink` **in index order as each chunk completes** — the
    /// streaming path. Chunks execute in parallel but are consumed
    /// strictly in chunk order ([`WorkPool::run_ranges_ordered`]), so
    /// the sink observes the exact sequence a serial run would emit,
    /// for any worker count.
    ///
    /// # Errors
    ///
    /// The lowest-index point failure (identical error selection to the
    /// batch path, because consumption is index-ordered), or
    /// [`SweepError::Sink`] when the sink rejects a point.
    pub fn run_sink(
        &self,
        pool: &WorkPool,
        sink: &mut dyn PointSink,
    ) -> Result<SinkRun, SweepError> {
        let run = pool.run_ranges_ordered(
            &self.ranges,
            |range| (self.exec)(range, None),
            |_chunk, results| {
                for r in results {
                    let point = r?;
                    sink.accept(point)
                        .map_err(|source| SweepError::Sink { source })?;
                }
                Ok(())
            },
        )?;
        Ok(SinkRun {
            chunks: run.chunks,
            peak_parked_chunks: run.peak_parked,
        })
    }
}

/// Counters returned by [`CampaignPlan::run_sink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkRun {
    /// Chunks executed and consumed.
    pub chunks: usize,
    /// Largest number of finished chunks parked awaiting ordered
    /// consumption — the campaign's resident-point bound is this (plus
    /// in-flight chunks) times the chunk length, independent of
    /// campaign size.
    pub peak_parked_chunks: usize,
}

/// Shared manifest-construction guard: manifests describe sizing-only
/// campaigns (simulation campaigns remain single-host).
fn reject_simulate(simulate: &Option<PipelineConfig>) -> Result<(), SweepError> {
    if simulate.is_some() {
        return Err(SweepError::BadConfig(
            "manifests describe sizing-only campaigns; drop `simulate` before sharding".into(),
        ));
    }
    Ok(())
}

/// Maps a manifest-construction failure into the campaign error space.
fn manifest_err(source: socbuf_core::wire::WireError) -> SweepError {
    SweepError::BadConfig(source.to_string())
}

/// Loss/allocation/shadow-price across a budget grid on one
/// architecture — the Pareto-frontier campaign (the paper's Table 1,
/// generalized).
#[derive(Debug, Clone)]
pub struct BudgetSweep<'a> {
    /// The architecture to size.
    pub arch: &'a Architecture,
    /// Budget grid (one work item per entry).
    pub budgets: Vec<usize>,
    /// Sizing configuration shared by every point.
    pub sizing: SizingConfig,
    /// When set, each point also runs the three-policy simulation
    /// comparison with this pipeline configuration (its `sizing` field
    /// is overridden by the sweep's).
    pub simulate: Option<PipelineConfig>,
    /// Warm-start the LP re-solves along index-fixed chunks of
    /// [`WARM_CHUNK`] points (the default; see the constant's docs for
    /// the determinism argument). Disable to cold-start every point —
    /// e.g. when pinning a point bit-for-bit against a standalone
    /// [`size_buffers`] call, whose pivot path a warm chain legitimately
    /// changes.
    pub warm_start: bool,
}

impl<'a> BudgetSweep<'a> {
    /// A sizing-only sweep of `budgets` under the default configuration,
    /// warm starts enabled.
    pub fn new(arch: &'a Architecture, budgets: Vec<usize>) -> Self {
        BudgetSweep {
            arch,
            budgets,
            sizing: SizingConfig::default(),
            simulate: None,
            warm_start: true,
        }
    }

    /// Lowers the sweep to its chunk-execution core. The plan owns
    /// clones of the grid and configuration (with `pool` attached as
    /// the block-solve executor) and borrows only the architecture, so
    /// it outlives the sweep value it came from.
    ///
    /// # Errors
    ///
    /// [`SweepError::BadConfig`] for an empty grid.
    pub fn plan(&self, pool: &WorkPool) -> Result<CampaignPlan<'a>, SweepError> {
        if self.budgets.is_empty() {
            return Err(SweepError::BadConfig("empty budget grid".into()));
        }
        let arch = self.arch;
        let budgets = self.budgets.clone();
        let sizing = attach_pool(&self.sizing, pool);
        let simulate = self.simulate.clone();
        let exec: ChunkExec<'a> = if self.warm_start {
            Box::new(move |range, seed| {
                let mut ctx = SolveContext::new(arch, &sizing);
                if let Some(snapshot) = seed {
                    ctx.import_basis(snapshot);
                }
                range
                    .map(|i| {
                        warm_size_point(
                            &mut ctx,
                            arch,
                            i,
                            budgets[i],
                            1.0,
                            &sizing,
                            simulate.as_ref(),
                        )
                    })
                    .collect()
            })
        } else {
            Box::new(move |range, _seed| {
                range
                    .map(|i| size_point(arch, i, budgets[i], 1.0, None, &sizing, simulate.as_ref()))
                    .collect()
            })
        };
        Ok(CampaignPlan::over_policy(
            SweepKind::Budget,
            self.budgets.len(),
            if self.warm_start {
                ChunkPolicy::WARM_CHAIN
            } else {
                ChunkPolicy::INDEPENDENT
            },
            exec,
        ))
    }

    /// The sweep's sharding contract (see
    /// [`CampaignManifest`]).
    ///
    /// # Errors
    ///
    /// [`SweepError::BadConfig`] for an empty grid or a simulation
    /// campaign (manifests are sizing-only).
    pub fn manifest(&self) -> Result<CampaignManifest, SweepError> {
        reject_simulate(&self.simulate)?;
        CampaignManifest::new(
            ManifestShape::Budget {
                arch: self.arch.clone(),
                budgets: self.budgets.clone(),
                warm_start: self.warm_start,
            },
            self.sizing.clone(),
        )
        .map_err(manifest_err)
    }

    /// Runs the sweep on `pool`.
    ///
    /// # Errors
    ///
    /// The lowest-index point failure, or [`SweepError::BadConfig`] for
    /// an empty grid.
    pub fn run(&self, pool: &WorkPool) -> Result<SweepReport, SweepError> {
        self.plan(pool)?.run(pool)
    }

    /// Streams the sweep's points into `sink` in index order without
    /// materializing the report (see [`CampaignPlan::run_sink`]).
    ///
    /// # Errors
    ///
    /// As [`BudgetSweep::run`], plus [`SweepError::Sink`].
    pub fn run_sink(
        &self,
        pool: &WorkPool,
        sink: &mut dyn PointSink,
    ) -> Result<SinkRun, SweepError> {
        self.plan(pool)?.run_sink(pool, sink)
    }
}

/// One budget, a grid of load factors: every point sizes the
/// architecture with all λ scaled by the factor (μ untouched).
#[derive(Debug, Clone)]
pub struct LoadSweep<'a> {
    /// The nominal architecture.
    pub arch: &'a Architecture,
    /// Buffer budget shared by every point.
    pub budget: usize,
    /// λ multipliers (one work item per entry).
    pub factors: Vec<f64>,
    /// Sizing configuration shared by every point.
    pub sizing: SizingConfig,
    /// Optional per-point simulation comparison (see [`BudgetSweep`]).
    pub simulate: Option<PipelineConfig>,
    /// Warm-start chunked re-solves (see [`BudgetSweep::warm_start`]);
    /// on by default. Along a load chain the warm solver re-scales the
    /// cached LP's rate coefficients in place instead of reassembling.
    pub warm_start: bool,
}

impl<'a> LoadSweep<'a> {
    /// A sizing-only sweep of `factors` at `budget`, warm starts
    /// enabled.
    pub fn new(arch: &'a Architecture, budget: usize, factors: Vec<f64>) -> Self {
        LoadSweep {
            arch,
            budget,
            factors,
            sizing: SizingConfig::default(),
            simulate: None,
            warm_start: true,
        }
    }

    /// Lowers the sweep to its chunk-execution core (see
    /// [`BudgetSweep::plan`]).
    ///
    /// # Errors
    ///
    /// [`SweepError::BadConfig`] for an empty grid.
    pub fn plan(&self, pool: &WorkPool) -> Result<CampaignPlan<'a>, SweepError> {
        if self.factors.is_empty() {
            return Err(SweepError::BadConfig("empty factor grid".into()));
        }
        let arch = self.arch;
        let budget = self.budget;
        let factors = self.factors.clone();
        let sizing = attach_pool(&self.sizing, pool);
        let simulate = self.simulate.clone();
        let exec: ChunkExec<'a> = if self.warm_start {
            Box::new(move |range, seed| {
                let mut ctx = SolveContext::new(arch, &sizing);
                if let Some(snapshot) = seed {
                    ctx.import_basis(snapshot);
                }
                range
                    .map(|i| {
                        let factor = factors[i];
                        let scaled = arch
                            .scale_rates(factor, 1.0)
                            .map_err(|source| SweepError::Arch { index: i, source })?;
                        warm_size_point(
                            &mut ctx,
                            &scaled,
                            i,
                            budget,
                            factor,
                            &sizing,
                            simulate.as_ref(),
                        )
                    })
                    .collect()
            })
        } else {
            Box::new(move |range, _seed| {
                range
                    .map(|i| {
                        let factor = factors[i];
                        let scaled = arch
                            .scale_rates(factor, 1.0)
                            .map_err(|source| SweepError::Arch { index: i, source })?;
                        size_point(&scaled, i, budget, factor, None, &sizing, simulate.as_ref())
                    })
                    .collect()
            })
        };
        Ok(CampaignPlan::over_policy(
            SweepKind::Load,
            self.factors.len(),
            if self.warm_start {
                ChunkPolicy::WARM_CHAIN
            } else {
                ChunkPolicy::INDEPENDENT
            },
            exec,
        ))
    }

    /// The sweep's sharding contract (see [`CampaignManifest`]).
    ///
    /// # Errors
    ///
    /// [`SweepError::BadConfig`] for an empty grid or a simulation
    /// campaign (manifests are sizing-only).
    pub fn manifest(&self) -> Result<CampaignManifest, SweepError> {
        reject_simulate(&self.simulate)?;
        CampaignManifest::new(
            ManifestShape::Load {
                arch: self.arch.clone(),
                budget: self.budget,
                factors: self.factors.clone(),
                warm_start: self.warm_start,
            },
            self.sizing.clone(),
        )
        .map_err(manifest_err)
    }

    /// Runs the sweep on `pool`.
    ///
    /// # Errors
    ///
    /// The lowest-index point failure (a factor that makes the LP
    /// infeasible surfaces here), or [`SweepError::BadConfig`] for an
    /// empty grid.
    pub fn run(&self, pool: &WorkPool) -> Result<SweepReport, SweepError> {
        self.plan(pool)?.run(pool)
    }

    /// Streams the sweep's points into `sink` in index order without
    /// materializing the report (see [`CampaignPlan::run_sink`]).
    ///
    /// # Errors
    ///
    /// As [`LoadSweep::run`], plus [`SweepError::Sink`].
    pub fn run_sink(
        &self,
        pool: &WorkPool,
        sink: &mut dyn PointSink,
    ) -> Result<SinkRun, SweepError> {
        self.plan(pool)?.run_sink(pool, sink)
    }
}

/// Fan-out over [`random_architecture`] seeds: one sizing problem per
/// seed, with the budget scaled to each architecture's queue count.
#[derive(Debug, Clone)]
pub struct RandomCampaign {
    /// Generator knobs shared by every seed.
    pub params: RandomArchParams,
    /// Architecture seeds (one work item per entry).
    pub seeds: Vec<u64>,
    /// Budget granted per queue (total = `units_per_queue × queues`, so
    /// differently-sized architectures are budgeted comparably).
    pub units_per_queue: usize,
    /// Sizing configuration shared by every point.
    pub sizing: SizingConfig,
    /// Optional per-point simulation comparison (see [`BudgetSweep`]).
    pub simulate: Option<PipelineConfig>,
}

impl RandomCampaign {
    /// A sizing-only campaign over `seeds` with default params and
    /// 3 units per queue.
    pub fn new(seeds: Vec<u64>) -> Self {
        RandomCampaign {
            params: RandomArchParams::default(),
            seeds,
            units_per_queue: 3,
            sizing: SizingConfig::default(),
            simulate: None,
        }
    }

    /// Lowers the campaign to its chunk-execution core. Random
    /// campaigns never warm-chain (every seed is a different
    /// architecture), so the plan uses [`ChunkPolicy::INDEPENDENT`] and
    /// ignores chunk seeds. The plan owns everything it needs (`'static`).
    ///
    /// # Errors
    ///
    /// [`SweepError::BadConfig`] for an empty seed list or a zero
    /// per-queue budget.
    pub fn plan(&self, pool: &WorkPool) -> Result<CampaignPlan<'static>, SweepError> {
        if self.seeds.is_empty() {
            return Err(SweepError::BadConfig("empty seed list".into()));
        }
        if self.units_per_queue == 0 {
            return Err(SweepError::BadConfig("units_per_queue must be ≥ 1".into()));
        }
        let params = self.params.clone();
        let seeds = self.seeds.clone();
        let units_per_queue = self.units_per_queue;
        let sizing = attach_pool(&self.sizing, pool);
        let simulate = self.simulate.clone();
        Ok(CampaignPlan::over_policy(
            SweepKind::Random,
            self.seeds.len(),
            ChunkPolicy::INDEPENDENT,
            Box::new(move |range, _seed| {
                range
                    .map(|i| {
                        let seed = seeds[i];
                        let arch = random_architecture(seed, &params);
                        let budget = units_per_queue * arch.num_queues();
                        size_point(
                            &arch,
                            i,
                            budget,
                            1.0,
                            Some(seed),
                            &sizing,
                            simulate.as_ref(),
                        )
                    })
                    .collect()
            }),
        ))
    }

    /// The campaign's sharding contract (see [`CampaignManifest`]).
    ///
    /// # Errors
    ///
    /// [`SweepError::BadConfig`] for an unusable campaign or a
    /// simulation campaign (manifests are sizing-only).
    pub fn manifest(&self) -> Result<CampaignManifest, SweepError> {
        reject_simulate(&self.simulate)?;
        CampaignManifest::new(
            ManifestShape::Random {
                params: self.params.clone(),
                seeds: self.seeds.clone(),
                units_per_queue: self.units_per_queue,
            },
            self.sizing.clone(),
        )
        .map_err(manifest_err)
    }

    /// Runs the campaign on `pool`.
    ///
    /// # Errors
    ///
    /// The lowest-index point failure, or [`SweepError::BadConfig`] for
    /// an empty seed list or a zero per-queue budget.
    pub fn run(&self, pool: &WorkPool) -> Result<SweepReport, SweepError> {
        self.plan(pool)?.run(pool)
    }

    /// Streams the campaign's points into `sink` in index order without
    /// materializing the report (see [`CampaignPlan::run_sink`]).
    ///
    /// # Errors
    ///
    /// As [`RandomCampaign::run`], plus [`SweepError::Sink`].
    pub fn run_sink(
        &self,
        pool: &WorkPool,
        sink: &mut dyn PointSink,
    ) -> Result<SinkRun, SweepError> {
        self.plan(pool)?.run_sink(pool, sink)
    }
}

/// Runs the paper's three-policy comparison with its simulation
/// replications spread over `pool` — the entry point for parallelizing
/// a *single* evaluation instead of a grid of them. Output is
/// bit-identical to `socbuf_core::evaluate_policies`.
///
/// # Errors
///
/// Propagates `socbuf_core`'s sizing/validation errors.
pub fn parallel_policy_comparison(
    arch: &Architecture,
    budget: usize,
    config: &PipelineConfig,
    pool: &WorkPool,
) -> Result<socbuf_core::PolicyComparison, CoreError> {
    evaluate_policies_with(arch, budget, config, pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use socbuf_core::evaluate_policies;
    use socbuf_soc::templates;

    fn small() -> SizingConfig {
        SizingConfig::small()
    }

    #[test]
    fn budget_sweep_points_match_single_shot_sizing() {
        // With warm starts OFF every point is a standalone cold solve,
        // so the match against `size_buffers` is exact (bitwise).
        let arch = templates::amba();
        let sweep = BudgetSweep {
            arch: &arch,
            budgets: vec![12, 16, 24],
            sizing: small(),
            simulate: None,
            warm_start: false,
        };
        let report = sweep.run(&WorkPool::serial()).unwrap();
        assert_eq!(report.kind, SweepKind::Budget);
        assert_eq!(report.points.len(), 3);
        for (i, &budget) in [12usize, 16, 24].iter().enumerate() {
            let p = &report.points[i];
            let solo = size_buffers(&arch, budget, &small()).unwrap();
            assert_eq!(p.index, i);
            assert_eq!(p.budget, budget);
            assert_eq!(p.allocation, solo.allocation.as_slice());
            assert_eq!(p.predicted_loss, solo.predicted_loss_rate);
            assert_eq!(p.load_factor, 1.0);
            assert_eq!(p.arch_seed, None);
        }
    }

    #[test]
    fn warm_budget_sweep_agrees_with_cold_to_solver_precision() {
        // Warm chains may land on a different optimal vertex (and pivot
        // count), but statuses and objectives must match the cold sweep:
        // the optimal objective of an LP is unique.
        let arch = templates::amba();
        let budgets = vec![10, 12, 16, 20, 24, 32, 40]; // spans 2 chunks
        let mut warm = BudgetSweep::new(&arch, budgets.clone());
        warm.sizing = small();
        let mut cold = BudgetSweep::new(&arch, budgets);
        cold.sizing = small();
        cold.warm_start = false;
        let warm = warm.run(&WorkPool::serial()).unwrap();
        let cold = cold.run(&WorkPool::serial()).unwrap();
        for (w, c) in warm.points.iter().zip(&cold.points) {
            assert_eq!(w.budget_row_relaxed, c.budget_row_relaxed);
            assert!(
                (w.predicted_loss - c.predicted_loss).abs()
                    <= 1e-9 * (1.0 + c.predicted_loss.abs()),
                "budget {}: warm {} vs cold {}",
                w.budget,
                w.predicted_loss,
                c.predicted_loss
            );
            assert_eq!(w.allocation.iter().sum::<usize>(), w.budget);
        }
        // Chunk-initial points (indices 0 and 4) are cold solves by
        // construction and must match bit for bit.
        for i in [0usize, 4] {
            assert_eq!(warm.points[i], cold.points[i], "chunk start {i} drifted");
        }
    }

    #[test]
    fn warm_load_sweep_agrees_with_cold_to_solver_precision() {
        let arch = templates::coreconnect();
        let factors = vec![0.5, 0.75, 1.0, 1.25, 1.5];
        let mut warm = LoadSweep::new(&arch, 20, factors.clone());
        warm.sizing = small();
        let mut cold = LoadSweep::new(&arch, 20, factors);
        cold.sizing = small();
        cold.warm_start = false;
        let warm = warm.run(&WorkPool::serial()).unwrap();
        let cold = cold.run(&WorkPool::serial()).unwrap();
        for (w, c) in warm.points.iter().zip(&cold.points) {
            assert_eq!(w.budget_row_relaxed, c.budget_row_relaxed);
            assert!(
                (w.predicted_loss - c.predicted_loss).abs()
                    <= 1e-9 * (1.0 + c.predicted_loss.abs()),
                "factor {}: warm {} vs cold {}",
                w.load_factor,
                w.predicted_loss,
                c.predicted_loss
            );
        }
    }

    #[test]
    fn load_sweep_scales_offered_rate() {
        let arch = templates::amba();
        let sweep = LoadSweep {
            arch: &arch,
            budget: 16,
            factors: vec![0.5, 1.0],
            sizing: small(),
            simulate: None,
            warm_start: true,
        };
        let report = sweep.run(&WorkPool::serial()).unwrap();
        assert_eq!(report.kind, SweepKind::Load);
        let nominal = arch.total_offered_rate();
        assert!((report.points[0].offered_rate - 0.5 * nominal).abs() < 1e-12);
        assert!((report.points[1].offered_rate - nominal).abs() < 1e-12);
        // Lighter load must not predict more loss at the same budget.
        assert!(report.points[0].predicted_loss <= report.points[1].predicted_loss + 1e-12);
    }

    #[test]
    fn random_campaign_budgets_scale_with_queue_count() {
        let campaign = RandomCampaign {
            params: RandomArchParams::default(),
            seeds: vec![3, 5],
            units_per_queue: 3,
            sizing: small(),
            simulate: None,
        };
        let report = campaign.run(&WorkPool::serial()).unwrap();
        assert_eq!(report.kind, SweepKind::Random);
        for p in &report.points {
            assert_eq!(p.budget, 3 * p.queues);
            assert_eq!(p.allocation.iter().sum::<usize>(), p.budget);
            assert!(p.arch_seed.is_some());
        }
    }

    #[test]
    fn empty_grids_are_rejected() {
        let arch = templates::amba();
        assert!(matches!(
            BudgetSweep::new(&arch, vec![]).run(&WorkPool::serial()),
            Err(SweepError::BadConfig(_))
        ));
        assert!(matches!(
            LoadSweep::new(&arch, 10, vec![]).run(&WorkPool::serial()),
            Err(SweepError::BadConfig(_))
        ));
        assert!(matches!(
            RandomCampaign::new(vec![]).run(&WorkPool::serial()),
            Err(SweepError::BadConfig(_))
        ));
    }

    #[test]
    fn point_failures_carry_the_lowest_failing_index() {
        let arch = templates::amba();
        // A negative load factor fails at the architecture-scaling step.
        let sweep = LoadSweep {
            arch: &arch,
            budget: 16,
            factors: vec![1.0, -1.0, -2.0],
            sizing: small(),
            simulate: None,
            warm_start: true,
        };
        match sweep.run(&WorkPool::new(4)) {
            Err(SweepError::Arch { index, .. }) => assert_eq!(index, 1),
            other => panic!("expected Arch error, got {other:?}"),
        }
    }

    #[test]
    fn simulated_points_attach_policy_losses() {
        let arch = templates::amba();
        let sweep = BudgetSweep {
            arch: &arch,
            budgets: vec![16],
            sizing: small(),
            simulate: Some(PipelineConfig::small()),
            warm_start: true,
        };
        let report = sweep.run(&WorkPool::serial()).unwrap();
        let sim = report.points[0].sim.as_ref().expect("sim attached");
        assert!(sim.pre_loss >= 0.0 && sim.post_loss >= 0.0);
        // The attached summary matches a direct evaluate_policies call
        // under the same (overridden) sizing config.
        let mut pipeline = PipelineConfig::small();
        pipeline.sizing = small();
        let cmp = evaluate_policies(&arch, 16, &pipeline).unwrap();
        assert_eq!(sim.pre_loss, cmp.pre.total_lost);
        assert_eq!(sim.post_loss, cmp.post.total_lost);
        assert_eq!(sim.timeout_loss, cmp.timeout.total_lost);
    }

    #[test]
    fn pooled_policy_comparison_matches_serial() {
        let arch = templates::amba();
        let cfg = PipelineConfig::small();
        let serial = evaluate_policies(&arch, 16, &cfg).unwrap();
        let pooled = parallel_policy_comparison(&arch, 16, &cfg, &WorkPool::new(4)).unwrap();
        assert_eq!(serial.pre, pooled.pre);
        assert_eq!(serial.post, pooled.post);
        assert_eq!(serial.timeout, pooled.timeout);
    }
}
