//! Deterministic parallel sweep engine for `socbuf` campaigns.
//!
//! The DATE 2005 methodology answers one question at a time — size one
//! architecture at one budget. Serving sweep-scale workloads (Pareto
//! frontiers of loss vs. budget, load scalings, random-architecture
//! campaigns) means solving *grids* of independent sizing problems, and
//! after the sparse-simplex work a single solve is fast enough that the
//! serial loop around it is the bottleneck. This crate supplies that
//! loop: a std-only scoped-thread [`WorkPool`] plus three campaign
//! shapes over `socbuf_core::pipeline` —
//!
//! * [`BudgetSweep`] — loss/allocation/shadow-price per budget point,
//! * [`LoadSweep`] — all λ scaled by a factor grid at one budget,
//! * [`RandomCampaign`] — fan-out over
//!   [`socbuf_soc::templates::random_architecture`] seeds,
//!
//! each returning a structured [`SweepReport`] with Pareto-frontier
//! extraction and CSV / JSON-lines rendering. The pool also plugs into
//! the pipeline's replication hook
//! ([`socbuf_core::ReplicationPool`]), so a single policy comparison
//! can spread its simulation replications over workers
//! ([`parallel_policy_comparison`]).
//!
//! # The determinism contract
//!
//! Campaign results are **bit-identical for every worker count**, and
//! the serializations built from them are **byte-identical**. This is
//! load-bearing (regression pins, cross-run diffs, caching) and rests
//! on three rules, enforced by construction and pinned by
//! `tests/determinism.rs`:
//!
//! 1. every work item is identified by its index in the campaign's
//!    work list, and anything pseudo-random inside it (simulation
//!    replication seeds, architecture seeds) derives from that index —
//!    never from thread identity, timing, or completion order;
//! 2. the pool reduces results **by slot** (worker threads return
//!    `(index, result)` pairs that are reassembled into index order),
//!    so skewed item costs and work stealing cannot reorder anything;
//! 3. aggregation downstream of the pool (Pareto extraction, error
//!    selection, rendering) is a pure function of the index-ordered
//!    records, with ties broken by index.
//!
//! Floating-point reductions happen *inside* one work item, on one
//! thread, in a fixed order — the pool never sums across items — so
//! there is no "parallel summation" nondeterminism to tolerate.
//!
//! # Examples
//!
//! ```
//! use socbuf_sweep::{BudgetSweep, WorkPool};
//! use socbuf_core::SizingConfig;
//! use socbuf_soc::templates;
//!
//! let arch = templates::amba();
//! let mut sweep = BudgetSweep::new(&arch, vec![12, 16, 20, 24]);
//! sweep.sizing = SizingConfig::small();
//! let report = sweep.run(&WorkPool::available()).unwrap();
//! assert_eq!(report.points.len(), 4);
//! // More budget never predicts more loss:
//! let frontier = report.pareto_frontier();
//! assert!(!frontier.is_empty());
//! println!("{}", report.frontier_table());
//! ```

//! # Sharding
//!
//! Every campaign lowers to a [`CampaignPlan`] — an index-ordered work
//! list partitioned by a [`socbuf_core::ChunkPolicy`] plus one
//! chunk-execution closure — and a sizing-only campaign additionally
//! renders to a [`socbuf_core::wire::CampaignManifest`], the wire
//! contract a coordinator ships to shard workers. The [`shard`]
//! module's [`execute_manifest_chunk`] runs one manifest chunk into a
//! chunk-tagged report and [`merge_chunk_reports`] verifies coverage
//! and reassembles — byte-identical to the serial run for any shard
//! partition, because chunk boundaries are part of the campaign's
//! meaning, not the executor's choice.
//!
//! # Streaming
//!
//! The whole result path also runs without ever materializing a
//! campaign: chunks execute under the pool's ordered consumer
//! ([`WorkPool::run_ranges_ordered`]) and emit points into a
//! [`PointSink`] as they complete; the incremental renderers
//! ([`stream::ReportStream`]) and the bounded-memory fleet reducer
//! ([`shard::StreamingReducer`]) are sinks. The batch APIs are thin
//! wrappers over these, so streamed bytes ≡ batch bytes by
//! construction — for every campaign shape, worker count, and chunk
//! arrival order. The [`adaptive`] module extends warm chains past
//! [`WARM_CHUNK`] by re-chunking *in the manifest*, keeping that same
//! contract.

pub mod adaptive;
mod campaign;
mod pool;
mod report;
pub mod shard;
pub mod stream;

pub use adaptive::{adaptive_chunks, rechunk_manifest, AdaptivePolicy};
pub use campaign::{
    parallel_policy_comparison, BudgetSweep, CampaignPlan, LoadSweep, RandomCampaign, SinkRun,
    SweepError, WARM_CHUNK,
};
pub use pool::{OrderedRun, WorkPool};
pub use report::{SimSummary, SweepKind, SweepPoint, SweepReport};
pub use shard::{
    execute_manifest_chunk, execute_manifest_chunk_traced, merge_chunk_reports, plan_manifest,
    run_manifest, run_manifest_sink, ChunkStats, MergeError, ReduceStats, ReportSink,
    StreamingReducer,
};
pub use stream::{
    FileSpool, FrontierIndex, FrontierTracker, MemSpool, PointSink, ReportStream, Spool,
    StreamSummary, VecSink,
};
