//! Adaptive warm-chain extension: re-chunking a campaign *in its
//! manifest*.
//!
//! Warm-start chains are capped at [`ChunkPolicy::WARM_CHAIN`] (4
//! points) because a chain is also the unit of scheduling — short
//! chains keep 1/2/8 workers busy on small campaigns. But on big,
//! well-behaved sweeps (densely spaced budgets, gently scaled loads)
//! the warm solves inside a chain often take **zero** pivots: the
//! previous optimal basis is already optimal for the next point, and
//! the cold solve that starts the next chain re-derives a basis the
//! solver already held. Those cold solves are the dominant cost of a
//! large campaign.
//!
//! This module extends chains where the evidence says it is free:
//! while a base chunk's warm solves averaged at most
//! [`AdaptivePolicy::max_avg_pivots`] (default 0 — the basis was
//! literally already optimal), the next base chunk is merged into the
//! same chain, up to [`AdaptivePolicy::max_chain_chunks`] base chunks
//! per chain.
//!
//! The crucial move is *where* the decision lands: not in an executor,
//! but in the manifest's declared chunk partition
//! ([`rechunk_manifest`] → [`CampaignManifest::with_chunks`]). Chunk
//! boundaries are part of a campaign's meaning, so once the coarser
//! partition is written into the manifest, every execution path —
//! serial, pooled, sharded, streamed — sees the same chain boundaries
//! and produces the same bytes, by the same argument that covers the
//! default partition. Merged boundaries are still chain boundaries of
//! the base policy ([`ChunkPolicy::is_chain_boundary`]), so the
//! manifest stays valid wire-side, and the regression suite pins that
//! a re-chunked campaign's merged rendering is byte-identical to the
//! default chunking's.
//!
//! Pivot evidence comes from a prior run's trace-only
//! [`SweepPoint::lp_iterations`] (a profile run of the same campaign,
//! e.g. at a coarser grid). Points parsed back from the wire carry no
//! pivot counts — re-chunk from a locally executed report.
//!
//! [`SweepPoint::lp_iterations`]: crate::report::SweepPoint

use std::ops::Range;

use socbuf_core::wire::CampaignManifest;
use socbuf_core::ChunkPolicy;

use crate::campaign::SweepError;
use crate::report::SweepReport;

/// When to extend a warm chain across a base-chunk boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivePolicy {
    /// Extend past a base chunk only if its warm solves (every point
    /// but the chunk-initial cold one) averaged at most this many
    /// pivots. The default, `0.0`, demands the strongest evidence: the
    /// carried basis was already optimal at every warm point.
    pub max_avg_pivots: f64,
    /// Base chunks per merged chain, at most. Caps how much scheduling
    /// granularity the merge gives up; the default (4) allows chains up
    /// to 4× the base chain length.
    pub max_chain_chunks: usize,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            max_avg_pivots: 0.0,
            max_chain_chunks: 4,
        }
    }
}

/// Mean pivots over a base chunk's warm solves (everything after the
/// chunk-initial cold solve). Single-point chunks have no warm solves
/// and average 0.
fn warm_avg(r: &Range<usize>, pivots: &[usize]) -> f64 {
    let warm = &pivots[r.start + 1..r.end];
    if warm.is_empty() {
        return 0.0;
    }
    warm.iter().sum::<usize>() as f64 / warm.len() as f64
}

/// The coarsened chunk partition for `pivots.len()` items: consecutive
/// base chunks of `base` merged while the policy's evidence holds.
/// Every returned boundary is a chain boundary of `base`, so the
/// result is always a valid manifest partition; with a policy that
/// never extends (e.g. `max_chain_chunks == 1`) it *is* the base
/// partition.
///
/// `pivots[i]` is the trace pivot count of work item `i` under the
/// base chunking.
pub fn adaptive_chunks(
    policy: &AdaptivePolicy,
    pivots: &[usize],
    base: ChunkPolicy,
) -> Vec<Range<usize>> {
    let base_ranges = base.ranges(pivots.len());
    let mut out: Vec<Range<usize>> = Vec::new();
    let mut group_chunks = 0usize;
    for (i, r) in base_ranges.iter().enumerate() {
        let extend = group_chunks >= 1
            && group_chunks < policy.max_chain_chunks
            && warm_avg(&base_ranges[i - 1], pivots) <= policy.max_avg_pivots;
        if extend {
            out.last_mut()
                .expect("group_chunks >= 1 implies a group")
                .end = r.end;
            group_chunks += 1;
        } else {
            out.push(r.clone());
            group_chunks = 1;
        }
    }
    out
}

/// Rebuilds `manifest` with the chunk partition [`adaptive_chunks`]
/// derives from `profile` — a locally executed report of the same
/// campaign whose struct-side pivot traces are intact. Non-warm-start
/// shapes (and random campaigns, which never chain) come back
/// unchanged: there are no chains to extend.
///
/// The returned manifest has the same config hash (chunking is not
/// part of the hashed campaign text) and a partition every consumer —
/// wire validation, shard planners, reducers — accepts.
///
/// # Errors
///
/// [`SweepError::BadConfig`] when `profile` does not cover the
/// manifest's campaign (wrong kind or point count), or when the
/// derived partition is rejected wire-side (which would be a bug in
/// this module — the alignment invariant makes it unrepresentable).
pub fn rechunk_manifest(
    manifest: &CampaignManifest,
    profile: &SweepReport,
    policy: &AdaptivePolicy,
) -> Result<CampaignManifest, SweepError> {
    if !manifest.shape.warm_start() {
        return Ok(manifest.clone());
    }
    let expected_kind = manifest.shape.kind_tag();
    if profile.kind.tag() != expected_kind {
        return Err(SweepError::BadConfig(format!(
            "adaptive re-chunk: profile report is \"{}\" but the manifest is \"{expected_kind}\"",
            profile.kind.tag()
        )));
    }
    let items = manifest.items();
    if profile.points.len() != items {
        return Err(SweepError::BadConfig(format!(
            "adaptive re-chunk: profile report has {} points but the manifest has {items} items",
            profile.points.len()
        )));
    }
    let pivots: Vec<usize> = profile.points.iter().map(|p| p.lp_iterations).collect();
    let ranges = adaptive_chunks(policy, &pivots, manifest.shape.chunk_policy());
    CampaignManifest::with_chunks(manifest.shape.clone(), manifest.config.clone(), ranges)
        .map_err(|e| SweepError::BadConfig(format!("adaptive re-chunk: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AdaptivePolicy {
        AdaptivePolicy::default()
    }

    #[test]
    fn quiet_chains_merge_up_to_the_cap() {
        // 16 items, all warm solves at 0 pivots: one merged chain of
        // 4 base chunks (the cap), alignment preserved.
        let pivots = vec![0usize; 16];
        let chunks = adaptive_chunks(&policy(), &pivots, ChunkPolicy::WARM_CHAIN);
        assert_eq!(chunks, vec![0..16]);

        // 20 items: the cap splits a fifth base chunk off.
        let pivots = vec![0usize; 20];
        let chunks = adaptive_chunks(&policy(), &pivots, ChunkPolicy::WARM_CHAIN);
        assert_eq!(chunks, vec![0..16, 16..20]);
    }

    #[test]
    fn a_noisy_chunk_stops_the_extension_after_it() {
        // Chunk 1 (items 4..8) has a warm solve with pivots: chunk 2
        // must start a fresh chain, but chunk 1 itself still merges
        // into chunk 0's chain (chunk 0 was quiet).
        let mut pivots = vec![0usize; 16];
        pivots[6] = 3;
        let chunks = adaptive_chunks(&policy(), &pivots, ChunkPolicy::WARM_CHAIN);
        assert_eq!(chunks, vec![0..8, 8..16]);
    }

    #[test]
    fn cold_solve_pivots_do_not_count_as_warm_noise() {
        // Chunk-initial solves are cold by definition; their pivot
        // counts say nothing about basis stability.
        let mut pivots = vec![0usize; 12];
        pivots[0] = 50;
        pivots[4] = 50;
        pivots[8] = 50;
        let chunks = adaptive_chunks(&policy(), &pivots, ChunkPolicy::WARM_CHAIN);
        assert_eq!(chunks, vec![0..12]);
    }

    #[test]
    fn a_higher_threshold_tolerates_small_warm_activity() {
        let mut pivots = vec![0usize; 8];
        pivots[2] = 2; // chunk 0 warm avg = 2/3
        let strict = adaptive_chunks(&policy(), &pivots, ChunkPolicy::WARM_CHAIN);
        assert_eq!(strict, vec![0..4, 4..8]);
        let lenient = AdaptivePolicy {
            max_avg_pivots: 1.0,
            ..policy()
        };
        let chunks = adaptive_chunks(&lenient, &pivots, ChunkPolicy::WARM_CHAIN);
        assert_eq!(chunks, vec![0..8]);
    }

    #[test]
    fn boundaries_stay_on_base_chain_boundaries() {
        let pivots: Vec<usize> = (0..23).map(|i| usize::from(i % 5 == 0)).collect();
        let base = ChunkPolicy::WARM_CHAIN;
        let chunks = adaptive_chunks(&policy(), &pivots, base);
        let mut next = 0;
        for r in &chunks {
            assert_eq!(r.start, next);
            assert!(r.end > r.start);
            assert!(base.is_chain_boundary(r.end, pivots.len()), "end {}", r.end);
            next = r.end;
        }
        assert_eq!(next, pivots.len());
    }

    #[test]
    fn a_unit_cap_reproduces_the_base_partition() {
        let pivots = vec![0usize; 10];
        let unit = AdaptivePolicy {
            max_chain_chunks: 1,
            ..policy()
        };
        let base = ChunkPolicy::WARM_CHAIN;
        assert_eq!(adaptive_chunks(&unit, &pivots, base), base.ranges(10));
    }
}
