//! The guard that keeps the pool honest forever: every campaign,
//! re-run with 1, 2 and 8 workers, must produce **byte-identical**
//! `SweepReport` serializations.
//!
//! If a change ever routes scheduling order into results — a reduction
//! by completion order, a seed derived from a shared counter, a
//! thread-local accumulator — the 8-worker rendering drifts from the
//! serial one and this suite turns red. Worker counts deliberately
//! exceed the host's core count; oversubscription maximizes interleaving
//! without affecting the contract.

use socbuf_core::{evaluate_policies, PipelineConfig, SizingConfig};
use socbuf_soc::templates;
use socbuf_soc::templates::RandomArchParams;
use socbuf_sweep::{
    parallel_policy_comparison, BudgetSweep, LoadSweep, RandomCampaign, SweepReport, WorkPool,
};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs `campaign` under every worker count and asserts the reports and
/// both renderings are identical to the serial baseline.
fn assert_scheduling_independent(label: &str, campaign: impl Fn(&WorkPool) -> SweepReport) {
    let baseline = campaign(&WorkPool::new(WORKER_COUNTS[0]));
    let base_csv = baseline.to_csv();
    let base_jsonl = baseline.to_jsonl();
    for workers in &WORKER_COUNTS[1..] {
        let report = campaign(&WorkPool::new(*workers));
        assert_eq!(
            report, baseline,
            "{label}: structured report drifted at {workers} workers"
        );
        assert_eq!(
            report.to_csv(),
            base_csv,
            "{label}: CSV bytes drifted at {workers} workers"
        );
        assert_eq!(
            report.to_jsonl(),
            base_jsonl,
            "{label}: JSONL bytes drifted at {workers} workers"
        );
    }
}

#[test]
fn budget_sweep_is_worker_count_independent() {
    // `BudgetSweep::new` enables warm chains, so this also pins the
    // warm-start scheduling contract: chunk boundaries are fixed by
    // item index, so the chain each item joins — and therefore its
    // solver path, pivot counts and rendered bytes — cannot depend on
    // the worker count.
    let arch = templates::amba();
    assert_scheduling_independent("warm budget sweep", |pool| {
        let mut sweep = BudgetSweep::new(&arch, vec![10, 12, 16, 20, 24, 32, 40]);
        sweep.sizing = SizingConfig::small();
        sweep.run(pool).unwrap()
    });
}

#[test]
fn cold_budget_sweep_is_worker_count_independent() {
    // The pre-warm scheduling path (one item per pool slot) stays
    // covered too.
    let arch = templates::amba();
    assert_scheduling_independent("cold budget sweep", |pool| {
        let mut sweep = BudgetSweep::new(&arch, vec![10, 12, 16, 20, 24, 32, 40]);
        sweep.sizing = SizingConfig::small();
        sweep.warm_start = false;
        sweep.run(pool).unwrap()
    });
}

#[test]
fn simulated_budget_sweep_is_worker_count_independent() {
    // The simulating variant also exercises replication seeding: every
    // point runs the three-policy comparison.
    let arch = templates::figure1();
    assert_scheduling_independent("simulated budget sweep", |pool| {
        let mut sweep = BudgetSweep::new(&arch, vec![16, 22, 30]);
        sweep.sizing = SizingConfig::small();
        sweep.simulate = Some(PipelineConfig::small());
        sweep.run(pool).unwrap()
    });
}

#[test]
fn load_sweep_is_worker_count_independent() {
    // Warm chains on (the default): load chains re-scale the cached LP
    // in place, which must not introduce any worker-count dependence.
    let arch = templates::coreconnect();
    assert_scheduling_independent("warm load sweep", |pool| {
        let mut sweep = LoadSweep::new(&arch, 20, vec![0.5, 0.75, 1.0, 1.25, 1.5]);
        sweep.sizing = SizingConfig::small();
        sweep.run(pool).unwrap()
    });
}

#[test]
fn random_campaign_is_worker_count_independent() {
    assert_scheduling_independent("random campaign", |pool| {
        let mut campaign = RandomCampaign::new((0..8).collect());
        campaign.params = RandomArchParams::default();
        campaign.sizing = SizingConfig::small();
        campaign.run(pool).unwrap()
    });
}

#[test]
fn decomposed_engine_sweep_is_worker_count_independent() {
    // The decomposed LP engine adds a second tier of parallelism: the
    // campaign attaches the pool as the engine's block executor, so a
    // serial campaign fans block solves out while a parallel campaign
    // degrades them to serial (the `IN_POOL` guard). Both tiers must
    // leave the report bytes untouched — executors change wall time,
    // never results.
    let arch = templates::amba();
    assert_scheduling_independent("decomposed budget sweep", |pool| {
        let mut sweep = BudgetSweep::new(&arch, vec![10, 12, 16, 20, 24, 32, 40]);
        sweep.sizing = SizingConfig::small();
        sweep.sizing.engine = socbuf_core::LpEngine::Decomposed;
        sweep.run(pool).unwrap()
    });
}

#[test]
fn decomposed_engine_load_sweep_is_worker_count_independent() {
    // Load chains re-scale the cached LP in place and warm-start the
    // decomposed engine from the previous point's joint basis; none of
    // that may depend on which tier the block solves ran on.
    let arch = templates::coreconnect();
    assert_scheduling_independent("decomposed load sweep", |pool| {
        let mut sweep = LoadSweep::new(&arch, 20, vec![0.5, 0.75, 1.0, 1.25, 1.5]);
        sweep.sizing = SizingConfig::small();
        sweep.sizing.engine = socbuf_core::LpEngine::Decomposed;
        sweep.run(pool).unwrap()
    });
}

#[test]
fn pooled_replications_match_the_serial_pipeline_bit_for_bit() {
    // The pipeline hook: evaluate_policies with its replications spread
    // over 8 workers equals the plain serial call, field for field.
    let arch = templates::figure1();
    let config = PipelineConfig::small();
    let serial = evaluate_policies(&arch, 22, &config).unwrap();
    for workers in WORKER_COUNTS {
        let pooled =
            parallel_policy_comparison(&arch, 22, &config, &WorkPool::new(workers)).unwrap();
        assert_eq!(serial.pre, pooled.pre, "{workers} workers: pre drifted");
        assert_eq!(serial.post, pooled.post, "{workers} workers: post drifted");
        assert_eq!(
            serial.timeout, pooled.timeout,
            "{workers} workers: timeout drifted"
        );
        assert_eq!(
            serial.outcome.allocation.as_slice(),
            pooled.outcome.allocation.as_slice()
        );
    }
}

#[test]
fn actor_engine_sweep_matches_legacy_byte_for_byte() {
    // On plain architectures the actor engine is a drop-in replacement
    // for the legacy event loop (same draws, same statistics), so an
    // entire simulating campaign must render byte-identically whichever
    // engine the pipeline config names — and under `Auto`, which
    // dispatches plain architectures to the legacy engine.
    let arch = templates::figure1();
    let run = |engine: socbuf_core::SimEngine| {
        let mut sweep = BudgetSweep::new(&arch, vec![16, 22, 30]);
        sweep.sizing = SizingConfig::small();
        sweep.simulate = Some(PipelineConfig {
            sim_engine: engine,
            ..PipelineConfig::small()
        });
        sweep.run(&WorkPool::new(4)).unwrap()
    };
    let legacy = run(socbuf_core::SimEngine::Legacy);
    let actors = run(socbuf_core::SimEngine::Actors);
    let auto = run(socbuf_core::SimEngine::Auto);
    assert_eq!(legacy.to_csv(), actors.to_csv());
    assert_eq!(legacy.to_jsonl(), actors.to_jsonl());
    assert_eq!(legacy.to_csv(), auto.to_csv());
}

#[test]
fn extended_architecture_sweep_is_worker_count_independent() {
    // Extended semantics (priority arbitration, bursty flows) only run
    // on the actor engine; the determinism contract must hold there too.
    let mut b = socbuf_soc::ArchitectureBuilder::new();
    let x = b
        .add_bus_with_arbitration("x", 4.0, socbuf_soc::BusArbitration::Priority)
        .unwrap();
    let p = b.add_processor("p", &[x], 1.0).unwrap();
    let q = b.add_processor("q", &[x], 1.0).unwrap();
    b.add_flow_shaped(
        p,
        socbuf_soc::FlowTarget::Bus(x),
        0.9,
        socbuf_soc::TrafficShape::Burst { batch: 4 },
    )
    .unwrap();
    b.add_flow(q, socbuf_soc::FlowTarget::Bus(x), 0.7).unwrap();
    let arch = b.build().unwrap();
    assert!(arch.uses_extended_semantics());
    assert_scheduling_independent("extended budget sweep", |pool| {
        let mut sweep = BudgetSweep::new(&arch, vec![8, 12, 16]);
        sweep.sizing = SizingConfig::small();
        sweep.simulate = Some(PipelineConfig::small());
        sweep.run(pool).unwrap()
    });
}

#[test]
fn renderings_are_stable_across_reruns() {
    // Same campaign, same process, two runs: byte-identical (no hidden
    // global state, no time- or address-dependent output).
    let arch = templates::amba();
    let run = || {
        let mut sweep = BudgetSweep::new(&arch, vec![12, 18, 24]);
        sweep.sizing = SizingConfig::small();
        sweep.run(&WorkPool::new(4)).unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.to_jsonl(), b.to_jsonl());
}
