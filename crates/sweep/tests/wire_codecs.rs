//! Property tests for the sharding wire codecs: manifests, chunk
//! reports, and basis snapshots must (a) round-trip byte-identically —
//! the merge reducer's byte-parity contract rests on render∘parse
//! being the identity — and (b) reject malformed payloads with
//! structured errors, never panics: truncations, duplicate keys,
//! overlapping or gapped chunk ranges, stale config hashes, foreign
//! fields.

use proptest::collection::vec;
use proptest::prelude::*;

use socbuf_core::wire::{
    basis_snapshot_from_json, basis_snapshot_to_json, CampaignManifest, ChunkJsonlReader,
    ChunkJsonlWriter, ChunkLine, ChunkReport, JsonValue, ManifestShape, WireError,
};
use socbuf_core::{BasisSnapshot, LpEngine, SizingConfig};
use socbuf_soc::templates::{self, RandomArchParams};

fn small() -> SizingConfig {
    SizingConfig::small()
}

/// Builds one of the three manifest shapes from sampled primitives
/// (shape variety is what the codecs care about; the metamorphic suite
/// owns random-architecture coverage, so template architectures do).
fn shape_from(
    sel: usize,
    arch_sel: usize,
    len: usize,
    budgets: &[usize],
    factors: &[f64],
    seeds: &[usize],
    warm_start: bool,
) -> ManifestShape {
    let arch = match arch_sel % 3 {
        0 => templates::amba(),
        1 => templates::coreconnect(),
        _ => templates::figure1(),
    };
    match sel % 3 {
        0 => ManifestShape::Budget {
            arch,
            budgets: budgets[..len.min(budgets.len())].to_vec(),
            warm_start,
        },
        1 => ManifestShape::Load {
            arch,
            budget: budgets[0],
            factors: factors[..len.min(factors.len())].to_vec(),
            warm_start,
        },
        _ => ManifestShape::Random {
            params: RandomArchParams::default(),
            seeds: seeds[..len.min(seeds.len())]
                .iter()
                .map(|&s| s as u64)
                .collect(),
            units_per_queue: 1 + budgets[0] % 8,
        },
    }
}

/// A synthetic chunk report: the codec treats points as opaque objects
/// (only `index` integrity and the absence of `frontier` matter), so
/// arbitrary payload fields exercise it fully without running solves.
fn report_from(config_hash: u64, kind: usize, start: usize, payloads: &[f64]) -> ChunkReport {
    let points = payloads
        .iter()
        .enumerate()
        .map(|(i, value)| {
            JsonValue::parse(&format!("{{\"index\":{},\"payload\":{value}}}", start + i))
                .expect("synthetic point is valid JSON")
        })
        .collect();
    ChunkReport {
        config_hash,
        kind: ["budget", "load", "random"][kind % 3].to_string(),
        chunk: start / payloads.len().max(1),
        start,
        end: start + payloads.len(),
        points,
    }
}

fn snapshot_from(cols: usize, raw_rows: &[usize], revised: bool) -> BasisSnapshot {
    // Map the raw samples into the snapshot's domain: even draws become
    // in-range basic columns, odd draws inactive rows (`usize::MAX`).
    let rows = raw_rows
        .iter()
        .map(|&r| {
            if r % 2 == 0 {
                (r / 2) % cols
            } else {
                usize::MAX
            }
        })
        .collect::<Vec<_>>();
    let engine = if revised {
        LpEngine::Revised
    } else {
        LpEngine::Tableau
    };
    BasisSnapshot::new(rows, cols, engine)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn manifest_round_trips_byte_identically(
        sel in 0usize..3,
        arch_sel in 0usize..3,
        len in 1usize..=16,
        budgets in vec(1usize..200, 16),
        factors in vec(0.1f64..2.0, 16),
        seeds in vec(0usize..1_000_000_000, 16),
        warm_start in proptest::bool::ANY,
    ) {
        let shape = shape_from(sel, arch_sel, len, &budgets, &factors, &seeds, warm_start);
        let manifest = CampaignManifest::new(shape, small()).unwrap();
        let bytes = manifest.to_json();
        let parsed = CampaignManifest::from_json(&JsonValue::parse(&bytes).unwrap()).unwrap();
        prop_assert_eq!(parsed.to_json(), bytes);
        prop_assert_eq!(parsed.config_hash, manifest.config_hash);
        prop_assert_eq!(parsed.chunks, manifest.chunks);
    }

    #[test]
    fn truncated_manifest_payloads_error_instead_of_panicking(
        sel in 0usize..3,
        arch_sel in 0usize..3,
        len in 1usize..=16,
        budgets in vec(1usize..200, 16),
        factors in vec(0.1f64..2.0, 16),
        seeds in vec(0usize..1_000_000_000, 16),
        warm_start in proptest::bool::ANY,
        frac in 0.0f64..1.0,
    ) {
        let shape = shape_from(sel, arch_sel, len, &budgets, &factors, &seeds, warm_start);
        let bytes = CampaignManifest::new(shape, small()).unwrap().to_json();
        // Canonical renderings are ASCII, so every byte index is a
        // char boundary; any proper prefix must fail to parse.
        let cut = (((bytes.len() as f64) * frac) as usize).min(bytes.len() - 1);
        prop_assert!(JsonValue::parse(&bytes[..cut]).is_err(), "prefix of {cut} bytes parsed");
    }

    #[test]
    fn duplicate_keys_are_rejected_at_parse(
        sel in 0usize..3,
        arch_sel in 0usize..3,
        len in 1usize..=16,
        budgets in vec(1usize..200, 16),
        factors in vec(0.1f64..2.0, 16),
        seeds in vec(0usize..1_000_000_000, 16),
        warm_start in proptest::bool::ANY,
    ) {
        let shape = shape_from(sel, arch_sel, len, &budgets, &factors, &seeds, warm_start);
        let bytes = CampaignManifest::new(shape, small()).unwrap().to_json();
        // Splice a second "chunk_len" field in front of the real one.
        let needle = ",\"chunk_len\":";
        let at = bytes.find(needle).expect("manifest renders chunk_len");
        let dup = format!("{},\"chunk_len\":999{}", &bytes[..at], &bytes[at..]);
        match JsonValue::parse(&dup) {
            Err(WireError::Parse { message, .. }) => prop_assert!(
                message.contains("duplicate key"),
                "wrong parse error: {message}"
            ),
            other => panic!("duplicate key accepted: {other:?}"),
        }
    }

    #[test]
    fn tampered_chunk_partitions_are_rejected_with_named_violations(
        sel in 0usize..3,
        arch_sel in 0usize..3,
        len in 1usize..=16,
        budgets in vec(1usize..200, 16),
        factors in vec(0.1f64..2.0, 16),
        seeds in vec(0usize..1_000_000_000, 16),
        warm_start in proptest::bool::ANY,
        which in 0usize..3,
    ) {
        let shape = shape_from(sel, arch_sel, len, &budgets, &factors, &seeds, warm_start);
        let manifest = CampaignManifest::new(shape, small()).unwrap();
        let mut tampered = manifest.clone();
        let last = tampered.chunks.len() - 1;
        let expect = match which {
            // Stretch the last chunk past the item count.
            0 => {
                tampered.chunks[last].end += 1;
                Some("scheduling policy requires")
            }
            // Shift a start forward: a coverage gap (unless the chunk
            // degenerates to empty, where the end check fires first —
            // skip rather than special-case).
            1 => {
                tampered.chunks[last].start += 1;
                (tampered.chunks[last].start < tampered.chunks[last].end)
                    .then_some("coverage gap")
            }
            // Shift a start backward: overlapping ranges (needs a
            // predecessor to overlap into).
            _ => {
                if tampered.chunks[last].start == 0 {
                    None
                } else {
                    tampered.chunks[last].start -= 1;
                    Some("overlapping chunk ranges")
                }
            }
        };
        if let Some(expect) = expect {
            let rendered = tampered.to_json();
            match CampaignManifest::from_json(&JsonValue::parse(&rendered).unwrap()) {
                Err(WireError::Schema(msg)) => prop_assert!(
                    msg.contains(expect),
                    "expected \"{expect}\" in: {msg}"
                ),
                other => panic!("tampered partition accepted: {other:?}"),
            }
        }
    }

    #[test]
    fn stale_config_hashes_are_rejected(
        sel in 0usize..3,
        arch_sel in 0usize..3,
        len in 1usize..=16,
        budgets in vec(1usize..200, 16),
        factors in vec(0.1f64..2.0, 16),
        seeds in vec(0usize..1_000_000_000, 16),
        warm_start in proptest::bool::ANY,
        flip in 0usize..64,
    ) {
        let shape = shape_from(sel, arch_sel, len, &budgets, &factors, &seeds, warm_start);
        let mut manifest = CampaignManifest::new(shape, small()).unwrap();
        manifest.config_hash ^= 1u64 << flip;
        let rendered = manifest.to_json();
        match CampaignManifest::from_json(&JsonValue::parse(&rendered).unwrap()) {
            Err(WireError::Schema(msg)) => prop_assert!(
                msg.contains("stale config hash"),
                "wrong error: {msg}"
            ),
            other => panic!("stale hash accepted: {other:?}"),
        }
    }

    #[test]
    fn chunk_report_round_trips_in_both_renderings(
        config_hash in 0usize..1_000_000_000,
        kind in 0usize..3,
        start in 0usize..50,
        len in 1usize..=5,
        payloads in vec(0.0f64..10.0, 5),
    ) {
        let report = report_from(config_hash as u64, kind, start, &payloads[..len]);
        let json = report.to_json();
        let via_json = ChunkReport::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        prop_assert_eq!(via_json.to_json(), json.clone());
        prop_assert_eq!(&via_json, &report);

        let jsonl = report.to_jsonl();
        let via_jsonl = ChunkReport::from_jsonl(&jsonl).unwrap();
        prop_assert_eq!(via_jsonl.to_jsonl(), jsonl);
        prop_assert_eq!(&via_jsonl, &report);
    }

    #[test]
    fn corrupted_chunk_reports_are_rejected(
        config_hash in 0usize..1_000_000_000,
        kind in 0usize..3,
        start in 0usize..50,
        len in 2usize..=5,
        payloads in vec(0.0f64..10.0, 5),
        which in 0usize..4,
    ) {
        let report = report_from(config_hash as u64, kind, start, &payloads[..len]);
        let mut bad = report.clone();
        let expect = match which {
            // Drop a point: count no longer covers the range.
            0 => {
                bad.points.pop();
                "needs"
            }
            // Renumber a point: index integrity.
            1 => {
                let mut p = String::new();
                bad.points[0].push(&mut p);
                bad.points[0] = JsonValue::parse(&p.replacen(
                    &format!("\"index\":{}", bad.start),
                    &format!("\"index\":{}", bad.start + 7000),
                    1,
                )).unwrap();
                "expected"
            }
            // A point claiming the global frontier flag (points are
            // flat objects, so the first '}' closes them).
            2 => {
                let mut p = String::new();
                bad.points[0].push(&mut p);
                bad.points[0] =
                    JsonValue::parse(&p.replacen('}', ",\"frontier\":true}", 1)).unwrap();
                "frontier"
            }
            // A reversed (empty) range.
            _ => {
                bad.end = bad.start;
                bad.points.clear();
                "empty range"
            }
        };
        let rendered = bad.to_json();
        match ChunkReport::from_json(&JsonValue::parse(&rendered).unwrap()) {
            Err(WireError::Schema(msg)) => prop_assert!(
                msg.contains(expect),
                "expected \"{expect}\" in: {msg}"
            ),
            other => panic!("corrupted report accepted: {other:?}"),
        }
    }

    #[test]
    fn incremental_jsonl_codec_agrees_with_the_batch_renderings(
        config_hash in 0usize..1_000_000_000,
        kind in 0usize..3,
        start in 0usize..50,
        len in 1usize..=5,
        payloads in vec(0.0f64..10.0, 5),
    ) {
        let report = report_from(config_hash as u64, kind, start, &payloads[..len]);

        // Writer side: header line + one line per point concatenates
        // to exactly the batch `to_jsonl` bytes.
        let mut writer = ChunkJsonlWriter::new(
            report.config_hash,
            &report.kind,
            report.chunk,
            report.start,
            report.end,
        )
        .unwrap();
        let mut doc = writer.header_line();
        for (i, point) in report.points.iter().enumerate() {
            prop_assert_eq!(writer.remaining(), report.points.len() - i);
            doc.push_str(&writer.point_line(point).unwrap());
        }
        writer.finish().unwrap();
        prop_assert_eq!(&doc, &report.to_jsonl());

        // Reader side: line-by-line parse reconstructs the identity
        // and every point, and agrees the document is complete.
        let mut reader = ChunkJsonlReader::new();
        let mut lines = doc.lines();
        match reader.push_line(lines.next().unwrap()).unwrap() {
            ChunkLine::Header { config_hash, kind, chunk, start, end } => {
                prop_assert_eq!(config_hash, report.config_hash);
                prop_assert_eq!(kind, report.kind.clone());
                prop_assert_eq!(chunk, report.chunk);
                prop_assert_eq!(start, report.start);
                prop_assert_eq!(end, report.end);
            }
            other => panic!("first line must be the header, got {other:?}"),
        }
        for (i, line) in lines.enumerate() {
            prop_assert!(!reader.is_complete());
            match reader.push_line(line).unwrap() {
                ChunkLine::Point { index, point } => {
                    prop_assert_eq!(index, report.start + i);
                    let mut rendered = String::new();
                    point.push(&mut rendered);
                    let mut expected = String::new();
                    report.points[i].push(&mut expected);
                    prop_assert_eq!(rendered, expected);
                }
                other => panic!("point line parsed as {other:?}"),
            }
        }
        prop_assert!(reader.is_complete());
        reader.finish().unwrap();
    }

    #[test]
    fn incremental_codec_rejects_what_the_batch_parser_rejects(
        config_hash in 0usize..1_000_000_000,
        kind in 0usize..3,
        start in 0usize..50,
        len in 2usize..=5,
        payloads in vec(0.0f64..10.0, 5),
        which in 0usize..4,
    ) {
        let report = report_from(config_hash as u64, kind, start, &payloads[..len]);
        let doc = report.to_jsonl();
        let mut lines: Vec<String> = doc.lines().map(str::to_string).collect();
        let expect = match which {
            // Shortfall: the last point line never arrives.
            0 => {
                lines.pop();
                "needs"
            }
            // Renumbered point.
            1 => {
                lines[1] = lines[1].replacen(
                    &format!("\"index\":{}", report.start),
                    &format!("\"index\":{}", report.start + 7000),
                    1,
                );
                "expected"
            }
            // A point smuggling the global frontier flag.
            2 => {
                lines[1] = lines[1].replacen('}', ",\"frontier\":true}", 1);
                "frontier"
            }
            // One point line too many.
            _ => {
                lines.push(lines[len].clone());
                "needs"
            }
        };
        let mut reader = ChunkJsonlReader::new();
        let outcome: Result<(), WireError> = (|| {
            for line in &lines {
                reader.push_line(line)?;
            }
            reader.finish()
        })();
        match outcome {
            Err(WireError::Schema(msg)) => prop_assert!(
                msg.contains(expect),
                "expected \"{expect}\" in: {msg}"
            ),
            other => panic!("corrupted stream accepted: {other:?}"),
        }
    }

    #[test]
    fn basis_snapshot_round_trips(
        cols in 1usize..64,
        raw_rows in vec(0usize..256, 24),
        rows_used in 0usize..=24,
        revised in proptest::bool::ANY,
    ) {
        let snapshot = snapshot_from(cols, &raw_rows[..rows_used], revised);
        let bytes = basis_snapshot_to_json(&snapshot);
        let parsed = basis_snapshot_from_json(&JsonValue::parse(&bytes).unwrap()).unwrap();
        prop_assert_eq!(basis_snapshot_to_json(&parsed), bytes);
        prop_assert_eq!(parsed.rows(), snapshot.rows());
        prop_assert_eq!(parsed.num_cols(), snapshot.num_cols());
    }

    #[test]
    fn basis_entries_beyond_the_column_count_are_rejected(
        cols in 1usize..64,
        raw_rows in vec(0usize..256, 8),
        revised in proptest::bool::ANY,
        excess in 0usize..10,
    ) {
        let snapshot = snapshot_from(cols, &raw_rows, revised);
        // Splice an out-of-range basic column in front of the rest.
        let json = basis_snapshot_to_json(&snapshot).replacen(
            "{\"basis\":[",
            &format!("{{\"basis\":[{},", cols + excess),
            1,
        );
        match basis_snapshot_from_json(&JsonValue::parse(&json).unwrap()) {
            Err(WireError::Schema(msg)) => prop_assert!(
                msg.contains("out of range"),
                "wrong error: {msg}"
            ),
            other => panic!("out-of-range basis accepted: {other:?}"),
        }
    }
}

#[test]
fn coarsened_chunk_partitions_are_accepted_and_misaligned_ones_named() {
    // 10 items under warm chains of 4: base partition 0..4, 4..8, 8..10.
    let shape = || ManifestShape::Budget {
        arch: templates::amba(),
        budgets: (0..10).map(|i| 10 + 2 * i).collect(),
        warm_start: true,
    };
    let base = CampaignManifest::new(shape(), small()).unwrap();
    assert_eq!(base.chunks.len(), 3);

    // A union of consecutive base chunks is a valid declared partition
    // with the same config hash, and survives its wire round-trip.
    let coarse = CampaignManifest::with_chunks(shape(), small(), vec![0..8, 8..10]).unwrap();
    assert_eq!(coarse.config_hash, base.config_hash);
    let parsed =
        CampaignManifest::from_json(&JsonValue::parse(&coarse.to_json()).unwrap()).unwrap();
    assert_eq!(parsed.chunks, coarse.chunks);

    // Boundaries off the base chain grid are refused by name…
    match CampaignManifest::with_chunks(shape(), small(), vec![0..6, 6..10]) {
        Err(WireError::Schema(msg)) => {
            assert!(msg.contains("scheduling policy requires"), "{msg}")
        }
        other => panic!("misaligned partition accepted: {other:?}"),
    }
    // …as are gaps and overlaps between declared chunks.
    match CampaignManifest::with_chunks(shape(), small(), vec![0..4, 8..10]) {
        Err(WireError::Schema(msg)) => assert!(msg.contains("coverage gap"), "{msg}"),
        other => panic!("gapped partition accepted: {other:?}"),
    }
    match CampaignManifest::with_chunks(shape(), small(), vec![0..8, 4..10]) {
        Err(WireError::Schema(msg)) => {
            assert!(msg.contains("overlapping chunk ranges"), "{msg}")
        }
        other => panic!("overlapping partition accepted: {other:?}"),
    }
    let short_partition = vec![std::ops::Range { start: 0, end: 8 }];
    match CampaignManifest::with_chunks(shape(), small(), short_partition) {
        Err(WireError::Schema(msg)) => assert!(msg.contains("coverage gap"), "{msg}"),
        other => panic!("short partition accepted: {other:?}"),
    }
}
