//! Metamorphic properties of the sizing pipeline, driven through the
//! sweep engine over random architectures.
//!
//! Unit tests pin *values*; these properties pin *relations* that must
//! hold for every architecture the generator can produce:
//!
//! * **monotone in budget** — a bigger buffer pool is a relaxation of
//!   the sizing LP, so the predicted loss along a [`BudgetSweep`] never
//!   increases (compared across points whose budget row survived);
//! * **scale invariance** — multiplying every λ and μ by the same
//!   factor is a pure change of time unit: the allocation must not move
//!   (dyadic factors keep the float scaling exact, so the assertion can
//!   be bitwise);
//! * **permutation equivariance** — reordering processor/flow
//!   declarations relabels queues but must not change anyone's buffer:
//!   the allocation follows the queues wherever they land.
//!
//! Each property runs over ≥ 32 random-architecture seeds (the
//! acceptance bar for the sweep engine PR).

use proptest::prelude::*;

use socbuf_core::{size_buffers, SizingConfig};
use socbuf_soc::templates::{random_architecture, RandomArchParams};
use socbuf_soc::{Architecture, ArchitectureBuilder, FlowTarget};
use socbuf_sweep::{BudgetSweep, WorkPool};

fn small() -> SizingConfig {
    SizingConfig::small()
}

/// Rebuilds `arch` with processors declared in `perm_p` order and flows
/// declared in `perm_f` order (buses and bridges keep their order;
/// routing only depends on those).
fn permuted_declaration(arch: &Architecture, perm_p: &[usize], perm_f: &[usize]) -> Architecture {
    let mut b = ArchitectureBuilder::new();
    let buses: Vec<_> = arch
        .bus_ids()
        .map(|id| {
            b.add_bus(arch.bus(id).name(), arch.bus(id).service_rate())
                .expect("valid bus")
        })
        .collect();
    let old_proc_ids: Vec<_> = arch.proc_ids().collect();
    let old_flow_ids: Vec<_> = arch.flow_ids().collect();
    let mut new_proc_of_old = vec![None; perm_p.len()];
    let mut new_procs = Vec::with_capacity(perm_p.len());
    for &oldi in perm_p {
        let p = arch.processor(old_proc_ids[oldi]);
        let attach: Vec<_> = p.buses().iter().map(|bid| buses[bid.index()]).collect();
        let id = b
            .add_processor(p.name(), &attach, p.weight())
            .expect("valid processor");
        new_proc_of_old[oldi] = Some(new_procs.len());
        new_procs.push(id);
    }
    for id in arch.bridge_ids() {
        let g = arch.bridge(id);
        b.add_bridge(g.name(), buses[g.from().index()], buses[g.to().index()])
            .expect("valid bridge");
    }
    for &oldf in perm_f {
        let f = arch.flow(old_flow_ids[oldf]);
        let map_proc = |p: socbuf_soc::ProcId| {
            new_procs[new_proc_of_old[p.index()].expect("every processor declared")]
        };
        let target = match f.target() {
            FlowTarget::Processor(p) => FlowTarget::Processor(map_proc(p)),
            FlowTarget::Bus(bus) => FlowTarget::Bus(buses[bus.index()]),
        };
        b.add_flow(map_proc(f.src()), target, f.rate())
            .expect("routable in the original, routable here");
    }
    b.build().expect("permuted declaration still builds")
}

/// Deterministic Fisher–Yates permutation of `0..n` keyed by `key`.
fn shuffled(n: usize, mut key: u64) -> Vec<usize> {
    let mut next = move || {
        key = key.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = key;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// More budget never predicts more loss along a budget sweep.
    /// Asserted on a cold-started sweep: with every point solved by the
    /// identical cold path, adjacent points share their solver noise
    /// and the comparison can be held to 1e-9. (The warm-started
    /// variant has its own property below with a noise-scaled guard.)
    #[test]
    fn predicted_loss_is_monotone_in_budget(seed in 0usize..10_000) {
        let arch = random_architecture(seed as u64, &RandomArchParams::default());
        let base = 3 * arch.num_queues();
        let mut sweep = BudgetSweep::new(
            &arch,
            vec![base, base + 2, base + 5, base + 10, base + 20],
        );
        sweep.sizing = small();
        sweep.warm_start = false;
        let report = sweep.run(&WorkPool::serial()).unwrap();
        // Points whose budget row had to be relaxed solve a *loosened*
        // problem; their losses are not comparable on the same axis.
        let kept: Vec<_> = report
            .points
            .iter()
            .filter(|p| !p.budget_row_relaxed)
            .collect();
        for pair in kept.windows(2) {
            prop_assert!(
                pair[1].predicted_loss <= pair[0].predicted_loss
                    + 1e-9 * (1.0 + pair[0].predicted_loss),
                "seed {seed}: loss rose {} -> {} between budgets {} and {}",
                pair[0].predicted_loss,
                pair[1].predicted_loss,
                pair[0].budget,
                pair[1].budget
            );
        }
        // The sweep's frontier is consistent with monotonicity: its
        // losses strictly decrease along increasing budget.
        let frontier = report.pareto_frontier();
        for pair in frontier.windows(2) {
            prop_assert!(
                report.points[pair[1]].predicted_loss < report.points[pair[0]].predicted_loss
            );
        }
    }

    /// The warm-started sweep keeps the same monotone shape. Warm and
    /// cold solves of one point agree to solver precision (both end on
    /// a strict primal-feasible optimal basis of the same perturbed
    /// problem), so the guard is only slightly looser than the cold
    /// property's: 1e-6-relative, covering the one legitimate
    /// divergence left — a warm chain that converges at an earlier
    /// perturbation-ladder rung than its cold twin solves a less
    /// perturbed problem.
    #[test]
    fn warm_started_loss_is_monotone_up_to_solver_noise(seed in 0usize..10_000) {
        let arch = random_architecture(seed as u64, &RandomArchParams::default());
        let base = 3 * arch.num_queues();
        let mut sweep = BudgetSweep::new(
            &arch,
            vec![base, base + 2, base + 5, base + 10, base + 20],
        );
        sweep.sizing = small();
        let report = sweep.run(&WorkPool::serial()).unwrap();
        let kept: Vec<_> = report
            .points
            .iter()
            .filter(|p| !p.budget_row_relaxed)
            .collect();
        for pair in kept.windows(2) {
            prop_assert!(
                pair[1].predicted_loss <= pair[0].predicted_loss
                    + 1e-6 * (1.0 + pair[0].predicted_loss),
                "seed {seed}: warm loss rose {} -> {} between budgets {} and {}",
                pair[0].predicted_loss,
                pair[1].predicted_loss,
                pair[0].budget,
                pair[1].budget
            );
        }
    }

    /// Scaling every λ and μ by the same dyadic factor changes the time
    /// unit, not the decision: the allocation is bit-identical.
    #[test]
    fn allocation_is_invariant_under_common_rate_scaling(
        seed in 0usize..10_000,
        factor_sel in 0usize..3,
    ) {
        let factor = [0.5, 2.0, 4.0][factor_sel];
        let arch = random_architecture(seed as u64, &RandomArchParams::default());
        let budget = 3 * arch.num_queues();
        let nominal = size_buffers(&arch, budget, &small()).unwrap();
        let scaled_arch = arch.scale_rates(factor, factor).unwrap();
        let scaled = size_buffers(&scaled_arch, budget, &small()).unwrap();
        prop_assert_eq!(
            nominal.allocation.as_slice(),
            scaled.allocation.as_slice(),
            "seed {}: allocation moved under ×{} time rescaling",
            seed,
            factor
        );
        // The loss *rate* carries the time unit: it scales ≈ linearly.
        // Only ≈ — the LP's degeneracy-breaking rhs perturbation is
        // absolute (≈1e-6-scale) and does not scale with the data, so
        // the check needs losses big enough to dominate it and a
        // generous band; the bitwise allocation assert above is the
        // real property.
        if nominal.predicted_loss_rate > 1e-4 {
            let ratio = scaled.predicted_loss_rate / nominal.predicted_loss_rate;
            prop_assert!(
                (ratio / factor - 1.0).abs() < 0.5,
                "seed {seed}: loss ratio {ratio} vs factor {factor}"
            );
        }
    }

    /// Permuting processor/flow declaration order permutes the
    /// allocation accordingly: every queue keeps its buffer, wherever
    /// its index lands.
    #[test]
    fn allocation_is_equivariant_under_declaration_permutation(
        seed in 0usize..10_000,
        perm_key in 0usize..1_000_000,
    ) {
        let arch = random_architecture(seed as u64, &RandomArchParams::default());
        let budget = 3 * arch.num_queues();
        let out = size_buffers(&arch, budget, &small()).unwrap();

        let perm_p = shuffled(arch.num_processors(), perm_key as u64);
        let perm_f = shuffled(arch.num_flows(), (perm_key as u64) ^ 0xabcdef);
        let parch = permuted_declaration(&arch, &perm_p, &perm_f);
        prop_assert_eq!(parch.num_queues(), arch.num_queues());
        let pout = size_buffers(&parch, budget, &small()).unwrap();

        // Queues are matched by their (client, bus) name, which is
        // declaration-order independent.
        for q in arch.queue_ids() {
            let name = arch.queue_name(q);
            let pq = parch
                .queue_ids()
                .find(|&pq| parch.queue_name(pq) == name)
                .expect("same queue set");
            prop_assert_eq!(
                out.allocation.as_slice()[q.index()],
                pout.allocation.as_slice()[pq.index()],
                "seed {}, perm {}: queue {} changed its buffer",
                seed,
                perm_key,
                name
            );
            prop_assert_eq!(
                out.requirements[q.index()],
                pout.requirements[pq.index()],
                "seed {}, perm {}: queue {} changed its requirement",
                seed,
                perm_key,
                name
            );
        }
        prop_assert!(
            (out.predicted_loss_rate - pout.predicted_loss_rate).abs()
                <= 1e-6 * (1.0 + out.predicted_loss_rate),
            "seed {seed}: predicted loss moved under permutation: {} vs {}",
            out.predicted_loss_rate,
            pout.predicted_loss_rate
        );
    }
}

/// The identity permutation is a no-op for the rebuild helper itself
/// (guards the test harness, not the pipeline).
#[test]
fn identity_permutation_rebuilds_the_same_architecture() {
    let arch = random_architecture(11, &RandomArchParams::default());
    let id_p: Vec<usize> = (0..arch.num_processors()).collect();
    let id_f: Vec<usize> = (0..arch.num_flows()).collect();
    let same = permuted_declaration(&arch, &id_p, &id_f);
    assert_eq!(same.num_queues(), arch.num_queues());
    for (a, b) in arch.queue_ids().zip(same.queue_ids()) {
        assert_eq!(arch.queue_name(a), same.queue_name(b));
        assert_eq!(arch.queue(a).offered_rate, same.queue(b).offered_rate);
    }
}
