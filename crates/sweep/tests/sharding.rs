//! The sharded-merge contract: for every campaign shape and every
//! assignment of manifest chunks to executors, merging the chunk
//! reports reproduces the serial single-host report **byte for byte**
//! (CSV and JSONL), and the reducer refuses incomplete, overlapping,
//! or foreign coverage.

use socbuf_core::wire::{CampaignManifest, ChunkReport, JsonValue};
use socbuf_core::SizingConfig;
use socbuf_soc::templates;
use socbuf_sweep::shard::MergeError;
use socbuf_sweep::{
    execute_manifest_chunk, merge_chunk_reports, plan_manifest, run_manifest, BudgetSweep,
    LoadSweep, RandomCampaign, SweepError, WorkPool,
};

fn small() -> SizingConfig {
    SizingConfig::small()
}

/// A budget manifest spanning three chunks (10 items, warm chains of 4).
fn budget_manifest(arch: &socbuf_soc::Architecture) -> CampaignManifest {
    let mut sweep = BudgetSweep::new(arch, vec![10, 12, 14, 16, 18, 20, 24, 28, 32, 40]);
    sweep.sizing = small();
    sweep.manifest().unwrap()
}

/// Executes every chunk of `manifest` and returns the reports in the
/// order given by `order` (a permutation of chunk indices).
fn all_chunks(manifest: &CampaignManifest, order: &[usize]) -> Vec<ChunkReport> {
    let pool = WorkPool::serial();
    order
        .iter()
        .map(|&c| execute_manifest_chunk(manifest, c, &pool, None).unwrap())
        .collect()
}

#[test]
fn budget_merge_is_byte_identical_for_any_chunk_assignment() {
    let arch = templates::amba();
    let manifest = budget_manifest(&arch);
    assert_eq!(manifest.chunks.len(), 3);
    let serial = run_manifest(&manifest, &WorkPool::serial()).unwrap();

    // Any permutation of report arrival order — including the "shard A
    // ran {0,2}, shard B ran {1}" split the smoke probe exercises —
    // must merge to the same bytes.
    for order in [vec![0, 1, 2], vec![2, 0, 1], vec![1, 2, 0]] {
        let merged = merge_chunk_reports(&manifest, &all_chunks(&manifest, &order)).unwrap();
        assert_eq!(merged.to_csv(), serial.to_csv(), "order {order:?}");
        assert_eq!(merged.to_jsonl(), serial.to_jsonl(), "order {order:?}");
    }
}

#[test]
fn load_merge_is_byte_identical_across_the_wire() {
    // Round-trip the manifest through its wire rendering before
    // executing — exactly what a shard worker process receives.
    let arch = templates::coreconnect();
    let mut sweep = LoadSweep::new(&arch, 20, vec![0.5, 0.75, 1.0, 1.1, 1.25, 1.5]);
    sweep.sizing = small();
    let manifest = sweep.manifest().unwrap();
    let wire =
        CampaignManifest::from_json(&JsonValue::parse(&manifest.to_json()).unwrap()).unwrap();
    assert_eq!(wire.to_json(), manifest.to_json());

    let serial = run_manifest(&manifest, &WorkPool::serial()).unwrap();
    // Chunk reports round-trip through their JSONL wire form too.
    let reports: Vec<ChunkReport> = (0..wire.chunks.len())
        .map(|c| {
            let r = execute_manifest_chunk(&wire, c, &WorkPool::serial(), None).unwrap();
            ChunkReport::from_jsonl(&r.to_jsonl()).unwrap()
        })
        .collect();
    let merged = merge_chunk_reports(&manifest, &reports).unwrap();
    assert_eq!(merged.to_csv(), serial.to_csv());
    assert_eq!(merged.to_jsonl(), serial.to_jsonl());
}

#[test]
fn random_merge_is_byte_identical() {
    let campaign = RandomCampaign {
        seeds: vec![1, 2, 3, 5, 8],
        sizing: small(),
        ..RandomCampaign::new(vec![])
    };
    let manifest = campaign.manifest().unwrap();
    // Independent policy: one chunk per seed.
    assert_eq!(manifest.chunks.len(), 5);
    let serial = campaign.run(&WorkPool::serial()).unwrap();
    let merged = merge_chunk_reports(&manifest, &all_chunks(&manifest, &[4, 3, 2, 1, 0])).unwrap();
    assert_eq!(merged.to_csv(), serial.to_csv());
    assert_eq!(merged.to_jsonl(), serial.to_jsonl());
}

#[test]
fn manifest_run_matches_campaign_run_for_every_worker_count() {
    let arch = templates::amba();
    let mut sweep = BudgetSweep::new(&arch, vec![10, 12, 14, 16, 18, 20, 24, 28, 32, 40]);
    sweep.sizing = small();
    let direct = sweep.run(&WorkPool::serial()).unwrap();
    let manifest = sweep.manifest().unwrap();
    for workers in [1, 2, 8] {
        let via_manifest = run_manifest(&manifest, &WorkPool::new(workers)).unwrap();
        assert_eq!(via_manifest.to_csv(), direct.to_csv(), "{workers} workers");
        assert_eq!(
            via_manifest.to_jsonl(),
            direct.to_jsonl(),
            "{workers} workers"
        );
    }
}

#[test]
fn reducer_rejects_dropped_duplicated_and_foreign_chunks() {
    let arch = templates::amba();
    let manifest = budget_manifest(&arch);
    let reports = all_chunks(&manifest, &[0, 1, 2]);

    // Dropped chunk → coverage gap.
    match merge_chunk_reports(&manifest, &reports[..2]) {
        Err(MergeError::MissingChunk { chunk: 2 }) => {}
        other => panic!("expected MissingChunk(2), got {other:?}"),
    }

    // Duplicated chunk → overlap.
    let mut dup = reports.clone();
    dup.push(reports[1].clone());
    match merge_chunk_reports(&manifest, &dup) {
        Err(MergeError::DuplicateChunk { chunk: 1 }) => {}
        other => panic!("expected DuplicateChunk(1), got {other:?}"),
    }

    // Stale config hash → foreign campaign.
    let mut stale = reports.clone();
    stale[0].config_hash ^= 1;
    match merge_chunk_reports(&manifest, &stale) {
        Err(MergeError::HashMismatch { chunk: 0, .. }) => {}
        other => panic!("expected HashMismatch(0), got {other:?}"),
    }

    // Tampered range → partition mismatch.
    let mut shifted = reports.clone();
    shifted[2].start += 1;
    match merge_chunk_reports(&manifest, &shifted) {
        Err(MergeError::RangeMismatch { chunk: 2, .. }) => {}
        other => panic!("expected RangeMismatch(2), got {other:?}"),
    }

    // Chunk index beyond the partition.
    let mut unknown = reports.clone();
    unknown[0].chunk = 9;
    match merge_chunk_reports(&manifest, &unknown) {
        Err(MergeError::UnknownChunk { chunk: 9, .. }) => {}
        other => panic!("expected UnknownChunk(9), got {other:?}"),
    }

    // Wrong kind tag.
    let mut foreign = reports.clone();
    foreign[1].kind = "load".into();
    match merge_chunk_reports(&manifest, &foreign) {
        Err(MergeError::KindMismatch { chunk: 1, .. }) => {}
        other => panic!("expected KindMismatch(1), got {other:?}"),
    }
}

#[test]
fn seeded_chunks_agree_with_cold_to_solver_precision() {
    // Basis seeding is the opt-in warm-transfer mode: statuses and
    // objectives must match the unseeded chunk (the LP optimum is
    // unique); pivot counts may differ, which is exactly why seeding
    // stays off the byte-identity path.
    let arch = templates::amba();
    let manifest = budget_manifest(&arch);
    let pool = WorkPool::serial();

    // Harvest a basis by running chunk 0 through a plan and exporting
    // from a warm context built on the same campaign.
    let plan = plan_manifest(&manifest, &pool).unwrap();
    let mut ctx = socbuf_core::SolveContext::new(&arch, &small());
    ctx.size_buffers_scaled(&arch, 1.0, 16).unwrap();
    let snapshot = ctx
        .basis_snapshot()
        .expect("warm context has a basis")
        .clone();

    let cold = plan.execute_chunk(1, None).unwrap();
    let seeded = plan.execute_chunk(1, Some(snapshot)).unwrap();
    assert_eq!(cold.len(), seeded.len());
    for (c, s) in cold.iter().zip(&seeded) {
        assert_eq!(c.index, s.index);
        assert_eq!(c.budget_row_relaxed, s.budget_row_relaxed);
        assert_eq!(c.allocation.iter().sum::<usize>(), c.budget);
        assert_eq!(s.allocation.iter().sum::<usize>(), s.budget);
        assert!(
            (c.predicted_loss - s.predicted_loss).abs() <= 1e-9 * (1.0 + c.predicted_loss.abs()),
            "index {}: cold {} vs seeded {}",
            c.index,
            c.predicted_loss,
            s.predicted_loss
        );
    }
}

#[test]
fn simulation_campaigns_refuse_to_shard() {
    let arch = templates::amba();
    let mut sweep = BudgetSweep::new(&arch, vec![16]);
    sweep.sizing = small();
    sweep.simulate = Some(socbuf_core::PipelineConfig::small());
    match sweep.manifest() {
        Err(SweepError::BadConfig(msg)) => assert!(msg.contains("sizing-only"), "{msg}"),
        other => panic!("expected BadConfig, got {other:?}"),
    }
}
