//! The streaming contract, end to end inside the sweep crate:
//!
//! * streamed renderings (sink → [`ReportStream`]) are byte-identical
//!   to the batch `to_csv`/`to_jsonl` for every campaign shape and
//!   worker count;
//! * the bounded-memory [`StreamingReducer`] merges chunk reports in
//!   **any** arrival order to the batch reducer's bytes, and rejects
//!   duplicated, missing, and tampered frames with the same named
//!   errors;
//! * adaptive re-chunking ([`rechunk_manifest`]) coarsens the
//!   manifest's declared partition without changing a single rendered
//!   byte.

use std::sync::OnceLock;

use proptest::prelude::*;

use socbuf_core::wire::{CampaignManifest, ChunkReport, JsonValue};
use socbuf_core::SizingConfig;
use socbuf_soc::templates;
use socbuf_sweep::{
    execute_manifest_chunk, merge_chunk_reports, rechunk_manifest, run_manifest, run_manifest_sink,
    AdaptivePolicy, BudgetSweep, FileSpool, LoadSweep, MergeError, RandomCampaign, ReportStream,
    StreamingReducer, SweepReport, VecSink, WorkPool,
};

fn small() -> SizingConfig {
    SizingConfig::small()
}

/// The three campaign shapes as manifests, plus their serial batch
/// reports — the reference bytes every streamed path must reproduce.
fn shapes() -> Vec<(CampaignManifest, SweepReport)> {
    let amba = templates::amba();
    let mut budget = BudgetSweep::new(&amba, vec![10, 12, 14, 16, 18, 20, 24, 28, 32, 40]);
    budget.sizing = small();

    let cc = templates::coreconnect();
    let mut load = LoadSweep::new(&cc, 20, vec![0.5, 0.75, 1.0, 1.1, 1.25, 1.5]);
    load.sizing = small();

    let random = RandomCampaign {
        seeds: vec![1, 2, 3, 5, 8],
        sizing: small(),
        ..RandomCampaign::new(vec![])
    };

    [budget.manifest(), load.manifest(), random.manifest()]
        .into_iter()
        .map(|m| {
            let manifest = m.unwrap();
            let serial = run_manifest(&manifest, &WorkPool::serial()).unwrap();
            (manifest, serial)
        })
        .collect()
}

#[test]
fn streamed_renderings_match_batch_bytes_for_every_shape_and_worker_count() {
    for (manifest, serial) in shapes() {
        for workers in [1usize, 2, 8] {
            let pool = WorkPool::new(workers);

            let mut csv = ReportStream::csv(serial.kind, Vec::new());
            let run = run_manifest_sink(&manifest, &pool, &mut csv).unwrap();
            assert_eq!(run.chunks, manifest.chunks.len());
            let (bytes, summary) = csv.finish().unwrap();
            assert_eq!(
                String::from_utf8(bytes).unwrap(),
                serial.to_csv(),
                "csv, {} workers, kind {}",
                workers,
                serial.kind.tag()
            );
            assert_eq!(summary.points, manifest.items());

            let mut jsonl = ReportStream::jsonl(serial.kind, Vec::new());
            run_manifest_sink(&manifest, &pool, &mut jsonl).unwrap();
            let (bytes, _) = jsonl.finish().unwrap();
            assert_eq!(
                String::from_utf8(bytes).unwrap(),
                serial.to_jsonl(),
                "jsonl, {} workers, kind {}",
                workers,
                serial.kind.tag()
            );
        }
    }
}

#[test]
fn a_file_spooled_stream_renders_the_same_bytes_as_the_batch_path() {
    let (manifest, serial) = shapes().swap_remove(0);
    let spool = FileSpool::in_temp_dir().unwrap();
    let mut csv = ReportStream::csv_spooled(serial.kind, Vec::new(), Box::new(spool));
    run_manifest_sink(&manifest, &WorkPool::new(2), &mut csv).unwrap();
    let (bytes, _) = csv.finish().unwrap();
    assert_eq!(String::from_utf8(bytes).unwrap(), serial.to_csv());
}

#[test]
fn campaign_run_sink_collects_exactly_what_run_returns() {
    let arch = templates::coreconnect();
    let mut sweep = LoadSweep::new(&arch, 20, vec![0.5, 0.75, 1.0, 1.1, 1.25, 1.5]);
    sweep.sizing = small();
    let report = sweep.run(&WorkPool::serial()).unwrap();
    let mut sink = VecSink::new();
    sweep.run_sink(&WorkPool::new(2), &mut sink).unwrap();
    assert_eq!(sink.into_points(), report.points);
}

/// A five-chunk budget manifest, its executed chunk reports (wire
/// round-tripped, like frames off a socket), and the serial reference
/// bytes — computed once, shared across the property cases.
struct MergeFixture {
    manifest: CampaignManifest,
    reports: Vec<ChunkReport>,
    csv: String,
    jsonl: String,
}

fn merge_fixture() -> &'static MergeFixture {
    static FIXTURE: OnceLock<MergeFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let arch = templates::amba();
        let budgets: Vec<usize> = (0..18).map(|i| 10 + 2 * i).collect();
        let mut sweep = BudgetSweep::new(&arch, budgets);
        sweep.sizing = small();
        let manifest = sweep.manifest().unwrap();
        assert_eq!(manifest.chunks.len(), 5, "18 items in warm chains of 4");
        let serial = run_manifest(&manifest, &WorkPool::serial()).unwrap();
        let pool = WorkPool::serial();
        let reports = (0..manifest.chunks.len())
            .map(|c| {
                let r = execute_manifest_chunk(&manifest, c, &pool, None).unwrap();
                ChunkReport::from_jsonl(&r.to_jsonl()).unwrap()
            })
            .collect();
        MergeFixture {
            manifest,
            csv: serial.to_csv(),
            jsonl: serial.to_jsonl(),
            reports,
        }
    })
}

/// Deterministic Fisher–Yates driven by an xorshift stream, so a plain
/// integer sample explores every permutation.
fn permuted(n: usize, seed: usize) -> Vec<usize> {
    let mut seed = seed as u64 | 1;
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        order.swap(i, (seed as usize) % (i + 1));
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_arrival_order_merges_byte_identically(seed in 0usize..usize::MAX) {
        let fx = merge_fixture();
        let order = permuted(fx.reports.len(), seed);

        // Through a streaming CSV renderer: reducer → ReportStream,
        // no intermediate report, still the serial bytes.
        let stream = ReportStream::csv(
            socbuf_sweep::SweepKind::Budget, Vec::new());
        let mut reducer = StreamingReducer::new(&fx.manifest, stream);
        for &c in &order {
            reducer.ingest(&fx.reports[c]).unwrap();
        }
        let (stream, stats) = reducer.finish().unwrap();
        prop_assert_eq!(stats.chunks, fx.reports.len());
        prop_assert_eq!(stats.points, fx.manifest.items());
        prop_assert!(stats.peak_resident_points <= fx.manifest.items());
        let (bytes, _) = stream.finish().unwrap();
        prop_assert_eq!(String::from_utf8(bytes).unwrap(), fx.csv.clone());

        // And the batch wrapper agrees with the batch reducer.
        let arrival: Vec<ChunkReport> =
            order.iter().map(|&c| fx.reports[c].clone()).collect();
        let merged = merge_chunk_reports(&fx.manifest, &arrival).unwrap();
        prop_assert_eq!(merged.to_csv(), fx.csv.clone());
        prop_assert_eq!(merged.to_jsonl(), fx.jsonl.clone());
    }

    #[test]
    fn in_order_prefixes_keep_residency_at_one_chunk(split in 1usize..5) {
        // In-order arrival never parks: the reducer's high-water mark
        // is one chunk's points, however the stream is split.
        let fx = merge_fixture();
        let mut reducer = StreamingReducer::new(&fx.manifest, VecSink::new());
        for report in &fx.reports[..split] {
            reducer.ingest(report).unwrap();
            prop_assert_eq!(reducer.resident_points(), 0);
        }
        let longest = fx
            .manifest
            .chunks
            .iter()
            .take(split)
            .map(|c| c.end - c.start)
            .max()
            .unwrap();
        prop_assert!(reducer.peak_resident_points() <= longest);
        prop_assert_eq!(reducer.frontier(), split);
    }

    #[test]
    fn duplicated_missing_and_tampered_frames_are_rejected_by_name(
        seed in 0usize..usize::MAX,
        which in 0usize..6,
        victim in 0usize..5,
    ) {
        let fx = merge_fixture();
        let order = permuted(fx.reports.len(), seed);
        let mut reducer = StreamingReducer::new(&fx.manifest, VecSink::new());

        let outcome: Result<(), MergeError> = (|| {
            match which {
                // Duplicate: the same chunk streamed twice.
                0 => {
                    for &c in &order {
                        reducer.ingest(&fx.reports[c])?;
                    }
                    reducer.ingest(&fx.reports[victim])?;
                }
                // Missing: one chunk never arrives.
                1 => {
                    for &c in order.iter().filter(|&&c| c != victim) {
                        reducer.ingest(&fx.reports[c])?;
                    }
                    reducer.finish().map(|_| ())?;
                    return Ok(());
                }
                // Stale hash.
                2 => {
                    let mut bad = fx.reports[victim].clone();
                    bad.config_hash ^= 1;
                    reducer.ingest(&bad)?;
                }
                // Foreign kind.
                3 => {
                    let mut bad = fx.reports[victim].clone();
                    bad.kind = "load".into();
                    reducer.ingest(&bad)?;
                }
                // Tampered range.
                4 => {
                    let mut bad = fx.reports[victim].clone();
                    bad.start += 1;
                    reducer.ingest(&bad)?;
                }
                // Chunk index beyond the partition.
                _ => {
                    let mut bad = fx.reports[victim].clone();
                    bad.chunk = 9;
                    reducer.ingest(&bad)?;
                }
            }
            Ok(())
        })();

        match (which, outcome) {
            (0, Err(MergeError::DuplicateChunk { chunk })) => {
                prop_assert_eq!(chunk, victim)
            }
            (1, Err(MergeError::MissingChunk { chunk })) => {
                prop_assert_eq!(chunk, victim)
            }
            (2, Err(MergeError::HashMismatch { chunk, .. })) => {
                prop_assert_eq!(chunk, victim)
            }
            (3, Err(MergeError::KindMismatch { chunk, .. })) => {
                prop_assert_eq!(chunk, victim)
            }
            (4, Err(MergeError::RangeMismatch { chunk, .. })) => {
                prop_assert_eq!(chunk, victim)
            }
            (5, Err(MergeError::UnknownChunk { chunk, .. })) => {
                prop_assert_eq!(chunk, 9)
            }
            (w, other) => panic!("case {w}: wrong outcome {other:?}"),
        }
    }
}

#[test]
fn adaptive_rechunk_merges_byte_identical_to_default_chunking() {
    let fx = merge_fixture();

    // A maximally quiet profile forces real coarsening (the executed
    // profile may or may not hit zero-pivot warm solves; the contract
    // must hold either way, so pin the aggressive case deliberately).
    let serial = run_manifest(&fx.manifest, &WorkPool::serial()).unwrap();
    let mut quiet = serial.clone();
    for p in &mut quiet.points {
        p.lp_iterations = 0;
    }
    let rechunked = rechunk_manifest(&fx.manifest, &quiet, &AdaptivePolicy::default()).unwrap();
    assert!(
        rechunked.chunks.len() < fx.manifest.chunks.len(),
        "a quiet profile must coarsen: {} -> {}",
        fx.manifest.chunks.len(),
        rechunked.chunks.len()
    );
    assert_eq!(rechunked.config_hash, fx.manifest.config_hash);

    // The coarsened manifest survives its own wire rendering…
    let wire =
        CampaignManifest::from_json(&JsonValue::parse(&rechunked.to_json()).unwrap()).unwrap();
    assert_eq!(wire.chunks, rechunked.chunks);

    // …executes byte-identically for every worker count…
    for workers in [1usize, 2, 8] {
        let report = run_manifest(&rechunked, &WorkPool::new(workers)).unwrap();
        assert_eq!(report.to_csv(), fx.csv, "{workers} workers");
        assert_eq!(report.to_jsonl(), fx.jsonl, "{workers} workers");
    }

    // …and its sharded execution merges to the same bytes, through the
    // streaming reducer, under the coarsened partition.
    let pool = WorkPool::serial();
    let stream = ReportStream::jsonl(serial.kind, Vec::new());
    let mut reducer = StreamingReducer::new(&rechunked, stream);
    for c in (0..rechunked.chunks.len()).rev() {
        let report = execute_manifest_chunk(&rechunked, c, &pool, None).unwrap();
        reducer
            .ingest(&ChunkReport::from_jsonl(&report.to_jsonl()).unwrap())
            .unwrap();
    }
    let (stream, _) = reducer.finish().unwrap();
    let (bytes, _) = stream.finish().unwrap();
    assert_eq!(String::from_utf8(bytes).unwrap(), fx.jsonl);

    // A profile that does not cover the campaign is refused.
    let mut short = quiet.clone();
    short.points.pop();
    match rechunk_manifest(&fx.manifest, &short, &AdaptivePolicy::default()) {
        Err(socbuf_sweep::SweepError::BadConfig(msg)) => {
            assert!(msg.contains("17 points"), "{msg}")
        }
        other => panic!("expected BadConfig, got {other:?}"),
    }

    // An executed profile (whatever its pivots) also holds the line.
    let from_real = rechunk_manifest(&fx.manifest, &serial, &AdaptivePolicy::default()).unwrap();
    let report = run_manifest(&from_real, &WorkPool::new(2)).unwrap();
    assert_eq!(report.to_csv(), fx.csv);
}
