//! Continuous-time Markov chains and queueing analytics for `socbuf`.
//!
//! The DATE 2005 buffer-sizing paper models every processor–bus buffer as
//! a continuous-time queue (Poisson arrivals, exponential bus service,
//! finite capacity). This crate supplies the chain-level machinery that
//! both the CTMDP solver (`socbuf-ctmdp`) and the validation suite of the
//! discrete-event simulator (`socbuf-sim`) rely on:
//!
//! * [`Ctmc`] — finite continuous-time Markov chains with validated
//!   **sparse (CSR) generators**, stationary distributions (an `O(n)`
//!   Thomas solve for tridiagonal/birth–death generators, pivoted dense
//!   LU as the general fallback), irreducibility checks and
//!   uniformization,
//! * [`Dtmc`] — the discrete skeleton produced by uniformization,
//! * [`BirthDeath`] — birth–death chains with closed-form stationary
//!   distributions (every single-queue CTMDP block has this shape),
//! * [`MM1K`] — closed-form M/M/1/K loss-queue formulas (blocking
//!   probability, loss rate, mean occupancy); these are the *analytic
//!   oracles* the simulator is tested against,
//! * [`transient_distribution`] — transient state probabilities via
//!   uniformization (Poisson-weighted DTMC powers).
//!
//! # Examples
//!
//! ```
//! use socbuf_markov::MM1K;
//!
//! # fn main() -> Result<(), socbuf_markov::MarkovError> {
//! let q = MM1K::new(0.8, 1.0, 4)?;
//! // Blocking probability for ρ = 0.8, K = 4 is ρ⁴(1−ρ)/(1−ρ⁵) ≈ 0.1218.
//! assert!((q.blocking_probability() - 0.1218).abs() < 1e-3);
//! assert!(q.loss_rate() < q.arrival_rate());
//! # Ok(())
//! # }
//! ```

mod birth_death;
mod ctmc;
mod dtmc;
mod error;
mod queueing;
mod uniformization;

pub use birth_death::BirthDeath;
pub use ctmc::Ctmc;
pub use dtmc::Dtmc;
pub use error::MarkovError;
pub use queueing::MM1K;
pub use uniformization::transient_distribution;
