use socbuf_linalg::{Csr, Lu, Matrix, Tridiag};

use crate::{Dtmc, MarkovError};

/// A finite continuous-time Markov chain given by its generator matrix,
/// stored sparsely (CSR).
///
/// The generator `Q` has non-negative off-diagonal rates and rows summing
/// to zero (`q_ii = −Σ_{j≠i} q_ij`). Construction validates both
/// properties. Memory is `O(n + nnz)`, and [`Ctmc::stationary`] solves
/// tridiagonal generators — every birth–death queue block — with the
/// `O(n)` Thomas algorithm, falling back to a dense pivoted LU only for
/// general generators.
///
/// # Examples
///
/// ```
/// use socbuf_markov::Ctmc;
///
/// # fn main() -> Result<(), socbuf_markov::MarkovError> {
/// // Two-state chain: 0 → 1 at rate 2, 1 → 0 at rate 1.
/// let c = Ctmc::from_rates(2, &[(0, 1, 2.0), (1, 0, 1.0)])?;
/// let pi = c.stationary()?;
/// assert!((pi[0] - 1.0 / 3.0).abs() < 1e-12);
/// assert!((pi[1] - 2.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    q: Csr,
}

const ROW_SUM_TOL: f64 = 1e-8;

impl Ctmc {
    /// Builds a chain from an explicit dense generator matrix. Use
    /// [`Ctmc::from_rates`] to stay `O(nnz)` end to end; this
    /// constructor exists for small, explicitly tabulated generators.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::NegativeRate`] for negative off-diagonal entries.
    /// * [`MarkovError::BadGeneratorRow`] for rows not summing to zero.
    /// * [`MarkovError::Linalg`] if the matrix is not square or empty.
    pub fn from_generator(q: Matrix) -> Result<Self, MarkovError> {
        if !q.is_square() {
            return Err(MarkovError::Linalg(socbuf_linalg::LinalgError::NotSquare {
                rows: q.rows(),
                cols: q.cols(),
            }));
        }
        if q.rows() == 0 {
            return Err(MarkovError::Linalg(socbuf_linalg::LinalgError::Empty));
        }
        let n = q.rows();
        for i in 0..n {
            let mut sum = 0.0;
            for j in 0..n {
                let v = q[(i, j)];
                if i != j && v < 0.0 {
                    return Err(MarkovError::NegativeRate {
                        from: i,
                        to: j,
                        rate: v,
                    });
                }
                sum += v;
            }
            if sum.abs() > ROW_SUM_TOL * (1.0 + q.row(i).iter().map(|v| v.abs()).sum::<f64>()) {
                return Err(MarkovError::BadGeneratorRow { row: i, sum });
            }
        }
        Ok(Ctmc {
            q: Csr::from_dense(&q),
        })
    }

    /// Builds a chain on `n` states from sparse `(from, to, rate)`
    /// triples; the diagonal is filled in automatically. Duplicate
    /// triples accumulate. This is the `O(nnz)` construction path.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::NegativeRate`] for a negative rate.
    /// * [`MarkovError::NonPositiveParameter`] if `n == 0` or an index is
    ///   out of range.
    pub fn from_rates(n: usize, rates: &[(usize, usize, f64)]) -> Result<Self, MarkovError> {
        if n == 0 {
            return Err(MarkovError::NonPositiveParameter {
                name: "n",
                value: 0.0,
            });
        }
        let mut exit = vec![0.0_f64; n];
        let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(rates.len() + n);
        for &(i, j, r) in rates {
            if i >= n || j >= n {
                return Err(MarkovError::NonPositiveParameter {
                    name: "state index",
                    value: i.max(j) as f64,
                });
            }
            if r < 0.0 {
                return Err(MarkovError::NegativeRate {
                    from: i,
                    to: j,
                    rate: r,
                });
            }
            if i != j {
                triplets.push((i, j, r));
                exit[i] += r;
            }
        }
        for (i, &e) in exit.iter().enumerate() {
            if e > 0.0 {
                triplets.push((i, i, -e));
            }
        }
        let q = Csr::from_triplets(n, n, &triplets).expect("indices validated against n");
        Ok(Ctmc { q })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.q.rows()
    }

    /// The sparse generator matrix.
    pub fn generator(&self) -> &Csr {
        &self.q
    }

    /// The generator materialized densely (small kernels and tests).
    pub fn generator_dense(&self) -> Matrix {
        self.q.to_dense()
    }

    /// Transition rate from `i` to `j` (`i ≠ j`).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn rate(&self, i: usize, j: usize) -> f64 {
        self.q.get(i, j)
    }

    /// Total exit rate of state `i` (`−q_ii`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn exit_rate(&self, i: usize) -> f64 {
        -self.q.get(i, i)
    }

    /// `true` if every state can reach every other through positive-rate
    /// transitions (strong connectivity of the rate graph). Runs two
    /// sparse reachability sweeps — `O(n + nnz)`.
    pub fn is_irreducible(&self) -> bool {
        let n = self.num_states();
        if n == 1 {
            return true;
        }
        let reach = |m: &Csr| -> usize {
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            let mut count = 1;
            while let Some(i) = stack.pop() {
                for (j, r) in m.iter_row(i) {
                    if i != j && r > 0.0 && !seen[j] {
                        seen[j] = true;
                        count += 1;
                        stack.push(j);
                    }
                }
            }
            count
        };
        reach(&self.q) == n && reach(&self.q.transpose()) == n
    }

    /// Stationary distribution `π` with `π Q = 0`, `Σ π = 1`.
    ///
    /// Tridiagonal generators (birth–death chains) are solved with the
    /// `O(n)` Thomas algorithm; general generators fall back to
    /// [`Ctmc::stationary_dense`]. A Thomas breakdown (which a valid
    /// irreducible generator does not produce, but pathological scaling
    /// might) also falls back to the pivoted dense path.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::Reducible`] if the chain has no unique stationary
    ///   distribution.
    pub fn stationary(&self) -> Result<Vec<f64>, MarkovError> {
        if !self.is_irreducible() {
            return Err(MarkovError::Reducible);
        }
        if self.q.is_tridiagonal() {
            if let Some(pi) = self.stationary_tridiagonal() {
                return Ok(pi);
            }
        }
        self.stationary_dense_unchecked()
    }

    /// Stationary distribution computed through the dense LU path
    /// regardless of generator structure — the cross-check oracle for
    /// the sparse tridiagonal solver.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::Reducible`] if the chain has no unique stationary
    ///   distribution.
    pub fn stationary_dense(&self) -> Result<Vec<f64>, MarkovError> {
        if !self.is_irreducible() {
            return Err(MarkovError::Reducible);
        }
        self.stationary_dense_unchecked()
    }

    /// `π Qᵀ` system via the Thomas algorithm: replace the (redundant)
    /// balance equation of state 0 with `π_0 = 1`, solve the still
    /// tridiagonal system, then normalize. Returns `None` on a numerical
    /// breakdown so the caller can fall back to the pivoted dense path.
    fn stationary_tridiagonal(&self) -> Option<Vec<f64>> {
        let n = self.num_states();
        // Qᵀ has sub(i) = q_{i+1,i}ᵀ = q_{i,i+1}… spelled out: the
        // transpose swaps the generator's sub- and super-diagonals.
        let mut sub = vec![0.0; n.saturating_sub(1)];
        let mut diag = vec![0.0; n];
        let mut sup = vec![0.0; n.saturating_sub(1)];
        for i in 0..n {
            for (j, v) in self.q.iter_row(i) {
                if j == i {
                    diag[i] = v;
                } else if j == i + 1 {
                    // Q entry (i, i+1) lands in Qᵀ at (i+1, i): sub.
                    sub[i] = v;
                } else {
                    // Q entry (i, i-1) lands in Qᵀ at (i-1, i): sup.
                    sup[j] = v;
                }
            }
        }
        // Overwrite row 0 of Qᵀ with  π_0 = 1.
        diag[0] = 1.0;
        if n > 1 {
            sup[0] = 0.0;
        }
        let mut rhs = vec![0.0; n];
        rhs[0] = 1.0;
        let t = Tridiag::new(sub, diag, sup).ok()?;
        let mut pi = t.solve(&rhs).ok()?;
        normalize_stationary(&mut pi)?;
        Some(pi)
    }

    fn stationary_dense_unchecked(&self) -> Result<Vec<f64>, MarkovError> {
        let n = self.num_states();
        // Solve Qᵀ π = 0 with the last equation replaced by Σ π = 1.
        let mut a = self.q.to_dense().transpose();
        for j in 0..n {
            a[(n - 1, j)] = 1.0;
        }
        let mut b = vec![0.0; n];
        b[n - 1] = 1.0;
        let lu = Lu::factor(&a)?;
        let mut pi = lu.solve(&b)?;
        match normalize_stationary(&mut pi) {
            Some(()) => Ok(pi),
            None => Err(MarkovError::Reducible),
        }
    }

    /// Uniformizes the chain into a DTMC with rate `lambda`, which must
    /// be at least the largest exit rate. `P = I + Q/λ`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NonPositiveParameter`] if `lambda` is not
    /// positive or smaller than the largest exit rate.
    pub fn uniformized(&self, lambda: f64) -> Result<Dtmc, MarkovError> {
        let max_exit = (0..self.num_states())
            .map(|i| self.exit_rate(i))
            .fold(0.0_f64, f64::max);
        if lambda <= 0.0 || lambda < max_exit {
            return Err(MarkovError::NonPositiveParameter {
                name: "uniformization rate",
                value: lambda,
            });
        }
        let n = self.num_states();
        let mut p = Matrix::identity(n);
        for i in 0..n {
            for (j, v) in self.q.iter_row(i) {
                p[(i, j)] = (p[(i, j)] + v / lambda).max(0.0);
            }
        }
        Dtmc::from_matrix(p)
    }

    /// A safe default uniformization rate: `1.1 × max exit rate`
    /// (or `1.0` for the degenerate all-absorbing chain).
    pub fn default_uniformization_rate(&self) -> f64 {
        let max_exit = (0..self.num_states())
            .map(|i| self.exit_rate(i))
            .fold(0.0_f64, f64::max);
        if max_exit <= 0.0 {
            1.0
        } else {
            1.1 * max_exit
        }
    }
}

/// Clamps numerical dust, rejects genuinely negative entries, and scales
/// to a probability distribution. Returns `None` if the vector is not a
/// (nonnegative, nonzero) measure.
fn normalize_stationary(pi: &mut [f64]) -> Option<()> {
    let scale = pi.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    if scale <= 0.0 || !scale.is_finite() {
        return None;
    }
    // Dust threshold: the dense path arrives already normalized
    // (scale ≤ 1), where the historical absolute 1e-8 applies; the
    // Thomas path arrives unnormalized with π₀ = 1 (scale ≥ 1), where
    // the tolerance must grow with the solution's magnitude.
    let dust = -1e-8 * scale.max(1.0);
    let mut sum = 0.0;
    for p in pi.iter_mut() {
        if *p < 0.0 {
            if *p < dust {
                return None;
            }
            *p = 0.0;
        }
        sum += *p;
    }
    if sum <= 0.0 {
        return None;
    }
    for p in pi.iter_mut() {
        *p /= sum;
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_state_stationary() {
        let c = Ctmc::from_rates(2, &[(0, 1, 3.0), (1, 0, 1.0)]).unwrap();
        let pi = c.stationary().unwrap();
        assert!((pi[0] - 0.25).abs() < 1e-12);
        assert!((pi[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn validates_generator() {
        let bad = Matrix::from_rows(&[&[-1.0, 0.5], &[1.0, -1.0]]).unwrap();
        assert!(matches!(
            Ctmc::from_generator(bad),
            Err(MarkovError::BadGeneratorRow { row: 0, .. })
        ));
        let neg = Matrix::from_rows(&[&[1.0, -1.0], &[1.0, -1.0]]).unwrap();
        assert!(matches!(
            Ctmc::from_generator(neg),
            Err(MarkovError::NegativeRate { .. })
        ));
    }

    #[test]
    fn from_rates_accumulates_and_fills_diagonal() {
        let c = Ctmc::from_rates(2, &[(0, 1, 1.0), (0, 1, 2.0), (1, 0, 1.0)]).unwrap();
        assert_eq!(c.rate(0, 1), 3.0);
        assert_eq!(c.exit_rate(0), 3.0);
        assert_eq!(c.rate(0, 0), -3.0);
    }

    #[test]
    fn generator_is_sparse() {
        // A 100-state birth-death chain stores O(n) entries, not n².
        let n = 100usize;
        let mut rates = Vec::new();
        for i in 0..n - 1 {
            rates.push((i, i + 1, 1.0));
            rates.push((i + 1, i, 2.0));
        }
        let c = Ctmc::from_rates(n, &rates).unwrap();
        assert!(c.generator().nnz() <= 3 * n);
        assert!(c.generator().is_tridiagonal());
        assert_eq!(c.generator_dense().rows(), n);
    }

    #[test]
    fn reducible_chain_is_detected() {
        // Two absorbing components.
        let c = Ctmc::from_rates(4, &[(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0)]).unwrap();
        assert!(!c.is_irreducible());
        assert!(matches!(c.stationary(), Err(MarkovError::Reducible)));
    }

    #[test]
    fn absorbing_state_is_reducible() {
        let c = Ctmc::from_rates(2, &[(0, 1, 1.0)]).unwrap();
        assert!(!c.is_irreducible());
    }

    #[test]
    fn tridiagonal_path_matches_dense_path() {
        // Birth-death chain: stationary() takes the Thomas route,
        // stationary_dense() the LU route; they must agree to 1e-12.
        let mut rates = Vec::new();
        let births = [1.0, 2.5, 0.7, 3.0, 1.1];
        let deaths = [2.0, 1.0, 3.0, 0.9, 2.2];
        for i in 0..5 {
            rates.push((i, i + 1, births[i]));
            rates.push((i + 1, i, deaths[i]));
        }
        let c = Ctmc::from_rates(6, &rates).unwrap();
        assert!(c.generator().is_tridiagonal());
        let fast = c.stationary().unwrap();
        let dense = c.stationary_dense().unwrap();
        for (a, b) in fast.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-12, "{fast:?} vs {dense:?}");
        }
    }

    #[test]
    fn general_chain_uses_dense_fallback() {
        // A 3-cycle is not tridiagonal: 0→1→2→0.
        let c = Ctmc::from_rates(3, &[(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)]).unwrap();
        assert!(!c.generator().is_tridiagonal());
        let pi = c.stationary().unwrap();
        // π_i ∝ 1/exit_i for a cycle.
        let expect = [1.0 / 1.0, 1.0 / 2.0, 1.0 / 3.0];
        let z: f64 = expect.iter().sum();
        for (p, e) in pi.iter().zip(&expect) {
            assert!((p - e / z).abs() < 1e-12);
        }
    }

    #[test]
    fn uniformization_preserves_stationary() {
        let c = Ctmc::from_rates(
            3,
            &[
                (0, 1, 2.0),
                (1, 2, 1.0),
                (2, 0, 0.5),
                (1, 0, 0.25),
                (2, 1, 0.75),
            ],
        )
        .unwrap();
        let pi_c = c.stationary().unwrap();
        let d = c.uniformized(c.default_uniformization_rate()).unwrap();
        let pi_d = d.stationary().unwrap();
        for (a, b) in pi_c.iter().zip(&pi_d) {
            assert!((a - b).abs() < 1e-9, "{pi_c:?} vs {pi_d:?}");
        }
    }

    #[test]
    fn uniformization_rate_validation() {
        let c = Ctmc::from_rates(2, &[(0, 1, 5.0), (1, 0, 1.0)]).unwrap();
        assert!(c.uniformized(4.0).is_err());
        assert!(c.uniformized(5.0).is_ok());
    }

    #[test]
    fn single_state_chain() {
        let c = Ctmc::from_rates(1, &[]).unwrap();
        assert!(c.is_irreducible());
        let pi = c.stationary().unwrap();
        assert_eq!(pi, vec![1.0]);
    }

    #[test]
    fn rejects_out_of_range_and_empty() {
        assert!(Ctmc::from_rates(0, &[]).is_err());
        assert!(Ctmc::from_rates(2, &[(0, 5, 1.0)]).is_err());
        assert!(Ctmc::from_rates(2, &[(0, 1, -1.0)]).is_err());
    }
}
