use socbuf_linalg::{Lu, Matrix};

use crate::{Dtmc, MarkovError};

/// A finite continuous-time Markov chain given by its generator matrix.
///
/// The generator `Q` has non-negative off-diagonal rates and rows summing
/// to zero (`q_ii = −Σ_{j≠i} q_ij`). Construction validates both
/// properties.
///
/// # Examples
///
/// ```
/// use socbuf_markov::Ctmc;
///
/// # fn main() -> Result<(), socbuf_markov::MarkovError> {
/// // Two-state chain: 0 → 1 at rate 2, 1 → 0 at rate 1.
/// let c = Ctmc::from_rates(2, &[(0, 1, 2.0), (1, 0, 1.0)])?;
/// let pi = c.stationary()?;
/// assert!((pi[0] - 1.0 / 3.0).abs() < 1e-12);
/// assert!((pi[1] - 2.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    q: Matrix,
}

const ROW_SUM_TOL: f64 = 1e-8;

impl Ctmc {
    /// Builds a chain from an explicit generator matrix.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::NegativeRate`] for negative off-diagonal entries.
    /// * [`MarkovError::BadGeneratorRow`] for rows not summing to zero.
    /// * [`MarkovError::Linalg`] if the matrix is not square or empty.
    pub fn from_generator(q: Matrix) -> Result<Self, MarkovError> {
        if !q.is_square() {
            return Err(MarkovError::Linalg(socbuf_linalg::LinalgError::NotSquare {
                rows: q.rows(),
                cols: q.cols(),
            }));
        }
        if q.rows() == 0 {
            return Err(MarkovError::Linalg(socbuf_linalg::LinalgError::Empty));
        }
        let n = q.rows();
        for i in 0..n {
            let mut sum = 0.0;
            for j in 0..n {
                let v = q[(i, j)];
                if i != j && v < 0.0 {
                    return Err(MarkovError::NegativeRate {
                        from: i,
                        to: j,
                        rate: v,
                    });
                }
                sum += v;
            }
            if sum.abs() > ROW_SUM_TOL * (1.0 + q.row(i).iter().map(|v| v.abs()).sum::<f64>()) {
                return Err(MarkovError::BadGeneratorRow { row: i, sum });
            }
        }
        Ok(Ctmc { q })
    }

    /// Builds a chain on `n` states from sparse `(from, to, rate)`
    /// triples; the diagonal is filled in automatically. Duplicate
    /// triples accumulate.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::NegativeRate`] for a negative rate.
    /// * [`MarkovError::NonPositiveParameter`] if `n == 0` or an index is
    ///   out of range.
    pub fn from_rates(n: usize, rates: &[(usize, usize, f64)]) -> Result<Self, MarkovError> {
        if n == 0 {
            return Err(MarkovError::NonPositiveParameter {
                name: "n",
                value: 0.0,
            });
        }
        let mut q = Matrix::zeros(n, n);
        for &(i, j, r) in rates {
            if i >= n || j >= n {
                return Err(MarkovError::NonPositiveParameter {
                    name: "state index",
                    value: i.max(j) as f64,
                });
            }
            if r < 0.0 {
                return Err(MarkovError::NegativeRate {
                    from: i,
                    to: j,
                    rate: r,
                });
            }
            if i != j {
                q[(i, j)] += r;
            }
        }
        for i in 0..n {
            let off: f64 = (0..n).filter(|&j| j != i).map(|j| q[(i, j)]).sum();
            q[(i, i)] = -off;
        }
        Ok(Ctmc { q })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.q.rows()
    }

    /// The generator matrix.
    pub fn generator(&self) -> &Matrix {
        &self.q
    }

    /// Transition rate from `i` to `j` (`i ≠ j`).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn rate(&self, i: usize, j: usize) -> f64 {
        self.q[(i, j)]
    }

    /// Total exit rate of state `i` (`−q_ii`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn exit_rate(&self, i: usize) -> f64 {
        -self.q[(i, i)]
    }

    /// `true` if every state can reach every other through positive-rate
    /// transitions (strong connectivity of the rate graph).
    pub fn is_irreducible(&self) -> bool {
        let n = self.num_states();
        if n == 1 {
            return true;
        }
        let reach = |forward: bool| -> usize {
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            let mut count = 1;
            while let Some(i) = stack.pop() {
                for j in 0..n {
                    let r = if forward {
                        self.q[(i, j)]
                    } else {
                        self.q[(j, i)]
                    };
                    if i != j && r > 0.0 && !seen[j] {
                        seen[j] = true;
                        count += 1;
                        stack.push(j);
                    }
                }
            }
            count
        };
        reach(true) == n && reach(false) == n
    }

    /// Stationary distribution `π` with `π Q = 0`, `Σ π = 1`.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::Reducible`] if the chain has no unique stationary
    ///   distribution.
    pub fn stationary(&self) -> Result<Vec<f64>, MarkovError> {
        if !self.is_irreducible() {
            return Err(MarkovError::Reducible);
        }
        let n = self.num_states();
        // Solve Qᵀ π = 0 with the last equation replaced by Σ π = 1.
        let mut a = self.q.transpose();
        for j in 0..n {
            a[(n - 1, j)] = 1.0;
        }
        let mut b = vec![0.0; n];
        b[n - 1] = 1.0;
        let lu = Lu::factor(&a)?;
        let mut pi = lu.solve(&b)?;
        // Numerical cleanup: clamp tiny negatives, renormalize.
        let mut sum = 0.0;
        for p in pi.iter_mut() {
            if *p < 0.0 {
                if *p < -1e-8 {
                    return Err(MarkovError::Reducible);
                }
                *p = 0.0;
            }
            sum += *p;
        }
        for p in pi.iter_mut() {
            *p /= sum;
        }
        Ok(pi)
    }

    /// Uniformizes the chain into a DTMC with rate `lambda`, which must
    /// be at least the largest exit rate. `P = I + Q/λ`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NonPositiveParameter`] if `lambda` is not
    /// positive or smaller than the largest exit rate.
    pub fn uniformized(&self, lambda: f64) -> Result<Dtmc, MarkovError> {
        let max_exit = (0..self.num_states())
            .map(|i| self.exit_rate(i))
            .fold(0.0_f64, f64::max);
        if lambda <= 0.0 || lambda < max_exit {
            return Err(MarkovError::NonPositiveParameter {
                name: "uniformization rate",
                value: lambda,
            });
        }
        let n = self.num_states();
        let mut p = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let v = if i == j {
                    1.0 + self.q[(i, j)] / lambda
                } else {
                    self.q[(i, j)] / lambda
                };
                p[(i, j)] = v.max(0.0);
            }
        }
        Dtmc::from_matrix(p)
    }

    /// A safe default uniformization rate: `1.1 × max exit rate`
    /// (or `1.0` for the degenerate all-absorbing chain).
    pub fn default_uniformization_rate(&self) -> f64 {
        let max_exit = (0..self.num_states())
            .map(|i| self.exit_rate(i))
            .fold(0.0_f64, f64::max);
        if max_exit <= 0.0 {
            1.0
        } else {
            1.1 * max_exit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_state_stationary() {
        let c = Ctmc::from_rates(2, &[(0, 1, 3.0), (1, 0, 1.0)]).unwrap();
        let pi = c.stationary().unwrap();
        assert!((pi[0] - 0.25).abs() < 1e-12);
        assert!((pi[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn validates_generator() {
        let bad = Matrix::from_rows(&[&[-1.0, 0.5], &[1.0, -1.0]]).unwrap();
        assert!(matches!(
            Ctmc::from_generator(bad),
            Err(MarkovError::BadGeneratorRow { row: 0, .. })
        ));
        let neg = Matrix::from_rows(&[&[1.0, -1.0], &[1.0, -1.0]]).unwrap();
        assert!(matches!(
            Ctmc::from_generator(neg),
            Err(MarkovError::NegativeRate { .. })
        ));
    }

    #[test]
    fn from_rates_accumulates_and_fills_diagonal() {
        let c = Ctmc::from_rates(2, &[(0, 1, 1.0), (0, 1, 2.0), (1, 0, 1.0)]).unwrap();
        assert_eq!(c.rate(0, 1), 3.0);
        assert_eq!(c.exit_rate(0), 3.0);
        assert_eq!(c.rate(0, 0), -3.0);
    }

    #[test]
    fn reducible_chain_is_detected() {
        // Two absorbing components.
        let c = Ctmc::from_rates(4, &[(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0)])
            .unwrap();
        assert!(!c.is_irreducible());
        assert!(matches!(c.stationary(), Err(MarkovError::Reducible)));
    }

    #[test]
    fn absorbing_state_is_reducible() {
        let c = Ctmc::from_rates(2, &[(0, 1, 1.0)]).unwrap();
        assert!(!c.is_irreducible());
    }

    #[test]
    fn uniformization_preserves_stationary() {
        let c = Ctmc::from_rates(
            3,
            &[
                (0, 1, 2.0),
                (1, 2, 1.0),
                (2, 0, 0.5),
                (1, 0, 0.25),
                (2, 1, 0.75),
            ],
        )
        .unwrap();
        let pi_c = c.stationary().unwrap();
        let d = c.uniformized(c.default_uniformization_rate()).unwrap();
        let pi_d = d.stationary().unwrap();
        for (a, b) in pi_c.iter().zip(&pi_d) {
            assert!((a - b).abs() < 1e-9, "{pi_c:?} vs {pi_d:?}");
        }
    }

    #[test]
    fn uniformization_rate_validation() {
        let c = Ctmc::from_rates(2, &[(0, 1, 5.0), (1, 0, 1.0)]).unwrap();
        assert!(c.uniformized(4.0).is_err());
        assert!(c.uniformized(5.0).is_ok());
    }

    #[test]
    fn single_state_chain() {
        let c = Ctmc::from_rates(1, &[]).unwrap();
        assert!(c.is_irreducible());
        let pi = c.stationary().unwrap();
        assert_eq!(pi, vec![1.0]);
    }

    #[test]
    fn rejects_out_of_range_and_empty() {
        assert!(Ctmc::from_rates(0, &[]).is_err());
        assert!(Ctmc::from_rates(2, &[(0, 5, 1.0)]).is_err());
        assert!(Ctmc::from_rates(2, &[(0, 1, -1.0)]).is_err());
    }
}
