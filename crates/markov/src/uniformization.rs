//! Transient analysis of CTMCs via uniformization.
//!
//! `p(t) = Σ_k e^{−Λt} (Λt)^k / k! · p(0) P^k` where `P` is the
//! uniformized DTMC. The Poisson weights are generated iteratively and
//! the series truncated once the accumulated probability mass exceeds
//! `1 − tol`.

use crate::{Ctmc, MarkovError};

/// Computes the state distribution at time `t` starting from `p0`.
///
/// `tol` bounds the truncated Poisson tail mass (e.g. `1e-10`).
///
/// # Errors
///
/// * [`MarkovError::BadStochasticRow`] if `p0` is not a distribution.
/// * Propagates uniformization errors.
///
/// # Examples
///
/// ```
/// use socbuf_markov::{transient_distribution, Ctmc};
///
/// # fn main() -> Result<(), socbuf_markov::MarkovError> {
/// let c = Ctmc::from_rates(2, &[(0, 1, 1.0), (1, 0, 1.0)])?;
/// let p = transient_distribution(&c, &[1.0, 0.0], 50.0, 1e-12)?;
/// // After a long time the symmetric chain is at (1/2, 1/2).
/// assert!((p[0] - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn transient_distribution(
    chain: &Ctmc,
    p0: &[f64],
    t: f64,
    tol: f64,
) -> Result<Vec<f64>, MarkovError> {
    let n = chain.num_states();
    if p0.len() != n {
        return Err(MarkovError::Linalg(
            socbuf_linalg::LinalgError::DimensionMismatch {
                expected: (n, 1),
                found: (p0.len(), 1),
            },
        ));
    }
    let sum: f64 = p0.iter().sum();
    if (sum - 1.0).abs() > 1e-8 || p0.iter().any(|&p| p < -1e-12) {
        return Err(MarkovError::BadStochasticRow { row: 0, sum });
    }
    if t < 0.0 || !t.is_finite() {
        return Err(MarkovError::NonPositiveParameter {
            name: "t",
            value: t,
        });
    }
    if t == 0.0 {
        return Ok(p0.to_vec());
    }

    let lambda = chain.default_uniformization_rate();
    let dtmc = chain.uniformized(lambda)?;
    let lt = lambda * t;

    // Poisson weights built iteratively. For large Λt, start the
    // accumulation in log space to avoid e^{-Λt} underflow: we simply
    // chunk the horizon so each chunk has moderate Λ·Δt.
    const MAX_CHUNK: f64 = 200.0;
    let chunks = (lt / MAX_CHUNK).ceil().max(1.0) as usize;
    let dt = t / chunks as f64;
    let ldt = lambda * dt;

    let mut p = p0.to_vec();
    for _ in 0..chunks {
        let mut weight = (-ldt).exp();
        let mut acc_weight = weight;
        let mut term = p.clone();
        let mut result: Vec<f64> = term.iter().map(|v| v * weight).collect();
        let mut k = 0usize;
        while acc_weight < 1.0 - tol && k < 100_000 {
            k += 1;
            term = dtmc.step(&term)?;
            weight *= ldt / k as f64;
            acc_weight += weight;
            for (r, v) in result.iter_mut().zip(&term) {
                *r += weight * v;
            }
        }
        // Renormalize the truncated series.
        let s: f64 = result.iter().sum();
        for r in result.iter_mut() {
            *r /= s;
        }
        p = result;
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_time_returns_initial() {
        let c = Ctmc::from_rates(2, &[(0, 1, 1.0), (1, 0, 2.0)]).unwrap();
        let p = transient_distribution(&c, &[0.3, 0.7], 0.0, 1e-10).unwrap();
        assert_eq!(p, vec![0.3, 0.7]);
    }

    #[test]
    fn matches_closed_form_two_state() {
        // For rates a (0→1) and b (1→0): p_1(t) = a/(a+b) (1 − e^{−(a+b)t}).
        let (a, b) = (2.0, 3.0);
        let c = Ctmc::from_rates(2, &[(0, 1, a), (1, 0, b)]).unwrap();
        for &t in &[0.1, 0.5, 1.0, 2.0] {
            let p = transient_distribution(&c, &[1.0, 0.0], t, 1e-12).unwrap();
            let expected = a / (a + b) * (1.0 - (-(a + b) * t).exp());
            assert!(
                (p[1] - expected).abs() < 1e-9,
                "t={t}: {} vs {expected}",
                p[1]
            );
        }
    }

    #[test]
    fn long_horizon_converges_to_stationary() {
        let c = Ctmc::from_rates(
            3,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 0, 3.0),
                (2, 1, 0.5),
                (0, 2, 0.1),
            ],
        )
        .unwrap();
        let pi = c.stationary().unwrap();
        let p = transient_distribution(&c, &[1.0, 0.0, 0.0], 200.0, 1e-12).unwrap();
        for (a, b) in p.iter().zip(&pi) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn mass_is_conserved() {
        let c = Ctmc::from_rates(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]).unwrap();
        let p = transient_distribution(&c, &[0.25; 4], 7.3, 1e-10).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        let c = Ctmc::from_rates(2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(transient_distribution(&c, &[0.5, 0.6], 1.0, 1e-10).is_err());
        assert!(transient_distribution(&c, &[1.0], 1.0, 1e-10).is_err());
        assert!(transient_distribution(&c, &[1.0, 0.0], -1.0, 1e-10).is_err());
    }

    #[test]
    fn large_uniformization_horizon_is_chunked() {
        // Λt ≈ 2200 would underflow e^{-Λt}; chunking must keep it exact.
        let c = Ctmc::from_rates(2, &[(0, 1, 100.0), (1, 0, 900.0)]).unwrap();
        let p = transient_distribution(&c, &[1.0, 0.0], 2.0, 1e-10).unwrap();
        let pi = c.stationary().unwrap();
        assert!((p[0] - pi[0]).abs() < 1e-6);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
