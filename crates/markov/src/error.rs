use std::error::Error;
use std::fmt;

use socbuf_linalg::LinalgError;

/// Errors produced by Markov-chain construction and analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MarkovError {
    /// A generator matrix row does not sum to zero (within tolerance).
    BadGeneratorRow {
        /// Offending row.
        row: usize,
        /// Its sum.
        sum: f64,
    },
    /// An off-diagonal generator entry is negative.
    NegativeRate {
        /// Row of the offending entry.
        from: usize,
        /// Column of the offending entry.
        to: usize,
        /// The negative value found.
        rate: f64,
    },
    /// A transition-probability row does not sum to one, or an entry is
    /// outside `[0, 1]`.
    BadStochasticRow {
        /// Offending row.
        row: usize,
        /// Its sum.
        sum: f64,
    },
    /// The chain is reducible, so the requested quantity (for example a
    /// unique stationary distribution) does not exist.
    Reducible,
    /// A parameter that must be positive (rate, state count) was not.
    NonPositiveParameter {
        /// Human-readable parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An underlying linear solve failed.
    Linalg(LinalgError),
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::BadGeneratorRow { row, sum } => {
                write!(f, "generator row {row} sums to {sum:.3e}, expected 0")
            }
            MarkovError::NegativeRate { from, to, rate } => {
                write!(
                    f,
                    "negative transition rate {rate} from state {from} to {to}"
                )
            }
            MarkovError::BadStochasticRow { row, sum } => {
                write!(f, "probability row {row} sums to {sum}, expected 1")
            }
            MarkovError::Reducible => write!(f, "chain is reducible"),
            MarkovError::NonPositiveParameter { name, value } => {
                write!(f, "parameter {name} must be positive, got {value}")
            }
            MarkovError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for MarkovError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MarkovError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for MarkovError {
    fn from(e: LinalgError) -> Self {
        MarkovError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = MarkovError::Reducible;
        assert_eq!(e.to_string(), "chain is reducible");
        let e = MarkovError::Linalg(LinalgError::Empty);
        assert!(e.source().is_some());
        let e = MarkovError::NonPositiveParameter {
            name: "mu",
            value: 0.0,
        };
        assert!(e.to_string().contains("mu"));
    }
}
