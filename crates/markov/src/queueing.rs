use crate::{BirthDeath, MarkovError};

/// Closed-form M/M/1/K loss queue.
///
/// This is the elementary model of one processor's transmit buffer in the
/// paper: Poisson(λ) request arrivals, exponential(μ) bus service, room
/// for `K` requests *including* the one in service; arrivals finding the
/// buffer full are lost. The formulas here are the analytic oracles used
/// to validate both the discrete-event simulator and the CTMDP LP.
///
/// # Examples
///
/// ```
/// use socbuf_markov::MM1K;
///
/// # fn main() -> Result<(), socbuf_markov::MarkovError> {
/// let q = MM1K::new(2.0, 1.0, 3)?; // overloaded queue, ρ = 2
/// // Overloaded queues lose roughly λ − μ once the buffer saturates.
/// assert!(q.loss_rate() > 0.9 * (q.arrival_rate() - q.service_rate()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MM1K {
    lambda: f64,
    mu: f64,
    k: usize,
}

impl MM1K {
    /// Creates a queue with arrival rate `lambda`, service rate `mu` and
    /// capacity `k ≥ 1`.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::NonPositiveParameter`] if `lambda < 0`, `mu ≤ 0`
    ///   or `k == 0`.
    pub fn new(lambda: f64, mu: f64, k: usize) -> Result<Self, MarkovError> {
        if lambda < 0.0 || !lambda.is_finite() {
            return Err(MarkovError::NonPositiveParameter {
                name: "lambda",
                value: lambda,
            });
        }
        if mu <= 0.0 || !mu.is_finite() {
            return Err(MarkovError::NonPositiveParameter {
                name: "mu",
                value: mu,
            });
        }
        if k == 0 {
            return Err(MarkovError::NonPositiveParameter {
                name: "k",
                value: 0.0,
            });
        }
        Ok(MM1K { lambda, mu, k })
    }

    /// Arrival rate λ.
    pub fn arrival_rate(&self) -> f64 {
        self.lambda
    }

    /// Service rate μ.
    pub fn service_rate(&self) -> f64 {
        self.mu
    }

    /// Buffer capacity K.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Offered load ρ = λ/μ.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Stationary probability of each occupancy `0..=K`.
    pub fn state_probabilities(&self) -> Vec<f64> {
        let k = self.k;
        let rho = self.rho();
        if (rho - 1.0).abs() < 1e-12 {
            return vec![1.0 / (k as f64 + 1.0); k + 1];
        }
        // π_n = ρ^n (1 − ρ) / (1 − ρ^{K+1}); computed via running product
        // with normalization at the end (robust for large ρ).
        let mut pi = vec![0.0; k + 1];
        pi[0] = 1.0;
        let mut max = 1.0_f64;
        for n in 0..k {
            pi[n + 1] = pi[n] * rho;
            max = max.max(pi[n + 1]);
            if max > 1e250 {
                for p in pi.iter_mut().take(n + 2) {
                    *p /= max;
                }
                max = 1.0;
            }
        }
        let sum: f64 = pi.iter().sum();
        for p in pi.iter_mut() {
            *p /= sum;
        }
        pi
    }

    /// Blocking probability `P(occupancy = K)` — the fraction of arrivals
    /// that are lost (PASTA).
    pub fn blocking_probability(&self) -> f64 {
        *self.state_probabilities().last().expect("K+1 ≥ 2 states")
    }

    /// Loss rate `λ · P(block)` (lost requests per unit time).
    pub fn loss_rate(&self) -> f64 {
        self.lambda * self.blocking_probability()
    }

    /// Accepted throughput `λ (1 − P(block))`, which equals the service
    /// completion rate in steady state.
    pub fn throughput(&self) -> f64 {
        self.lambda * (1.0 - self.blocking_probability())
    }

    /// Mean stationary occupancy `E[N]`.
    pub fn mean_occupancy(&self) -> f64 {
        self.state_probabilities()
            .iter()
            .enumerate()
            .map(|(n, p)| n as f64 * p)
            .sum()
    }

    /// Mean waiting time of *accepted* requests (Little's law:
    /// `E[N] / throughput`). Returns `0` for a zero-arrival queue.
    pub fn mean_wait(&self) -> f64 {
        let t = self.throughput();
        if t <= 0.0 {
            0.0
        } else {
            self.mean_occupancy() / t
        }
    }

    /// The equivalent birth–death chain.
    pub fn to_birth_death(&self) -> BirthDeath {
        BirthDeath::uniform(self.lambda, self.mu, self.k)
            .expect("validated MM1K parameters form a birth-death chain")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        // ρ = 0.5, K = 2: π = (4/7, 2/7, 1/7).
        let q = MM1K::new(0.5, 1.0, 2).unwrap();
        let pi = q.state_probabilities();
        assert!((pi[0] - 4.0 / 7.0).abs() < 1e-12);
        assert!((q.blocking_probability() - 1.0 / 7.0).abs() < 1e-12);
        assert!((q.loss_rate() - 0.5 / 7.0).abs() < 1e-12);
        assert!((q.throughput() - 0.5 * 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn rho_equal_one_is_uniform() {
        let q = MM1K::new(1.0, 1.0, 4).unwrap();
        let pi = q.state_probabilities();
        for p in &pi {
            assert!((p - 0.2).abs() < 1e-12);
        }
        assert!((q.mean_occupancy() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn matches_birth_death() {
        let q = MM1K::new(1.7, 2.3, 6).unwrap();
        let pi_q = q.state_probabilities();
        let pi_bd = q.to_birth_death().stationary().unwrap();
        for (a, b) in pi_q.iter().zip(&pi_bd) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn zero_arrivals() {
        let q = MM1K::new(0.0, 1.0, 3).unwrap();
        assert_eq!(q.blocking_probability(), 0.0);
        assert_eq!(q.loss_rate(), 0.0);
        assert_eq!(q.mean_wait(), 0.0);
        let pi = q.state_probabilities();
        assert_eq!(pi[0], 1.0);
    }

    #[test]
    fn monotone_in_capacity() {
        // Blocking probability decreases as K grows.
        let mut prev = 1.0;
        for k in 1..=12 {
            let q = MM1K::new(0.9, 1.0, k).unwrap();
            let b = q.blocking_probability();
            assert!(b < prev);
            prev = b;
        }
    }

    #[test]
    fn heavy_overload_loses_excess() {
        let q = MM1K::new(10.0, 1.0, 5).unwrap();
        // Loss rate approaches λ − μ for ρ ≫ 1.
        assert!((q.loss_rate() - 9.0).abs() < 0.1);
        // Throughput approaches μ.
        assert!((q.throughput() - 1.0).abs() < 0.1);
    }

    #[test]
    fn validation() {
        assert!(MM1K::new(-1.0, 1.0, 1).is_err());
        assert!(MM1K::new(1.0, 0.0, 1).is_err());
        assert!(MM1K::new(1.0, 1.0, 0).is_err());
        assert!(MM1K::new(f64::NAN, 1.0, 1).is_err());
    }

    #[test]
    fn littles_law_consistency() {
        let q = MM1K::new(0.8, 1.0, 5).unwrap();
        let n = q.mean_occupancy();
        let w = q.mean_wait();
        let t = q.throughput();
        assert!((n - w * t).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn probabilities_sum_to_one(lambda in 0.01f64..20.0, mu in 0.01f64..20.0, k in 1usize..40) {
            let q = MM1K::new(lambda, mu, k).unwrap();
            let pi = q.state_probabilities();
            prop_assert_eq!(pi.len(), k + 1);
            prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn flow_conservation(lambda in 0.01f64..20.0, mu in 0.01f64..20.0, k in 1usize..40) {
            // Accepted arrivals equal service completions: λ(1−B) = μ(1−π0).
            let q = MM1K::new(lambda, mu, k).unwrap();
            let pi = q.state_probabilities();
            let accepted = lambda * (1.0 - pi[k]);
            let served = mu * (1.0 - pi[0]);
            prop_assert!((accepted - served).abs() < 1e-8 * (1.0 + accepted));
        }

        #[test]
        fn blocking_between_zero_and_one(lambda in 0.0f64..50.0, mu in 0.01f64..20.0, k in 1usize..30) {
            let q = MM1K::new(lambda, mu, k).unwrap();
            let b = q.blocking_probability();
            prop_assert!((0.0..=1.0).contains(&b));
        }
    }
}
