use crate::{Ctmc, MarkovError};

/// A birth–death chain on states `0..=n` with per-level birth and death
/// rates.
///
/// Every single-queue CTMDP block in the buffer-sizing formulation is a
/// birth–death chain (arrivals move the occupancy up, bus service moves
/// it down), so this type gets both a closed-form stationary solution
/// and a conversion to a general [`Ctmc`] for cross-checking.
///
/// `birth[i]` is the rate from state `i` to `i + 1` (defined for
/// `i = 0..n`); `death[i]` is the rate from state `i + 1` to `i`.
///
/// # Examples
///
/// ```
/// use socbuf_markov::BirthDeath;
///
/// # fn main() -> Result<(), socbuf_markov::MarkovError> {
/// // M/M/1/3 with λ = 1, μ = 2.
/// let bd = BirthDeath::uniform(1.0, 2.0, 3)?;
/// let pi = bd.stationary()?;
/// assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// assert!(pi[0] > pi[3]); // underloaded queue is usually near empty
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BirthDeath {
    birth: Vec<f64>,
    death: Vec<f64>,
}

impl BirthDeath {
    /// Builds a chain from per-level rates. `birth.len()` must equal
    /// `death.len()`; the chain then lives on `0..=birth.len()`.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::NonPositiveParameter`] if the vectors are empty,
    ///   have different lengths, or any *death* rate is non-positive
    ///   (birth rates may be zero, which truncates the chain).
    pub fn new(birth: Vec<f64>, death: Vec<f64>) -> Result<Self, MarkovError> {
        if birth.is_empty() || birth.len() != death.len() {
            return Err(MarkovError::NonPositiveParameter {
                name: "rate vector length",
                value: birth.len() as f64,
            });
        }
        for &b in &birth {
            if b < 0.0 || !b.is_finite() {
                return Err(MarkovError::NonPositiveParameter {
                    name: "birth rate",
                    value: b,
                });
            }
        }
        for &d in &death {
            if d <= 0.0 || !d.is_finite() {
                return Err(MarkovError::NonPositiveParameter {
                    name: "death rate",
                    value: d,
                });
            }
        }
        Ok(BirthDeath { birth, death })
    }

    /// Constant-rate chain: `λ` up, `μ` down, capacity `k` (states
    /// `0..=k`) — the M/M/1/K queue.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::NonPositiveParameter`] if `lambda < 0`, `mu ≤ 0`
    ///   or `k == 0`.
    pub fn uniform(lambda: f64, mu: f64, k: usize) -> Result<Self, MarkovError> {
        if k == 0 {
            return Err(MarkovError::NonPositiveParameter {
                name: "capacity",
                value: 0.0,
            });
        }
        if lambda < 0.0 {
            return Err(MarkovError::NonPositiveParameter {
                name: "lambda",
                value: lambda,
            });
        }
        if mu <= 0.0 {
            return Err(MarkovError::NonPositiveParameter {
                name: "mu",
                value: mu,
            });
        }
        BirthDeath::new(vec![lambda; k], vec![mu; k])
    }

    /// Number of states (`capacity + 1`).
    pub fn num_states(&self) -> usize {
        self.birth.len() + 1
    }

    /// Birth rate out of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_states() - 1`.
    pub fn birth_rate(&self, i: usize) -> f64 {
        self.birth[i]
    }

    /// Death rate out of state `i + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_states() - 1`.
    pub fn death_rate(&self, i: usize) -> f64 {
        self.death[i]
    }

    /// Closed-form stationary distribution:
    /// `π_{i+1} = π_i · birth_i / death_i`, normalized.
    ///
    /// # Errors
    ///
    /// This method cannot fail for a validated chain; the `Result` keeps
    /// the signature aligned with [`Ctmc::stationary`].
    pub fn stationary(&self) -> Result<Vec<f64>, MarkovError> {
        let n = self.num_states();
        let mut pi = vec![0.0; n];
        // Work with running products; rescale on the fly to avoid overflow
        // for strongly drifting chains.
        pi[0] = 1.0;
        let mut max = 1.0_f64;
        for i in 0..n - 1 {
            pi[i + 1] = pi[i] * self.birth[i] / self.death[i];
            max = max.max(pi[i + 1]);
            if max > 1e250 {
                for p in pi.iter_mut().take(i + 2) {
                    *p /= max;
                }
                max = 1.0;
            }
        }
        let sum: f64 = pi.iter().sum();
        for p in pi.iter_mut() {
            *p /= sum;
        }
        Ok(pi)
    }

    /// Converts to a general CTMC (for cross-checks and uniformization).
    pub fn to_ctmc(&self) -> Ctmc {
        let n = self.num_states();
        let mut rates = Vec::with_capacity(2 * (n - 1));
        for i in 0..n - 1 {
            if self.birth[i] > 0.0 {
                rates.push((i, i + 1, self.birth[i]));
            }
            rates.push((i + 1, i, self.death[i]));
        }
        Ctmc::from_rates(n, &rates).expect("validated birth-death rates form a generator")
    }

    /// Expected state (mean queue occupancy) under the stationary law.
    pub fn mean_state(&self) -> f64 {
        let pi = self
            .stationary()
            .expect("birth-death stationary always exists");
        pi.iter().enumerate().map(|(i, p)| i as f64 * p).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_ctmc_stationary() {
        let bd = BirthDeath::new(vec![1.0, 2.0, 0.5], vec![2.0, 1.0, 3.0]).unwrap();
        let pi_bd = bd.stationary().unwrap();
        let pi_ctmc = bd.to_ctmc().stationary().unwrap();
        for (a, b) in pi_bd.iter().zip(&pi_ctmc) {
            assert!((a - b).abs() < 1e-10, "{pi_bd:?} vs {pi_ctmc:?}");
        }
    }

    #[test]
    fn uniform_is_mm1k() {
        let bd = BirthDeath::uniform(0.5, 1.0, 2).unwrap();
        let pi = bd.stationary().unwrap();
        // π ∝ (1, ρ, ρ²) with ρ = 0.5 → (4/7, 2/7, 1/7).
        assert!((pi[0] - 4.0 / 7.0).abs() < 1e-12);
        assert!((pi[1] - 2.0 / 7.0).abs() < 1e-12);
        assert!((pi[2] - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn zero_birth_rate_truncates() {
        let bd = BirthDeath::new(vec![1.0, 0.0], vec![1.0, 1.0]).unwrap();
        let pi = bd.stationary().unwrap();
        assert!(pi[2].abs() < 1e-15);
    }

    #[test]
    fn validation() {
        assert!(BirthDeath::new(vec![], vec![]).is_err());
        assert!(BirthDeath::new(vec![1.0], vec![1.0, 2.0]).is_err());
        assert!(BirthDeath::new(vec![-1.0], vec![1.0]).is_err());
        assert!(BirthDeath::new(vec![1.0], vec![0.0]).is_err());
        assert!(BirthDeath::uniform(1.0, 1.0, 0).is_err());
        assert!(BirthDeath::uniform(-0.1, 1.0, 2).is_err());
        assert!(BirthDeath::uniform(1.0, 0.0, 2).is_err());
    }

    #[test]
    fn heavy_drift_does_not_overflow() {
        let bd = BirthDeath::uniform(1000.0, 0.001, 200).unwrap();
        let pi = bd.stationary().unwrap();
        assert!(pi.iter().all(|p| p.is_finite()));
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Mass concentrates at the top.
        assert!(pi[200] > 0.99);
    }

    #[test]
    fn mean_state_of_symmetric_chain_is_center() {
        let bd = BirthDeath::uniform(1.0, 1.0, 4).unwrap();
        assert!((bd.mean_state() - 2.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn rates() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
        (1usize..=12).prop_flat_map(|n| {
            (
                proptest::collection::vec(0.01f64..10.0, n),
                proptest::collection::vec(0.01f64..10.0, n),
            )
        })
    }

    proptest! {
        #[test]
        fn stationary_is_distribution((b, d) in rates()) {
            let bd = BirthDeath::new(b, d).unwrap();
            let pi = bd.stationary().unwrap();
            prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(pi.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }

        #[test]
        fn closed_form_matches_linear_solve((b, d) in rates()) {
            let bd = BirthDeath::new(b, d).unwrap();
            let pi_bd = bd.stationary().unwrap();
            let pi_ctmc = bd.to_ctmc().stationary().unwrap();
            for (x, y) in pi_bd.iter().zip(&pi_ctmc) {
                prop_assert!((x - y).abs() < 1e-8);
            }
        }

        #[test]
        fn detailed_balance_holds((b, d) in rates()) {
            let bd = BirthDeath::new(b.clone(), d.clone()).unwrap();
            let pi = bd.stationary().unwrap();
            for i in 0..b.len() {
                // π_i λ_i = π_{i+1} μ_i (birth-death detailed balance).
                prop_assert!((pi[i] * b[i] - pi[i + 1] * d[i]).abs() < 1e-9);
            }
        }
    }
}
