use socbuf_linalg::{Lu, Matrix};

use crate::MarkovError;

/// A finite discrete-time Markov chain given by its transition matrix.
///
/// Produced by [`crate::Ctmc::uniformized`] and usable on its own. Rows
/// must be probability distributions.
///
/// # Examples
///
/// ```
/// use socbuf_linalg::Matrix;
/// use socbuf_markov::Dtmc;
///
/// # fn main() -> Result<(), socbuf_markov::MarkovError> {
/// let p = Matrix::from_rows(&[&[0.5, 0.5], &[0.25, 0.75]]).unwrap();
/// let d = Dtmc::from_matrix(p)?;
/// let pi = d.stationary()?;
/// assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dtmc {
    p: Matrix,
}

const PROB_TOL: f64 = 1e-8;

impl Dtmc {
    /// Builds a chain from a stochastic matrix.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::BadStochasticRow`] if a row does not sum to one
    ///   or contains an entry outside `[0, 1]`.
    /// * [`MarkovError::Linalg`] for non-square or empty input.
    pub fn from_matrix(p: Matrix) -> Result<Self, MarkovError> {
        if !p.is_square() {
            return Err(MarkovError::Linalg(socbuf_linalg::LinalgError::NotSquare {
                rows: p.rows(),
                cols: p.cols(),
            }));
        }
        if p.rows() == 0 {
            return Err(MarkovError::Linalg(socbuf_linalg::LinalgError::Empty));
        }
        for i in 0..p.rows() {
            let mut sum = 0.0;
            for j in 0..p.cols() {
                let v = p[(i, j)];
                if !(-PROB_TOL..=1.0 + PROB_TOL).contains(&v) {
                    return Err(MarkovError::BadStochasticRow { row: i, sum: v });
                }
                sum += v;
            }
            if (sum - 1.0).abs() > PROB_TOL {
                return Err(MarkovError::BadStochasticRow { row: i, sum });
            }
        }
        Ok(Dtmc { p })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.p.rows()
    }

    /// The transition matrix.
    pub fn transition_matrix(&self) -> &Matrix {
        &self.p
    }

    /// One step of the chain: returns `x P` for a distribution `x`.
    ///
    /// # Errors
    ///
    /// Returns a dimension error if `x.len() != num_states()`.
    pub fn step(&self, x: &[f64]) -> Result<Vec<f64>, MarkovError> {
        Ok(self.p.vecmat(x)?)
    }

    /// `true` if every state can reach every other through positive
    /// probability transitions.
    pub fn is_irreducible(&self) -> bool {
        let n = self.num_states();
        if n == 1 {
            return true;
        }
        let reach = |forward: bool| -> usize {
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            let mut count = 1;
            while let Some(i) = stack.pop() {
                for j in 0..n {
                    let v = if forward {
                        self.p[(i, j)]
                    } else {
                        self.p[(j, i)]
                    };
                    if i != j && v > 0.0 && !seen[j] {
                        seen[j] = true;
                        count += 1;
                        stack.push(j);
                    }
                }
            }
            count
        };
        reach(true) == n && reach(false) == n
    }

    /// Stationary distribution `π P = π`, `Σ π = 1`.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::Reducible`] if no unique stationary distribution
    ///   exists.
    pub fn stationary(&self) -> Result<Vec<f64>, MarkovError> {
        if !self.is_irreducible() {
            return Err(MarkovError::Reducible);
        }
        let n = self.num_states();
        // (Pᵀ − I) π = 0 with the last row replaced by Σ π = 1.
        let mut a = self.p.transpose();
        for i in 0..n {
            a[(i, i)] -= 1.0;
        }
        for j in 0..n {
            a[(n - 1, j)] = 1.0;
        }
        let mut b = vec![0.0; n];
        b[n - 1] = 1.0;
        let lu = Lu::factor(&a)?;
        let mut pi = lu.solve(&b)?;
        let mut sum = 0.0;
        for p in pi.iter_mut() {
            if *p < 0.0 {
                if *p < -1e-8 {
                    return Err(MarkovError::Reducible);
                }
                *p = 0.0;
            }
            sum += *p;
        }
        for p in pi.iter_mut() {
            *p /= sum;
        }
        Ok(pi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_rows() {
        let bad = Matrix::from_rows(&[&[0.5, 0.6], &[0.5, 0.5]]).unwrap();
        assert!(matches!(
            Dtmc::from_matrix(bad),
            Err(MarkovError::BadStochasticRow { row: 0, .. })
        ));
        let neg = Matrix::from_rows(&[&[1.5, -0.5], &[0.5, 0.5]]).unwrap();
        assert!(Dtmc::from_matrix(neg).is_err());
    }

    #[test]
    fn stationary_of_doubly_stochastic_is_uniform() {
        let p = Matrix::from_rows(&[&[0.3, 0.7], &[0.7, 0.3]]).unwrap();
        let d = Dtmc::from_matrix(p).unwrap();
        let pi = d.stationary().unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn step_advances_distribution() {
        let p = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let d = Dtmc::from_matrix(p).unwrap();
        let x = d.step(&[1.0, 0.0]).unwrap();
        assert_eq!(x, vec![0.0, 1.0]);
    }

    #[test]
    fn identity_chain_is_reducible() {
        let d = Dtmc::from_matrix(Matrix::identity(3)).unwrap();
        assert!(!d.is_irreducible());
        assert!(matches!(d.stationary(), Err(MarkovError::Reducible)));
    }

    #[test]
    fn repeated_stepping_converges_to_stationary() {
        let p = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8]]).unwrap();
        let d = Dtmc::from_matrix(p).unwrap();
        let pi = d.stationary().unwrap();
        let mut x = vec![1.0, 0.0];
        for _ in 0..200 {
            x = d.step(&x).unwrap();
        }
        assert!((x[0] - pi[0]).abs() < 1e-9);
        assert!((x[1] - pi[1]).abs() < 1e-9);
    }
}
