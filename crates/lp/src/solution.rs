use socbuf_linalg::{Lu, Matrix};

use crate::problem::{LpProblem, RowId, VarId};
use crate::revised::{BasisSnapshot, LpEngine};
use crate::simplex::BasicSolution;
use crate::standard_form::{ScalingStats, StandardForm};
use crate::LpError;

/// An optimal basic solution of an [`LpProblem`].
///
/// Besides the primal values and objective, the solution carries the dual
/// prices and reduced costs recovered from the final basis — these are
/// the sensitivity quantities the buffer-sizing pipeline reports (e.g.
/// the shadow price of the global buffer-budget constraint), and the
/// basic/nonbasic split that the K-switching structure analysis inspects.
///
/// Sign conventions:
/// * [`LpSolution::dual`] is `∂ objective / ∂ rhs` in the problem's own
///   sense (for a `Maximize` problem a binding `≤` row has a
///   non-negative dual).
/// * [`LpSolution::reduced_cost`] is non-negative at optimum for
///   `Minimize` problems (and non-positive for `Maximize`) for variables
///   sitting at their lower bound, with upper-bound shadow prices folded
///   out (so variables at their *upper* bound show the opposite sign).
#[derive(Debug, Clone)]
pub struct LpSolution {
    values: Vec<f64>,
    objective: f64,
    duals: Vec<f64>,
    reduced: Vec<f64>,
    basic: Vec<bool>,
    iterations: usize,
    engine: LpEngine,
    snapshot: BasisSnapshot,
    scaling: ScalingStats,
}

impl LpSolution {
    pub(crate) fn from_basic(
        p: &LpProblem,
        sf: &StandardForm,
        basic: &BasicSolution,
        engine: LpEngine,
    ) -> Result<LpSolution, LpError> {
        let n = p.num_vars();
        // Unscaling contract (see `standard_form`'s module docs): the
        // engines solved the equilibrated form, so primal values are
        // `x = C·x̃` (then shifted), duals `y = R·ỹ` and reduced costs
        // `d = d̃ / c_j` — all exact, the factors being powers of two.
        let mut values = vec![0.0; n];
        for j in 0..n {
            values[j] = sf.shift[j] + sf.col_scale(j) * basic.x[j];
        }
        let objective: f64 = p.obj_vec().iter().zip(&values).map(|(c, x)| c * x).sum();

        // --- Recover duals from the final basis: solve Bᵀ y = c_B. ----
        // The basis matrix is gathered from the CSR standard form by one
        // row sweep (scatter entries whose column is basic) instead of
        // dense column probing.
        let active_rows: Vec<usize> = (0..sf.a.rows()).filter(|&i| basic.row_active[i]).collect();
        let m_act = active_rows.len();
        let mut y_by_row = vec![0.0; sf.a.rows()];
        if m_act > 0 {
            // Map standard-form column -> position of the basic column in
            // the (active) basis matrix.
            let mut col_pos = vec![usize::MAX; sf.a.cols()];
            let mut cb = vec![0.0; m_act];
            for (pos_col, &i) in active_rows.iter().enumerate() {
                let col = basic.basis[i];
                debug_assert!(col < sf.a.cols(), "artificial left in active basis");
                col_pos[col] = pos_col;
                cb[pos_col] = sf.c[col];
            }
            let mut bmat = Matrix::zeros(m_act, m_act);
            for (pos_row, &r) in active_rows.iter().enumerate() {
                for (col, v) in sf.a.iter_row(r) {
                    let pos_col = col_pos[col];
                    if pos_col != usize::MAX {
                        bmat[(pos_row, pos_col)] = v;
                    }
                }
            }
            let lu = Lu::factor(&bmat).map_err(|e| {
                LpError::InvalidModel(format!("final basis is numerically singular: {e}"))
            })?;
            let y = lu
                .solve_transpose(&cb)
                .map_err(|e| LpError::InvalidModel(format!("dual solve failed: {e}")))?;
            for (pos, &i) in active_rows.iter().enumerate() {
                y_by_row[i] = y[pos];
            }
        }

        // User-row duals (min-form), then flip for Maximize. `y_by_row`
        // itself stays in scaled units — the reduced-cost accumulation
        // below runs against the scaled matrix and needs the scaled ỹ.
        let obj_sign = if sf.negated_obj { -1.0 } else { 1.0 };
        let mut duals = vec![0.0; p.num_rows()];
        for i in 0..sf.a.rows() {
            if let Some(ri) = sf.row_origin[i] {
                duals[ri] = obj_sign * sf.row_sign[i] * sf.row_scale(i) * y_by_row[i];
            }
        }

        // Reduced costs w.r.t. user rows only (upper-bound shadow prices
        // folded out): d_j = c_j − Σ_{user rows} y_i a_ij, accumulated by
        // scattering each CSR row once — O(nnz).
        let mut reduced: Vec<f64> = sf.c[..n].to_vec();
        for i in 0..sf.a.rows() {
            let y = y_by_row[i];
            if sf.row_origin[i].is_none() || y == 0.0 {
                continue;
            }
            for (j, v) in sf.a.iter_row(i) {
                if j < n {
                    reduced[j] -= y * v;
                }
            }
        }
        for (j, d) in reduced.iter_mut().enumerate() {
            *d *= obj_sign / sf.col_scale(j);
        }

        let mut basic_flags = vec![false; n];
        for (i, &col) in basic.basis.iter().enumerate() {
            if basic.row_active[i] && col < n {
                basic_flags[col] = true;
            }
        }

        // Snapshot normalization: inactive (redundant) rows carry the
        // canonical `usize::MAX` marker whatever the engine left in its
        // raw basis vector, so either engine's snapshot can seed a warm
        // revised solve.
        let snapshot_basis: Vec<usize> = basic
            .basis
            .iter()
            .zip(&basic.row_active)
            .map(|(&col, &active)| {
                if active && col < sf.a.cols() {
                    col
                } else {
                    usize::MAX
                }
            })
            .collect();

        Ok(LpSolution {
            values,
            objective,
            duals,
            reduced,
            basic: basic_flags,
            iterations: basic.iterations,
            engine,
            snapshot: BasisSnapshot::new(snapshot_basis, sf.a.cols(), engine),
            scaling: sf.scaling_stats,
        })
    }

    /// Optimal objective value, in the problem's own sense.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of a variable at the optimum.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the solved problem.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }

    /// All variable values, in creation order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Dual price (`∂ objective / ∂ rhs`) of a constraint row.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not belong to the solved problem.
    pub fn dual(&self, r: RowId) -> f64 {
        self.duals[r.index()]
    }

    /// All row duals, in creation order.
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }

    /// Reduced cost of a variable (see the type-level docs for the sign
    /// convention).
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the solved problem.
    pub fn reduced_cost(&self, v: VarId) -> f64 {
        self.reduced[v.index()]
    }

    /// Whether the variable is basic in the final simplex basis.
    ///
    /// Basic solutions are what Feinberg's K-switching theorem speaks
    /// about: at a basic optimum of a constrained-CTMDP LP at most K
    /// states carry more than one action with positive probability.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the solved problem.
    pub fn is_basic(&self, v: VarId) -> bool {
        self.basic[v.index()]
    }

    /// Total simplex pivots used across both phases.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Which engine produced this solution (both satisfy the same
    /// [`crate::verify_optimality`] certificate; the tag matters when
    /// interpreting pivot counts or reproducing a run).
    pub fn engine(&self) -> LpEngine {
        self.engine
    }

    /// What the equilibration pass measured and did for this solve —
    /// the nonzero-magnitude spread of the standard form before and
    /// after scaling, and whether scaling was applied at all (it only
    /// is when the spread exceeds the trigger and
    /// [`crate::SimplexOptions::equilibrate`] is set). The solution
    /// itself is always reported in original units regardless.
    pub fn scaling_stats(&self) -> ScalingStats {
        self.scaling
    }

    /// The optimal basis this solution sits at, exported for
    /// warm-starting a re-solve of a nearby problem through
    /// [`crate::PreparedLp::solve_warm`]. The snapshot is standalone
    /// data (row → basic standard-form column) — it stays valid however
    /// the problem is subsequently mutated, and a solver that finds it
    /// stale simply falls back to a cold solve.
    pub fn basis_snapshot(&self) -> BasisSnapshot {
        self.snapshot.clone()
    }
}
