//! A prepared (cached-assembly) linear program for parametric re-solves.
//!
//! Sweep campaigns solve *families* of nearly identical LPs: a budget
//! sweep moves only the right-hand side of one row, a load sweep
//! rescales a known set of coefficients. Rebuilding the standard form
//! from scratch at every point throws away both the `O(nnz)` assembly
//! work and — far more importantly — the optimal basis of the
//! neighboring point. [`PreparedLp`] keeps the [`StandardForm`] alive
//! across solves, applies RHS-only and pattern-preserving coefficient
//! deltas *in place*, and accepts a [`BasisSnapshot`] to warm-start the
//! revised simplex from the previous optimum.
//!
//! The warm path is strictly an accelerator: a snapshot that is stale,
//! singular or simply wrong routes to the ordinary cold two-phase
//! solve, so [`PreparedLp::solve_warm`] always returns what
//! [`PreparedLp::solve_with`] would have (same status; the optimal
//! objective of an LP is unique even when the vertex is not).
//!
//! **Equilibration composes with all of this.** The scale vectors are
//! computed once at construction ([`PreparedLp::new_with_scaling`]) and
//! cached alongside the assembled form; every in-place delta rescales
//! its input with the cached factors, a [`BasisSnapshot`] stays valid
//! across scaling (it never changes the basis's combinatorial
//! structure), and solutions — values, duals, reduced costs — come back
//! in original units. See `crate::standard_form`'s module docs for the
//! exact unscaling contract.
//!
//! # Examples
//!
//! ```
//! use socbuf_lp::{LpProblem, PreparedLp, Relation, Sense, SimplexOptions};
//!
//! # fn main() -> Result<(), socbuf_lp::LpError> {
//! // min x + 2y  s.t.  x + y ≥ b, for a family of b's.
//! let mut p = LpProblem::new(Sense::Minimize);
//! let x = p.add_var("x", 1.0);
//! let y = p.add_var("y", 2.0);
//! let row = p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 1.0)?;
//! let mut prepared = PreparedLp::new(p)?;
//!
//! let opts = SimplexOptions::default();
//! let first = prepared.solve_with(&opts)?;
//! assert!((first.objective() - 1.0).abs() < 1e-9);
//!
//! // Move the rhs and re-solve from the previous basis.
//! prepared.set_rhs(row, 3.0)?;
//! let second = prepared.solve_warm(&opts, &first.basis_snapshot())?;
//! assert!((second.objective() - 3.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

use crate::problem::{LpProblem, RowId, VarId};
use crate::revised::{run_revised, run_revised_warm, BasisSnapshot, LpEngine};
use crate::simplex::{run_simplex, SimplexOptions};
use crate::solution::LpSolution;
use crate::standard_form::{build_standard_form, StandardForm};
use crate::LpError;

/// A problem plus its cached standard form, mutable in place for
/// parametric deltas and solvable warm from an exported basis. See the
/// module-level documentation for the motivation and an example.
#[derive(Debug)]
pub struct PreparedLp {
    problem: LpProblem,
    sf: StandardForm,
    /// User row → standard-form row (user rows map one-to-one; the
    /// extra standard-form rows are variable upper bounds).
    sf_row_of: Vec<usize>,
}

impl PreparedLp {
    /// Builds the standard form once and takes ownership of the
    /// problem (the two must stay in lock-step under deltas, so outside
    /// mutation is ruled out by construction). Equilibration is ON (the
    /// [`crate::SimplexOptions`] default) — use
    /// [`PreparedLp::new_with_scaling`] to opt out.
    ///
    /// # Errors
    ///
    /// [`LpError::EmptyProblem`] for a variable-free problem, or any
    /// standard-form assembly failure.
    pub fn new(problem: LpProblem) -> Result<PreparedLp, LpError> {
        PreparedLp::new_with_scaling(problem, true)
    }

    /// [`PreparedLp::new`] with the equilibration decision made
    /// explicit. The decision is taken **once, here**: the scale
    /// vectors are computed on the initial coefficients, cached
    /// alongside the assembled form, and reused verbatim by every
    /// subsequent in-place delta ([`PreparedLp::set_rhs`],
    /// [`PreparedLp::set_row_coeffs`],
    /// [`PreparedLp::set_objective_coeff`] rescale their inputs with
    /// the cached factors) — so a [`BasisSnapshot`] taken at any point
    /// of a chain keeps meaning the same basis. The `equilibrate` field
    /// of the [`SimplexOptions`] later passed to a solve is ignored
    /// here in favor of this construction-time choice.
    ///
    /// # Errors
    ///
    /// Same as [`PreparedLp::new`].
    pub fn new_with_scaling(problem: LpProblem, equilibrate: bool) -> Result<PreparedLp, LpError> {
        if problem.num_vars() == 0 {
            return Err(LpError::EmptyProblem);
        }
        let mut sf = build_standard_form(&problem)?;
        sf.prepare_scaling(equilibrate);
        let mut sf_row_of = vec![usize::MAX; problem.num_rows()];
        for (i, origin) in sf.row_origin.iter().enumerate() {
            if let Some(r) = origin {
                sf_row_of[*r] = i;
            }
        }
        Ok(PreparedLp {
            problem,
            sf,
            sf_row_of,
        })
    }

    /// The (current) problem — what [`crate::verify_optimality`]
    /// certifies solutions against.
    pub fn problem(&self) -> &LpProblem {
        &self.problem
    }

    /// Re-targets one constraint's right-hand side in place — the
    /// budget-style delta. `O(row nnz)`.
    ///
    /// # Errors
    ///
    /// [`LpError::InvalidModel`] if `rhs` is not finite or the change
    /// would flip the row's standard-form orientation (rebuild via
    /// [`PreparedLp::new`] in that case).
    ///
    /// # Panics
    ///
    /// Panics if `row` does not belong to this problem.
    pub fn set_rhs(&mut self, row: RowId, rhs: f64) -> Result<(), LpError> {
        if !rhs.is_finite() {
            return Err(LpError::InvalidModel(format!(
                "right-hand side {rhs} is not finite"
            )));
        }
        let i = self.sf_row_of[row.index()];
        let (terms, _, _) = self.problem.row(row);
        let shifted = rhs
            - terms
                .iter()
                .map(|&(v, c)| c * self.sf.shift[v.index()])
                .sum::<f64>();
        self.sf.set_rhs_in_place(i, shifted)?;
        self.problem.set_row_rhs(row.index(), rhs);
        Ok(())
    }

    /// Rewrites one constraint's coefficients in place — the
    /// rate-scaling delta. The terms must cover exactly the row's
    /// existing variables (after accumulating duplicates and dropping
    /// zeros), in any order; only the numeric values may change.
    /// `O(row nnz · log)`.
    ///
    /// # Errors
    ///
    /// [`LpError::InvalidModel`] for non-finite coefficients, a changed
    /// sparsity pattern, or a coefficient change that flips the row's
    /// orientation through the lower-bound shift (rebuild in those
    /// cases).
    ///
    /// # Panics
    ///
    /// Panics if `row` does not belong to this problem.
    pub fn set_row_coeffs(&mut self, row: RowId, terms: &[(VarId, f64)]) -> Result<(), LpError> {
        let n = self.problem.num_vars();
        let mut dense: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            if v.index() >= n {
                return Err(LpError::InvalidModel(format!(
                    "variable id {} does not belong to this problem",
                    v.index()
                )));
            }
            if !c.is_finite() {
                return Err(LpError::InvalidModel(format!(
                    "coefficient {c} is not finite"
                )));
            }
            dense.push((v.index(), c));
        }
        dense.sort_by_key(|&(j, _)| j);
        let mut normalized: Vec<(usize, f64)> = Vec::with_capacity(dense.len());
        for (j, c) in dense {
            match normalized.last_mut() {
                Some((k, acc)) if *k == j => *acc += c,
                _ => normalized.push((j, c)),
            }
        }
        normalized.retain(|&(_, c)| c != 0.0);

        let i = self.sf_row_of[row.index()];
        // The lower-bound shift couples coefficients to the stored rhs;
        // re-derive it from the (unchanged) user rhs and pre-check the
        // orientation BEFORE any mutation, so a rejected delta leaves
        // the problem, matrix and rhs untouched and mutually consistent
        // (update_row_values_in_place likewise validates its pattern
        // before writing).
        let (_, _, rhs) = self.problem.row(row);
        let shifted = rhs
            - normalized
                .iter()
                .map(|&(j, c)| c * self.sf.shift[j])
                .sum::<f64>();
        if self.sf.row_sign[i] * shifted < 0.0 {
            return Err(LpError::InvalidModel(format!(
                "coefficient delta flips the orientation of standard-form row {i}; \
                 the standard form must be rebuilt"
            )));
        }
        self.sf.update_row_values_in_place(i, &normalized)?;
        self.sf
            .set_rhs_in_place(i, shifted)
            .expect("orientation pre-checked above");
        self.problem.set_row_terms(row.index(), normalized);
        Ok(())
    }

    /// Rewrites one objective coefficient in place.
    ///
    /// # Errors
    ///
    /// [`LpError::InvalidModel`] for a non-finite coefficient or an
    /// unknown variable.
    pub fn set_objective_coeff(&mut self, v: VarId, coeff: f64) -> Result<(), LpError> {
        if v.index() >= self.problem.num_vars() {
            return Err(LpError::InvalidModel(format!(
                "variable id {} does not belong to this problem",
                v.index()
            )));
        }
        if !coeff.is_finite() {
            return Err(LpError::InvalidModel(format!(
                "objective coefficient {coeff} is not finite"
            )));
        }
        let min_form = if self.sf.negated_obj { -coeff } else { coeff };
        self.sf.set_cost_in_place(v.index(), min_form);
        self.problem.set_obj_coeff(v.index(), coeff);
        Ok(())
    }

    /// Cold solve on the cached standard form — bitwise identical to
    /// [`LpProblem::solve_with`] on the current problem (the form is
    /// the same; only the rebuild is skipped).
    ///
    /// # Errors
    ///
    /// Same as [`LpProblem::solve_with`].
    pub fn solve_with(&self, options: &SimplexOptions) -> Result<LpSolution, LpError> {
        let basic = match options.engine {
            LpEngine::Revised => run_revised(&self.sf, options)?,
            LpEngine::Tableau => run_simplex(&self.sf, options)?,
            LpEngine::Decomposed => {
                // Full decomposition of the (current, delta-updated)
                // problem; the cached joint form is bypassed because the
                // block solves build their own per-block forms.
                return crate::decompose::solve_decomposed(&self.problem, options)
                    .map(|(sol, _)| sol);
            }
        };
        LpSolution::from_basic(&self.problem, &self.sf, &basic, options.engine)
    }

    /// Warm solve from an exported basis (revised and decomposed
    /// engines — a decomposed solve's snapshot *is* a joint basis, so
    /// the warm re-solve runs the joint revised path directly; with
    /// [`LpEngine::Tableau`] selected the snapshot is ignored and the
    /// cold tableau runs, keeping the oracle engine bit-reproducible).
    /// Status and objective always match a cold solve; only the pivot
    /// count (and wall time) differ. See
    /// [`crate::LpSolution::basis_snapshot`].
    ///
    /// # Errors
    ///
    /// Same as [`PreparedLp::solve_with`].
    pub fn solve_warm(
        &self,
        options: &SimplexOptions,
        snapshot: &BasisSnapshot,
    ) -> Result<LpSolution, LpError> {
        let basic = match options.engine {
            LpEngine::Revised | LpEngine::Decomposed => {
                run_revised_warm(&self.sf, options, snapshot)?
            }
            LpEngine::Tableau => run_simplex(&self.sf, options)?,
        };
        LpSolution::from_basic(&self.problem, &self.sf, &basic, options.engine)
    }

    /// Crate-internal view of the cached standard form (the decomposed
    /// engine reads block slack layouts through this).
    pub(crate) fn sf(&self) -> &StandardForm {
        &self.sf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_optimality, LpEngine, Relation, Sense};

    fn wyndor() -> (LpProblem, Vec<VarId>, Vec<RowId>) {
        let mut p = LpProblem::new(Sense::Maximize);
        let x = p.add_var("x", 3.0);
        let y = p.add_var("y", 5.0);
        let r0 = p.add_constraint([(x, 1.0)], Relation::Le, 4.0).unwrap();
        let r1 = p.add_constraint([(y, 2.0)], Relation::Le, 12.0).unwrap();
        let r2 = p
            .add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0)
            .unwrap();
        (p, vec![x, y], vec![r0, r1, r2])
    }

    #[test]
    fn prepared_cold_solve_matches_problem_solve() {
        let (p, _, _) = wyndor();
        let direct = p.solve().unwrap();
        let prepared = PreparedLp::new(p).unwrap();
        let cached = prepared.solve_with(&SimplexOptions::default()).unwrap();
        assert_eq!(direct.values(), cached.values());
        assert_eq!(direct.objective(), cached.objective());
    }

    #[test]
    fn rhs_delta_matches_a_rebuild() {
        let (p, _, rows) = wyndor();
        let mut prepared = PreparedLp::new(p).unwrap();
        prepared.set_rhs(rows[2], 24.0).unwrap();

        // The same change built from scratch for comparison.
        let mut rebuilt = LpProblem::new(Sense::Maximize);
        let x = rebuilt.add_var("x", 3.0);
        let y = rebuilt.add_var("y", 5.0);
        rebuilt
            .add_constraint([(x, 1.0)], Relation::Le, 4.0)
            .unwrap();
        rebuilt
            .add_constraint([(y, 2.0)], Relation::Le, 12.0)
            .unwrap();
        rebuilt
            .add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 24.0)
            .unwrap();
        let a = prepared.solve_with(&SimplexOptions::default()).unwrap();
        let b = rebuilt.solve().unwrap();
        assert_eq!(a.values(), b.values());
        assert_eq!(a.objective(), b.objective());
        // The mutated problem itself reports the new rhs.
        let (_, _, rhs) = prepared.problem().row(rows[2]);
        assert_eq!(rhs, 24.0);
    }

    #[test]
    fn coeff_delta_requires_same_pattern() {
        let (p, vars, rows) = wyndor();
        let mut prepared = PreparedLp::new(p).unwrap();
        // Same pattern, new values: fine.
        prepared
            .set_row_coeffs(rows[2], &[(vars[0], 6.0), (vars[1], 4.0)])
            .unwrap();
        let sol = prepared.solve_with(&SimplexOptions::default()).unwrap();
        let report = verify_optimality(prepared.problem(), &sol, 1e-6);
        assert!(report.is_optimal(), "{report:?}");
        // Dropping a variable changes the pattern: rejected.
        assert!(prepared.set_row_coeffs(rows[2], &[(vars[0], 6.0)]).is_err());
        // So does introducing one on a single-variable row.
        assert!(prepared
            .set_row_coeffs(rows[0], &[(vars[0], 1.0), (vars[1], 1.0)])
            .is_err());
    }

    #[test]
    fn orientation_flip_is_rejected() {
        let mut p = LpProblem::new(Sense::Minimize);
        let x = p.add_var("x", 1.0);
        let r = p.add_constraint([(x, 1.0)], Relation::Le, 2.0).unwrap();
        let mut prepared = PreparedLp::new(p).unwrap();
        assert!(prepared.set_rhs(r, -1.0).is_err());
        // The positive direction is still fine afterwards.
        prepared.set_rhs(r, 5.0).unwrap();
        let sol = prepared.solve_with(&SimplexOptions::default()).unwrap();
        assert!(sol.objective().abs() < 1e-12);
    }

    #[test]
    fn objective_delta_respects_sense() {
        let (p, vars, _) = wyndor();
        let mut prepared = PreparedLp::new(p).unwrap();
        prepared.set_objective_coeff(vars[1], 0.0).unwrap();
        let sol = prepared.solve_with(&SimplexOptions::default()).unwrap();
        // With y worthless, max 3x under x ≤ 4 → 12.
        assert!((sol.objective() - 12.0).abs() < 1e-9, "{}", sol.objective());
        assert!(prepared.set_objective_coeff(vars[0], f64::NAN).is_err());
    }

    #[test]
    fn rejected_coeff_delta_leaves_the_problem_untouched() {
        // Orientation flip through the lower-bound shift: x has shift 1,
        // so coefficient 5 turns the stored rhs 3 − 5·1 negative. The
        // delta must be rejected BEFORE anything mutates — problem,
        // matrix and rhs stay consistent and further solves are sound.
        let mut p = LpProblem::new(Sense::Minimize);
        let x = p.add_var_bounded("x", -1.0, 1.0, None);
        let r = p.add_constraint([(x, 1.0)], Relation::Le, 3.0).unwrap();
        let mut prepared = PreparedLp::new(p).unwrap();
        let before = prepared.solve_with(&SimplexOptions::default()).unwrap();
        assert!(prepared.set_row_coeffs(r, &[(x, 5.0)]).is_err());
        let after = prepared.solve_with(&SimplexOptions::default()).unwrap();
        assert_eq!(before.objective(), after.objective());
        assert_eq!(before.values(), after.values());
        let (terms, _, rhs) = prepared.problem().row(r);
        assert_eq!(terms, vec![(x, 1.0)]);
        assert_eq!(rhs, 3.0);
    }

    #[test]
    fn tableau_snapshot_seeds_a_warm_revised_solve() {
        // A redundant equality makes the tableau deactivate a row; its
        // exported snapshot must still import cleanly into the revised
        // warm path (canonical MAX marker, not a raw artificial index)
        // and re-solve the unchanged problem in zero pivots.
        let mut p = LpProblem::new(Sense::Minimize);
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 3.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Eq, 2.0)
            .unwrap();
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Eq, 2.0)
            .unwrap();
        let prepared = PreparedLp::new(p).unwrap();
        let opts = SimplexOptions::default();
        let tableau = prepared
            .solve_with(&opts.with_engine(LpEngine::Tableau))
            .unwrap();
        let snapshot = tableau.basis_snapshot();
        assert_eq!(snapshot.engine(), LpEngine::Tableau);
        let warm = prepared.solve_warm(&opts, &snapshot).unwrap();
        assert_eq!(warm.iterations(), 0, "tableau basis should import warm");
        assert!((warm.objective() - tableau.objective()).abs() <= 1e-9);
    }

    #[test]
    fn warm_solve_from_optimal_basis_takes_zero_pivots() {
        let (p, _, _) = wyndor();
        let prepared = PreparedLp::new(p).unwrap();
        let opts = SimplexOptions::default();
        let cold = prepared.solve_with(&opts).unwrap();
        let warm = prepared.solve_warm(&opts, &cold.basis_snapshot()).unwrap();
        assert_eq!(warm.iterations(), 0, "re-solve should not pivot");
        assert_eq!(warm.objective(), cold.objective());
        assert_eq!(warm.values(), cold.values());
    }

    #[test]
    fn warm_solve_after_rhs_delta_agrees_with_cold() {
        let (p, _, rows) = wyndor();
        let mut prepared = PreparedLp::new(p).unwrap();
        let opts = SimplexOptions::default();
        let mut snapshot = prepared.solve_with(&opts).unwrap().basis_snapshot();
        // Chain both directions: tightening needs a dual repair step,
        // loosening re-opens the slack.
        for rhs in [10.0, 30.0, 18.0, 6.0] {
            prepared.set_rhs(rows[2], rhs).unwrap();
            let warm = prepared.solve_warm(&opts, &snapshot).unwrap();
            let cold = prepared.solve_with(&opts).unwrap();
            assert!(
                (warm.objective() - cold.objective()).abs()
                    <= 1e-9 * (1.0 + cold.objective().abs()),
                "rhs {rhs}: warm {} vs cold {}",
                warm.objective(),
                cold.objective()
            );
            let report = verify_optimality(prepared.problem(), &warm, 1e-6);
            assert!(report.is_optimal(), "rhs {rhs}: {report:?}");
            snapshot = warm.basis_snapshot();
        }
    }

    #[test]
    fn scaled_prepared_deltas_match_rebuilds() {
        // A badly-scaled family: coefficients spanning 1e-4..1e4 make
        // the equilibration trigger fire at construction; every
        // in-place delta afterwards must land exactly where a
        // from-scratch rebuild (with its own scaling decision) lands,
        // and warm solves must keep answering like cold ones.
        let build = |rhs: f64, cy: f64| {
            let mut p = LpProblem::new(Sense::Minimize);
            let x = p.add_var("x", 1.0);
            let y = p.add_var("y", 2.0);
            let r = p
                .add_constraint([(x, 1e-4), (y, cy)], Relation::Ge, rhs)
                .unwrap();
            (p, x, y, r)
        };
        let (p, x, y, r) = build(2e-4, 3e4);
        let mut prepared = PreparedLp::new(p).unwrap();
        let opts = SimplexOptions::default();
        let first = prepared.solve_with(&opts).unwrap();
        assert!(first.scaling_stats().applied, "trigger must fire");
        let mut snapshot = first.basis_snapshot();

        for (rhs, cy) in [(5e-4, 3e4), (5e-4, 1e4), (1e-4, 2e4)] {
            prepared.set_rhs(r, rhs).unwrap();
            prepared.set_row_coeffs(r, &[(x, 1e-4), (y, cy)]).unwrap();
            let warm = prepared.solve_warm(&opts, &snapshot).unwrap();
            let cold = prepared.solve_with(&opts).unwrap();
            let (rebuilt, ..) = build(rhs, cy);
            let fresh = rebuilt.solve().unwrap();
            for (name, sol) in [("warm", &warm), ("cold", &cold)] {
                assert!(
                    (sol.objective() - fresh.objective()).abs()
                        <= 1e-9 * (1.0 + fresh.objective().abs()),
                    "({rhs}, {cy}) {name}: {} vs rebuild {}",
                    sol.objective(),
                    fresh.objective()
                );
                let report = verify_optimality(prepared.problem(), sol, 1e-6);
                assert!(report.is_optimal(), "({rhs}, {cy}) {name}: {report:?}");
            }
            snapshot = warm.basis_snapshot();
        }
    }

    #[test]
    fn opting_out_of_scaling_at_construction_is_respected() {
        let mut p = LpProblem::new(Sense::Minimize);
        let x = p.add_var("x", 1.0);
        p.add_constraint([(x, 1e6)], Relation::Ge, 1e-4).unwrap();
        let prepared = PreparedLp::new_with_scaling(p, false).unwrap();
        let sol = prepared.solve_with(&SimplexOptions::default()).unwrap();
        assert!(!sol.scaling_stats().applied);
        // Unmeasured: the conditioning probe never ran.
        assert_eq!(sol.scaling_stats().condition_before, 1.0);
    }

    #[test]
    fn garbage_snapshot_falls_back_to_cold() {
        let (p, _, _) = wyndor();
        let prepared = PreparedLp::new(p).unwrap();
        let opts = SimplexOptions::default();
        let cold = prepared.solve_with(&opts).unwrap();
        for snapshot in [
            // Wrong shape.
            BasisSnapshot::new(vec![0], 1, LpEngine::Revised),
            // Duplicate columns.
            BasisSnapshot::new(vec![2, 2, 2], 5, LpEngine::Revised),
            // Out of range.
            BasisSnapshot::new(vec![90, 91, 92], 5, LpEngine::Revised),
            // All rows "redundant" — wildly stale.
            BasisSnapshot::new(vec![usize::MAX; 3], 5, LpEngine::Revised),
        ] {
            let warm = prepared.solve_warm(&opts, &snapshot).unwrap();
            assert!(
                (warm.objective() - cold.objective()).abs() <= 1e-9,
                "snapshot {snapshot:?}: warm {} vs cold {}",
                warm.objective(),
                cold.objective()
            );
        }
    }

    #[test]
    fn warm_statuses_match_cold_on_infeasible_and_unbounded() {
        // Infeasible after an rhs delta.
        let mut p = LpProblem::new(Sense::Minimize);
        let x = p.add_var_bounded("x", 1.0, 0.0, Some(1.0));
        let r = p.add_constraint([(x, 1.0)], Relation::Ge, 0.5).unwrap();
        let mut prepared = PreparedLp::new(p).unwrap();
        let opts = SimplexOptions::default();
        let snap = prepared.solve_with(&opts).unwrap().basis_snapshot();
        prepared.set_rhs(r, 2.0).unwrap(); // x ≤ 1 makes x ≥ 2 impossible
        assert!(matches!(
            prepared.solve_warm(&opts, &snap),
            Err(LpError::Infeasible { .. })
        ));

        // Unbounded under a flipped objective.
        let mut p = LpProblem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0);
        let y = p.add_var("y", 0.0);
        p.add_constraint([(x, 1.0), (y, -1.0)], Relation::Le, 5.0)
            .unwrap();
        let mut prepared = PreparedLp::new(p).unwrap();
        let snap = prepared.solve_with(&opts).unwrap().basis_snapshot();
        prepared.set_objective_coeff(x, 1.0).unwrap();
        assert!(matches!(
            prepared.solve_warm(&opts, &snap),
            Err(LpError::Unbounded { .. })
        ));
    }
}
