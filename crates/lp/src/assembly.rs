//! Public entry points to the standard-form assembly paths.
//!
//! The solver itself always assembles sparsely; this module exposes both
//! the sparse (CSR) and the historical dense assembly so callers — the
//! `lp_solver` bench foremost — can measure what structure-aware
//! assembly buys on occupation-measure-shaped programs, and so tests can
//! check the two paths agree entry for entry.

use socbuf_linalg::{Csr, Matrix};

use crate::standard_form::{build_dense_constraint_matrix, build_standard_form};
use crate::{LpError, LpProblem};

/// Shape summary of an assembled standard form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssemblyStats {
    /// Standard-form rows (user constraints + upper-bound rows).
    pub rows: usize,
    /// Standard-form columns (structural variables + slack/surplus).
    pub cols: usize,
    /// Stored nonzero entries.
    pub nnz: usize,
}

/// Assembles the standard-form constraint matrix sparsely — `O(nnz)`
/// time and memory. This is exactly the matrix the simplex solver runs
/// on.
///
/// # Errors
///
/// Propagates standard-form conversion failures.
pub fn assemble_sparse(p: &LpProblem) -> Result<Csr, LpError> {
    build_standard_form(p).map(|sf| sf.a)
}

/// Assembles the same constraint matrix densely — the pre-refactor code
/// path, allocating the full `rows × cols` matrix. Kept for benchmarks
/// and agreement tests; the solver never calls this.
///
/// # Errors
///
/// Propagates standard-form conversion failures.
pub fn assemble_dense(p: &LpProblem) -> Result<Matrix, LpError> {
    build_dense_constraint_matrix(p)
}

/// Shape and sparsity of the standard form without keeping the matrix.
///
/// # Errors
///
/// Propagates standard-form conversion failures.
pub fn stats(p: &LpProblem) -> Result<AssemblyStats, LpError> {
    let a = assemble_sparse(p)?;
    Ok(AssemblyStats {
        rows: a.rows(),
        cols: a.cols(),
        nnz: a.nnz(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Relation, Sense};

    #[test]
    fn paths_agree_and_stats_match() {
        let mut p = LpProblem::new(Sense::Maximize);
        let x = p.add_var_bounded("x", 3.0, 0.0, Some(4.0));
        let y = p.add_var("y", 5.0);
        p.add_constraint([(y, 2.0)], Relation::Le, 12.0).unwrap();
        p.add_constraint([(x, 3.0), (y, 2.0)], Relation::Ge, 6.0)
            .unwrap();
        let sparse = assemble_sparse(&p).unwrap();
        let dense = assemble_dense(&p).unwrap();
        assert_eq!(sparse.to_dense(), dense);
        let s = stats(&p).unwrap();
        assert_eq!((s.rows, s.cols), (dense.rows(), dense.cols()));
        assert_eq!(s.nnz, sparse.nnz());
        assert!(s.nnz < s.rows * s.cols);
    }
}
