//! The workspace's one chunked-scheduling policy.
//!
//! Three fan-out sites schedule independent work in chunks: the sweep
//! campaigns (warm-start chains of consecutive points), the decomposed
//! engine's per-block solves, and the shard executor (chunks as the
//! unit of cross-process dispatch). Before this module each site carried
//! its own constant; now all three consume a [`ChunkPolicy`], so the
//! chunk length — and the determinism argument that goes with it — lives
//! in exactly one place.
//!
//! The load-bearing property: a policy's chunk boundaries depend only on
//! the item count, never on worker count, host count, or timing. Chunk
//! `c` always covers items `c·len .. min((c+1)·len, items)`, so any
//! scheduler — serial loop, `WorkPool`, or a fleet of shard servers —
//! that executes whole chunks and reduces by index reproduces the same
//! bytes.

use std::ops::Range;

/// A chunked-scheduling policy: how many consecutive work items form one
/// unit of scheduling.
///
/// Policies are tiny value types; the named constants document *why*
/// each site uses the length it does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPolicy {
    chunk_len: usize,
}

impl ChunkPolicy {
    /// Warm-start chains: 4 consecutive points share one solve context,
    /// so the first point of each chunk is a cold (bit-reproducible)
    /// solve and the rest warm-retarget off it. Long enough to amortize
    /// the cold factorization, short enough that 1/2/8 workers all see
    /// the same chunk boundaries on small campaigns.
    pub const WARM_CHAIN: ChunkPolicy = ChunkPolicy { chunk_len: 4 };

    /// Independent items (cold campaign points, one random seed per
    /// item): nothing is shared between neighbours, so the scheduling
    /// unit is a single item.
    pub const INDEPENDENT: ChunkPolicy = ChunkPolicy { chunk_len: 1 };

    /// Decomposition block solves: each block is a whole LP — heavy and
    /// self-contained — so batching blocks would only serialize them.
    pub const BLOCK_SOLVE: ChunkPolicy = ChunkPolicy { chunk_len: 1 };

    /// A policy with an explicit chunk length (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub const fn of_len(chunk_len: usize) -> ChunkPolicy {
        assert!(chunk_len >= 1, "chunk length must be at least 1");
        ChunkPolicy { chunk_len }
    }

    /// Items per chunk.
    pub const fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// Number of chunks needed to cover `items` work items.
    pub const fn num_chunks(&self, items: usize) -> usize {
        items.div_ceil(self.chunk_len)
    }

    /// The item range of chunk `chunk` over `items` work items, clipped
    /// at the tail. Empty for out-of-range chunks.
    pub fn chunk_range(&self, chunk: usize, items: usize) -> Range<usize> {
        let start = (chunk * self.chunk_len).min(items);
        let end = ((chunk + 1) * self.chunk_len).min(items);
        start..end
    }

    /// All chunk ranges covering `items`, in order — an exact partition
    /// of `0..items`.
    pub fn ranges(&self, items: usize) -> Vec<Range<usize>> {
        (0..self.num_chunks(items))
            .map(|c| self.chunk_range(c, items))
            .collect()
    }

    /// Whether `pos` is a boundary this policy's base chunking also
    /// has: a multiple of the chunk length, or the tail end of the work
    /// list. A coarser partition whose every cut sits on such a
    /// boundary (a union of consecutive base chunks) executes the same
    /// cold-solve/warm-chain structure as a *prefix* of each merged
    /// group, which is what lets adaptive re-chunking extend warm
    /// chains without moving any item onto a different solve path than
    /// an extended chain would give it.
    pub const fn is_chain_boundary(&self, pos: usize, items: usize) -> bool {
        (pos % self.chunk_len == 0 || pos == items) && pos <= items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_exactly() {
        for len in 1..=5 {
            let policy = ChunkPolicy::of_len(len);
            for items in 0..20 {
                let ranges = policy.ranges(items);
                assert_eq!(ranges.len(), policy.num_chunks(items));
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap/overlap at len={len} items={items}");
                    assert!(r.end > r.start, "empty chunk emitted");
                    next = r.end;
                }
                assert_eq!(next, items, "partition must cover 0..items");
            }
        }
    }

    #[test]
    fn boundaries_ignore_anything_but_item_count() {
        let policy = ChunkPolicy::WARM_CHAIN;
        assert_eq!(policy.chunk_range(0, 10), 0..4);
        assert_eq!(policy.chunk_range(1, 10), 4..8);
        assert_eq!(policy.chunk_range(2, 10), 8..10);
        assert_eq!(policy.chunk_range(3, 10), 10..10);
    }

    #[test]
    #[should_panic(expected = "chunk length must be at least 1")]
    fn zero_length_policies_are_rejected() {
        let _ = ChunkPolicy::of_len(0);
    }

    #[test]
    fn chain_boundaries_are_multiples_or_the_tail() {
        let policy = ChunkPolicy::WARM_CHAIN;
        for pos in [0, 4, 8, 10] {
            assert!(policy.is_chain_boundary(pos, 10), "pos {pos}");
        }
        for pos in [1, 3, 5, 9, 11, 12] {
            assert!(!policy.is_chain_boundary(pos, 10), "pos {pos}");
        }
    }
}
